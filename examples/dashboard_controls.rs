//! Interactive controls (§3.5): a slider wired into a formula, set by a
//! workbook URL parameter — "dashboard"-style applications.
//!
//! ```sh
//! cargo run --example dashboard_controls
//! ```

use sigma_workbook::core::controls::ControlSpec;
use sigma_workbook::core::document::ElementKind;
use sigma_workbook::core::table::{ColumnDef, DataSource, Level, TableSpec};
use sigma_workbook::core::{CompileOptions, Compiler, Workbook};
use sigma_workbook::demo;
use sigma_workbook::value::pretty;

fn main() {
    let warehouse = demo::demo_warehouse(20_000);
    let mut wb = Workbook::new(Some("Delay Dashboard"));
    wb.add_element(
        0,
        "Delay Threshold",
        ElementKind::Control(ControlSpec::slider(0.0, 180.0, 5.0, 15.0)),
    )
    .unwrap();

    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Over",
        "[Dep Delay] > [Delay Threshold]",
        0,
    ))
    .unwrap();
    t.add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Share Over",
        "Avg(If([Over], 1.0, 0.0))",
        1,
    ))
    .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "Delays", ElementKind::Table(t)).unwrap();

    let schemas = demo::WarehouseSchemas(warehouse.clone());
    for params in ["?Delay+Threshold=15", "?Delay+Threshold=60"] {
        wb.apply_url_params(params).unwrap();
        let compiler = Compiler::new(&wb, &schemas, CompileOptions::default());
        let compiled = compiler.compile_element("Delays").unwrap();
        let result = warehouse.execute_sql(&compiled.sql).unwrap();
        println!("=== {params} (control value inlined as a literal) ===");
        println!("{}", pretty::render(&result.batch, 10));
    }
}
