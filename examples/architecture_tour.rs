//! Figure 2 walked end to end: browser -> Sigma service (auth, ACL, graph
//! resolution, matview substitution, compile, workload queue) -> customer
//! CDW -> result caches on the way back.
//!
//! ```sh
//! cargo run --example architecture_tour
//! ```

use std::time::Duration;

use sigma_workbook::browser::{BrowserSession, PrefetchPolicy};
use sigma_workbook::demo;

fn main() {
    println!("[CDW]      loading the customer warehouse with 30k flight rows");
    let warehouse = demo::demo_warehouse(30_000);
    println!("[service]  org + user + token + connection registered");
    let (service, token) = demo::demo_service(warehouse.clone());

    println!("[browser]  opening two collaborating tabs (30ms simulated RTT)");
    let tab1 = BrowserSession::new(service.clone(), token.clone(), "primary")
        .with_network_latency(Duration::from_millis(30));
    let tab2 = BrowserSession::new(service.clone(), token.clone(), "primary")
        .with_network_latency(Duration::from_millis(30));
    println!(
        "[browser]  prefetching low-cardinality tables: {:?}",
        tab1.prefetch(&warehouse, &PrefetchPolicy::default())
    );

    let wb = demo::cohort_workbook();
    println!("\n-- tab 1 runs the cohort element (cold) --");
    let cold = tab1.query_element(&wb, "Flights").unwrap();
    println!("   source: {:?}, latency: {:?}", cold.source, cold.elapsed);

    println!("-- tab 1 re-runs after an undo --");
    let undo = tab1.query_element(&wb, "Flights").unwrap();
    println!("   source: {:?}, latency: {:?}", undo.source, undo.elapsed);

    println!("-- tab 2 runs the identical state (collaboration) --");
    let shared = tab2.query_element(&wb, "Flights").unwrap();
    println!(
        "   source: {:?}, latency: {:?}",
        shared.source, shared.elapsed
    );

    println!("\n-- service-side telemetry --");
    let dir = service.directory_stats("primary").unwrap();
    println!(
        "   query directory: {} hits / {} misses / {} coalesced",
        dir.hits, dir.misses, dir.coalesced
    );
    let wl = service.workload_stats("primary").unwrap();
    println!(
        "   workload queue: {} admitted, {} queued",
        wl.admitted, wl.queued
    );
    println!(
        "   warehouse executed {} queries total",
        warehouse.queries_executed()
    );
}
