//! The networked front end, end to end: start a `sigma-server` on a
//! loopback socket, connect a protocol client, and walk the session
//! lifecycle — auth, open session, explain, query, upload — then watch
//! admission control shed under a deliberately tiny quota.
//!
//! ```sh
//! cargo run --example server_roundtrip
//! ```

use std::time::Duration;

use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, Level, TableSpec};
use sigma_core::Workbook;
use sigma_protocol::WirePriority;
use sigma_server::{serve, QueryReply, SigmaClient};
use sigma_service::AdmissionConfig;
use sigma_workbook::demo::{demo_service, demo_warehouse};

fn flights_by_carrier() -> Workbook {
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    t.add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    t.add_column(ColumnDef::formula("Avg Delay", "Avg([Dep Delay])", 1))
        .unwrap();
    t.detail_level = 1;
    let mut wb = Workbook::new(Some("Networked"));
    wb.add_element(0, "ByCarrier", ElementKind::Table(t))
        .unwrap();
    wb
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A demo org ("acme"), one creator, one warehouse connection
    // ("primary") with the synthetic flights workload.
    let (service, token) = demo_service(demo_warehouse(5_000));
    let handle = serve(service, "127.0.0.1:0")?;
    println!("server listening on {}", handle.addr());

    // --- session lifecycle -------------------------------------------
    let mut client = SigmaClient::connect(handle.addr())?;
    let user = client.auth(&token)?;
    println!("authenticated as {} (org {})", user.name, user.org);
    client.open_session("primary")?;

    let wb = flights_by_carrier();
    let json = wb.to_json()?;

    let sql = client.explain(&json, "ByCarrier")?;
    println!("\ncompiled SQL:\n{sql}\n");

    match client.query_element(&json, "ByCarrier", WirePriority::Interactive, None)? {
        QueryReply::Ok(outcome) => println!(
            "query {} -> {} rows ({} , queue wait {:?})",
            outcome.query_id,
            outcome.batch.num_rows(),
            outcome.served_from,
            outcome.queue_wait,
        ),
        QueryReply::Overloaded { retry_after } => {
            println!("shed; retry after {retry_after:?}")
        }
    }

    let rows = client.upload_csv("regions", "region,code\nWest,W\nEast,E\n")?;
    println!("uploaded regions: {rows} rows");

    // --- admission control under pressure ----------------------------
    // One slot, one queued request: concurrent sessions beyond that get
    // an explicit Overloaded + retry hint instead of waiting in line.
    handle.service().set_connection_admission(
        "primary",
        AdmissionConfig {
            max_concurrent: 1,
            tenant_quota: 1,
            queue_bound: 1,
            default_deadline: Some(Duration::from_millis(500)),
            exec_threads: 0,
        },
    );
    let mut shed = 0;
    let mut ok = 0;
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let addr = handle.addr();
            let token = token.clone();
            std::thread::spawn(move || {
                let mut c = SigmaClient::connect(addr).unwrap();
                c.auth(&token).unwrap();
                c.open_session("primary").unwrap();
                // A unique filter threshold per request defeats the
                // query directory, so each request is real warehouse
                // work.
                let mut results = Vec::new();
                for rep in 0..5 {
                    let mut wb = flights_by_carrier();
                    if let Some(el) = wb.element_mut("ByCarrier") {
                        if let ElementKind::Table(t) = &mut el.kind {
                            t.filters.push(sigma_core::table::FilterSpec {
                                column: "Dep Delay".into(),
                                predicate: sigma_core::table::FilterPredicate::Range {
                                    min: Some(sigma_value::Value::Float((i * 10 + rep) as f64)),
                                    max: None,
                                },
                            });
                        }
                    }
                    let json = wb.to_json().unwrap();
                    results.push(matches!(
                        c.query_element(&json, "ByCarrier", WirePriority::Interactive, None),
                        Ok(QueryReply::Ok(_))
                    ));
                }
                results
            })
        })
        .collect();
    for t in threads {
        for admitted in t.join().unwrap() {
            if admitted {
                ok += 1;
            } else {
                shed += 1;
            }
        }
    }
    println!("under a 1-slot quota: {ok} admitted, {shed} shed/expired");

    client.close()?;
    handle.shutdown();
    Ok(())
}
