//! Scenario 2 (paper §5): sessionization. Lag infers service gaps,
//! FillDown marks each flight with its session (window-over-window splits
//! across CTE phases), and a child element charts cancellation rate
//! against air time since service.
//!
//! ```sh
//! cargo run --example sessionization
//! ```

use sigma_workbook::demo;
use sigma_workbook::service::workload::Priority;
use sigma_workbook::service::QueryRequest;
use sigma_workbook::value::pretty;

fn main() {
    let warehouse = demo::demo_warehouse(50_000);
    let (service, token) = demo::demo_service(warehouse);
    let wb = demo::sessionization_workbook();
    let json = wb.to_json().unwrap();
    let run = |element: &str| {
        service
            .run_query(&QueryRequest {
                token: &token,
                connection: "primary",
                workbook_json: &json,
                element,
                priority: Priority::Interactive,
            })
            .expect("scenario 2 runs")
    };

    let flights = run("Flights");
    println!("=== Sessionized flights (base level) ===");
    println!("{}", pretty::render(&flights.batch, 12));

    let life = run("Service Life");
    println!("=== Cancellation rate vs. hours since service ===");
    println!("{}", pretty::render(&life.batch, 15));
    println!("(the rate rises with wear — the line chart of the demo)");
    println!("\n=== SQL for the child element ===\n{}", life.sql);
}
