//! Quickstart: build a workbook table element (Figure 3's three constructs
//! — grouping levels, columns, filters), compile it to SQL, and run it on
//! the bundled warehouse.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sigma_workbook::core::document::ElementKind;
use sigma_workbook::core::table::{
    ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec,
};
use sigma_workbook::core::{CompileOptions, Compiler, Workbook};
use sigma_workbook::demo;
use sigma_workbook::value::pretty;

fn main() {
    // A warehouse with the synthetic On-Time flights data (paper §5).
    let warehouse = demo::demo_warehouse(20_000);

    // The workbook: one table element over the FLIGHTS fact table.
    let mut wb = Workbook::new(Some("Quickstart"));
    let mut table = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    // (2) columns: source passthroughs and a spreadsheet formula.
    table
        .add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    table
        .add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    table
        .add_column(ColumnDef::formula("Is Late", "[Dep Delay] > 15", 0))
        .unwrap();
    // (1) grouping levels: group by carrier; aggregates reside at level 1.
    table
        .add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    table
        .add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    table
        .add_column(ColumnDef::formula(
            "Late Share",
            "Avg(If([Is Late], 1.0, 0.0))",
            1,
        ))
        .unwrap();
    // (3) filters: applied greedily as soon as their dependencies are met.
    table.filters.push(FilterSpec {
        column: "Dep Delay".into(),
        predicate: FilterPredicate::IsNotNull,
    });
    table.detail_level = 1;
    wb.add_element(0, "Flights", ElementKind::Table(table))
        .unwrap();

    // Compile: the workbook spec becomes a CTE pipeline.
    let schemas = demo::WarehouseSchemas(warehouse.clone());
    let compiler = Compiler::new(&wb, &schemas, CompileOptions::default());
    let compiled = compiler.compile_element("Flights").expect("compiles");
    println!("=== Generated SQL ===\n{}\n", compiled.sql);

    // Execute on the warehouse.
    let result = warehouse.execute_sql(&compiled.sql).expect("executes");
    println!("=== Result (query id {}) ===", result.query_id);
    println!("{}", pretty::render(&result.batch, 12));
    println!(
        "scanned {} rows across {} partitions in {:?}",
        result.rows_scanned, result.partitions_scanned, result.elapsed
    );

    // Per-operator attribution: where did the time go? (Two-phase
    // aggregation shows up as Aggregate[final] over Aggregate[partial].)
    warehouse.set_parallelism(4);
    let analyzed = warehouse
        .explain_analyze(&compiled.sql)
        .expect("explain analyze");
    println!("\n=== EXPLAIN ANALYZE (parallelism = 4) ===\n{analyzed}");
}
