//! Scenario 3 (paper §5): augmenting warehouse data. A web-found (dirty)
//! airports CSV is pasted into an editable table, projected into the
//! warehouse, joined to the fact table via Lookup, then repaired by direct
//! editing — with the fixes propagating to downstream queries.
//!
//! ```sh
//! cargo run --example augmentation
//! ```

use sigma_workbook::demo;
use sigma_workbook::service::workload::Priority;
use sigma_workbook::service::QueryRequest;
use sigma_workbook::value::pretty;

fn main() {
    let warehouse = demo::demo_warehouse(20_000);
    let (service, token) = demo::demo_service(warehouse);
    let mut wb = demo::augmentation_workbook();

    // Project the pasted table into the warehouse (§3.4).
    let table = service
        .project_input_table(&token, "primary", &mut wb, "Airport Info")
        .expect("projection");
    println!("pasted airports table projected into the warehouse as {table}\n");

    let run = |json: &str| {
        service
            .run_query(&QueryRequest {
                token: &token,
                connection: "primary",
                workbook_json: json,
                element: "Flights",
                priority: Priority::Interactive,
            })
            .expect("scenario 3 runs")
    };
    let before = run(&wb.to_json().unwrap());
    let misses = before
        .batch
        .column_by_name("Origin City")
        .unwrap()
        .null_count();
    println!("=== Lookup with dirty codes: {misses} unmatched flights ===");
    println!("{}", pretty::render(&before.batch, 8));

    // Fix dirty codes by direct editing; edits propagate as DML.
    {
        let input = wb.input_table_mut("Airport Info").unwrap();
        let code_col = input.column_index("code").unwrap();
        let fixes: Vec<(u64, String)> = input
            .rows
            .iter()
            .filter_map(|(id, values)| {
                let code = values[code_col].render();
                let upper = code.to_uppercase();
                (code != upper).then_some((*id, upper))
            })
            .collect();
        println!(
            "fixing {} dirty airport codes by direct editing...",
            fixes.len()
        );
        for (id, fixed) in fixes {
            input.set_cell(id, "code", fixed.into()).unwrap();
        }
    }
    let edits = service
        .propagate_edits(&token, "primary", &mut wb, "Airport Info")
        .expect("propagation");
    println!("{edits} edits propagated to the warehouse\n");

    let after = run(&wb.to_json().unwrap());
    let misses_after = after
        .batch
        .column_by_name("Origin City")
        .unwrap()
        .null_count();
    println!("=== After the fix: {misses_after} unmatched flights ===");
    println!("{}", pretty::render(&after.batch, 8));
}
