//! The paper's three demonstration scenarios (§5) as workbook builders,
//! shared by the examples, the integration tests, and the benchmark
//! harness. All three run over the synthetic On-Time flights workload.

use std::sync::Arc;

use sigma_cdw::Warehouse;
use sigma_core::document::ElementKind;
use sigma_core::schema::SchemaProvider;
use sigma_core::table::{ColumnDef, DataSource, Level, TableSpec};
use sigma_core::viz::{Channel, Mark, VizSpec};
use sigma_core::Workbook;
use sigma_flights::{load_airports, load_flights, FlightsConfig};
use sigma_service::SigmaService;

/// A loaded warehouse with `flights` and `airports`.
pub fn demo_warehouse(rows: usize) -> Arc<Warehouse> {
    let wh = Arc::new(Warehouse::default());
    load_flights(&wh, &FlightsConfig::with_rows(rows)).expect("load flights");
    load_airports(&wh).expect("load airports");
    wh
}

/// A service with one org, one creator, and one connection ("primary").
/// Returns (service, bearer token).
pub fn demo_service(warehouse: Arc<Warehouse>) -> (Arc<SigmaService>, String) {
    let service = SigmaService::new();
    let org = service.tenancy.create_org("acme");
    let user = service
        .tenancy
        .create_user(org, "analyst", sigma_service::tenancy::Role::Creator)
        .expect("org exists");
    let token = service.tenancy.issue_token(user).expect("user exists");
    service.add_connection(org, "primary", warehouse);
    (Arc::new(service), token)
}

/// `SchemaProvider` over a warehouse, for driving the compiler directly.
pub struct WarehouseSchemas(pub Arc<Warehouse>);

impl SchemaProvider for WarehouseSchemas {
    fn table_schema(&self, table: &str) -> Option<Arc<sigma_value::Schema>> {
        self.0.table_schema(table)
    }
    fn query_schema(&self, sql: &str) -> Option<Arc<sigma_value::Schema>> {
        self.0.query_schema(sql).ok()
    }
}

fn base_flights_columns(t: &mut TableSpec) {
    t.add_column(ColumnDef::source("Tail Number", "tail_number"))
        .unwrap();
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_column(ColumnDef::source("Flight Date", "flight_date"))
        .unwrap();
    t.add_column(ColumnDef::source("Origin", "origin")).unwrap();
    t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    t.add_column(ColumnDef::source("Air Time", "air_time"))
        .unwrap();
    t.add_column(ColumnDef::source("Cancelled", "cancelled"))
        .unwrap();
}

/// **Scenario 1 — cohort analysis** (§5). "(1) Starting with the FLIGHTS
/// fact table, we create a self-join using Workbook's Rollup function to
/// identify the date of the first flight for each plane. This date,
/// truncated to the quarter-year, identifies the cohort for each plane;
/// (2) We then create a hierarchy of grouping levels, first grouping by
/// cohort and then by flight date truncated by quarter. We compute the
/// total population of planes in each cohort and, using cross-level
/// references, the percentage active in each quarter."
pub fn cohort_workbook() -> Workbook {
    let mut wb = Workbook::new(Some("Cohort Analysis"));
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    base_flights_columns(&mut t);
    t.add_column(ColumnDef::formula(
        "First Flight",
        "Rollup(Min([Flights/Flight Date]), [Tail Number], [Flights/Tail Number])",
        0,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Cohort",
        "DateTrunc(\"quarter\", [First Flight])",
        0,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Quarter",
        "DateTrunc(\"quarter\", [Flight Date])",
        0,
    ))
    .unwrap();
    t.add_level(1, Level::keyed("By Quarter", vec!["Quarter".into()]))
        .unwrap();
    t.add_level(2, Level::keyed("By Cohort", vec!["Cohort".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Active Planes",
        "CountDistinct([Tail Number])",
        1,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Population",
        "CountDistinct([Tail Number])",
        2,
    ))
    .unwrap();
    // Cross-level reference: quarter-level percentage of the cohort total.
    t.add_column(ColumnDef::formula(
        "Pct Active",
        "[Active Planes] / [Population]",
        1,
    ))
    .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();

    // "(3) Finally we create a scatter-plot over this dataset, colored by
    // active population."
    let viz = VizSpec::new(
        DataSource::Element {
            name: "Flights".into(),
        },
        Mark::Scatter,
    )
    .encode(Channel::X, "Quarter", "[Quarter]")
    .encode(Channel::Y, "Cohort", "[Cohort]")
    .encode(Channel::Color, "Pct", "Avg([Pct Active])");
    wb.add_element(0, "Cohort Chart", ElementKind::Viz(viz))
        .unwrap();
    wb
}

/// **Scenario 2 — sessionization** (§5). "(1) Starting with the FLIGHTS
/// table, we create a grouping by airplane tail number and then order the
/// base level by flight date. We infer aircraft servicings from periods of
/// inactivity by adding a window calculation, Lag of flight date, and
/// comparing the result with the current flight date. We mark all flights
/// with the time of service using another window calculation, FillDown, as
/// a 'session identifier'; (2) In a child table element we group first by
/// these discovered sessions and then by cumulative air-time since service
/// was done, and compute cancellation rates…"
pub fn sessionization_workbook() -> Workbook {
    let mut wb = Workbook::new(Some("Sessionization"));
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    base_flights_columns(&mut t);
    t.levels[0] = Level::base().with_ordering("Flight Date", false);
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Prev Flight",
        "Lag([Flight Date], 1)",
        0,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Service Start",
        "If(IsNull([Prev Flight]) or DateDiff(\"day\", [Prev Flight], [Flight Date]) > 30, [Flight Date], Null)",
        0,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Session",
        "FillDown([Service Start])",
        0,
    ))
    .unwrap();
    // Cumulative air time *since the last service*: a running sum, reset at
    // each session start by subtracting the running total carried into the
    // session (FillDown over a RunningSum — window-over-window, which the
    // compiler splits across CTE phases).
    t.add_column(ColumnDef::formula("Run Total", "RunningSum([Air Time])", 0).hidden())
        .unwrap();
    t.add_column(
        ColumnDef::formula(
            "Session Base",
            "FillDown(If(IsNull([Service Start]), Null, [Run Total] - [Air Time]))",
            0,
        )
        .hidden(),
    )
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Hours Since Service",
        "([Run Total] - [Session Base]) / 60.0",
        0,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Wear Bucket",
        "Floor([Hours Since Service] / 20.0)",
        0,
    ))
    .unwrap();
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();

    // Child element: cancellation rate by wear bucket.
    let mut child = TableSpec::new(DataSource::Element {
        name: "Flights".into(),
    });
    child
        .add_column(ColumnDef::source("Wear Bucket", "Wear Bucket"))
        .unwrap();
    child
        .add_column(ColumnDef::source("Cancelled", "Cancelled"))
        .unwrap();
    child
        .add_level(1, Level::keyed("By Wear", vec!["Wear Bucket".into()]))
        .unwrap();
    child
        .add_column(ColumnDef::formula(
            "Cancel Rate",
            "Avg(If([Cancelled], 1.0, 0.0))",
            1,
        ))
        .unwrap();
    child
        .add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    child.detail_level = 1;
    wb.add_element(0, "Service Life", ElementKind::Table(child))
        .unwrap();

    // "(3) We visualize this result with a line chart showing how
    // cancellations change with flight hours."
    let viz = VizSpec::new(
        DataSource::Element {
            name: "Service Life".into(),
        },
        Mark::Line,
    )
    .encode(Channel::X, "Wear", "[Wear Bucket]")
    .encode(Channel::Y, "Rate", "Avg([Cancel Rate])");
    wb.add_element(0, "Cancellations Chart", ElementKind::Viz(viz))
        .unwrap();
    wb
}

/// **Scenario 3 — augmenting warehouse data** (§5): paste a (dirty)
/// airports dataset into an editable table and join it to the fact table
/// via `Lookup`. Returns the workbook; the editable table's content comes
/// from `sigma_flights::dirty_airports_csv`.
pub fn augmentation_workbook() -> Workbook {
    let mut wb = Workbook::new(Some("Augmentation"));

    // "(2) we perform a web search and find a plausible dataset that is
    // copied into an editable Workbook table".
    let csv = sigma_flights::dirty_airports_csv(42);
    let parsed = sigma_value::csv::read_csv(&csv, &Default::default()).expect("dirty csv parses");
    let input = sigma_core::editable::InputTableSpec::from_batch(&parsed);
    wb.add_element(0, "Airport Info", ElementKind::Input(input))
        .unwrap();

    // "(3) Now we join the new values into the fact table via a Lookup
    // expression".
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    base_flights_columns(&mut t);
    t.add_column(ColumnDef::formula(
        "Origin City",
        "Lookup([Airport Info/city], [Origin], [Airport Info/code])",
        0,
    ))
    .unwrap();
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();
    wb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_workbooks_validate() {
        for wb in [
            cohort_workbook(),
            sessionization_workbook(),
            augmentation_workbook(),
        ] {
            for el in wb.elements() {
                if let ElementKind::Table(t) = &el.kind {
                    t.validate().unwrap_or_else(|e| panic!("{}: {e}", el.name));
                }
            }
            // JSON round trip of full scenario documents.
            let json = wb.to_json().unwrap();
            assert_eq!(Workbook::from_json(&json).unwrap(), wb);
        }
    }
}
