//! Umbrella crate for the Sigma Workbook reproduction.
//!
//! Re-exports every subsystem crate under one name so the examples and the
//! integration tests can depend on a single package:
//!
//! * [`value`] — columnar data layer (types, columns, batches, CSV, calendar)
//! * [`expr`] — the spreadsheet formula language
//! * [`sql`] — SQL AST, dialects, parser
//! * [`cdw`] — the cloud data warehouse simulator
//! * [`core`] — the workbook document model and formula-to-SQL compiler
//! * [`service`] — the multi-tenant Sigma service (auth, caching, workload)
//! * [`browser`] — the client runtime (result cache, local evaluation)
//! * [`flights`] — the synthetic BTS On-Time flights workload
//!
//! [`demo`] builds the paper's three demonstration scenarios as reusable
//! workbook specifications.

pub use sigma_browser as browser;
pub use sigma_cdw as cdw;
pub use sigma_core as core;
pub use sigma_expr as expr;
pub use sigma_flights as flights;
pub use sigma_service as service;
pub use sigma_sql as sql;
pub use sigma_value as value;

pub mod demo;
