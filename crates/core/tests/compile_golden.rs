//! Golden SQL snapshots: compiler drift becomes a visible diff.
//!
//! Each case compiles one representative workbook element graph and
//! renders (a) the flattened SQL the warehouse receives and (b) every
//! `StagePlan` node's canonical standalone SQL with its input wiring —
//! then diffs the result against a checked-in snapshot under
//! `tests/golden/`. Any change to the emitted SQL (new parenthesization,
//! different CTE split, renamed stage, reordered columns) fails with the
//! differing lines instead of silently changing what customers' CDWs
//! execute — exactly the regression class a formula-to-SQL compiler is
//! most exposed to.
//!
//! To intentionally change the output, regenerate and review the diff:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sigma-core --test compile_golden
//! git diff crates/core/tests/golden/
//! ```

use std::sync::Arc;

use sigma_cdw::Warehouse;
use sigma_core::controls::ControlSpec;
use sigma_core::schema::{CompiledQuery, SchemaProvider};
use sigma_core::table::{ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec};
use sigma_core::{CompileOptions, Compiler, ElementKind, StagePlan, Workbook};
use sigma_value::{calendar, Batch, Column, DataType, Field, Schema, Value};

struct WhSchemas<'a>(&'a Warehouse);

impl SchemaProvider for WhSchemas<'_> {
    fn table_schema(&self, table: &str) -> Option<Arc<Schema>> {
        self.0.table_schema(table)
    }
    fn query_schema(&self, sql: &str) -> Option<Arc<Schema>> {
        self.0.query_schema(sql).ok()
    }
}

fn d(y: i32, m: u32, dd: u32) -> i32 {
    calendar::days_from_civil(y, m, dd)
}

/// Same tiny deterministic warehouse as the compiler's semantic tests;
/// only the *schemas* matter for snapshot stability (no data-dependent
/// SQL is snapshotted — pivot headers are passed as fixed values).
fn warehouse() -> Warehouse {
    let wh = Warehouse::default();
    let schema = Arc::new(Schema::new(vec![
        Field::new("tail_number", DataType::Text),
        Field::new("flight_date", DataType::Date),
        Field::new("dep_delay", DataType::Float),
        Field::new("cancelled", DataType::Bool),
        Field::new("origin", DataType::Text),
        Field::new("air_time", DataType::Float),
    ]));
    let batch = Batch::new(
        schema,
        vec![
            Column::from_texts(vec!["N1".into(), "N2".into()]),
            Column::from_dates(vec![d(2019, 1, 5), d(2019, 4, 10)]),
            Column::from_opt_floats(vec![Some(5.0), None]),
            Column::from_bools(vec![false, true]),
            Column::from_texts(vec!["ORD".into(), "JFK".into()]),
            Column::from_floats(vec![120.0, 200.0]),
        ],
    )
    .unwrap();
    wh.load_table("flights", batch).unwrap();
    let airports = Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("code", DataType::Text),
            Field::new("city", DataType::Text),
        ])),
        vec![
            Column::from_texts(vec!["ORD".into()]),
            Column::from_texts(vec!["Chicago".into()]),
        ],
    )
    .unwrap();
    wh.load_table("airports", airports).unwrap();
    wh
}

fn flights_table() -> TableSpec {
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Tail Number", "tail_number"))
        .unwrap();
    t.add_column(ColumnDef::source("Flight Date", "flight_date"))
        .unwrap();
    t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    t.add_column(ColumnDef::source("Cancelled", "cancelled"))
        .unwrap();
    t.add_column(ColumnDef::source("Origin", "origin")).unwrap();
    t
}

/// Render the full snapshot: flattened SQL, then every stage's canonical
/// standalone SQL with its DAG wiring.
fn render(compiled: &CompiledQuery) -> String {
    let mut out = String::new();
    out.push_str("== flattened ==\n");
    out.push_str(compiled.sql.trim_end());
    out.push('\n');
    for node in &compiled.stages.nodes {
        let inputs: Vec<&str> = node
            .inputs
            .iter()
            .map(|&i| compiled.stages.nodes[i].name.as_str())
            .collect();
        let tables = node.tables.join(", ");
        out.push_str(&format!(
            "\n== stage {} (inputs: [{}] tables: [{}]) ==\n",
            node.name,
            inputs.join(", "),
            tables
        ));
        out.push_str(node.sql.trim_end());
        out.push('\n');
    }
    out
}

/// Diff `actual` against `tests/golden/<name>.snap` (or rewrite it when
/// `UPDATE_GOLDEN` is set).
fn check(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}.snap", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {path}: {e}\nregenerate with UPDATE_GOLDEN=1")
    });
    if expected != actual {
        let mut diff = String::new();
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                diff.push_str(&format!("line {}:\n  golden: {e}\n  actual: {a}\n", i + 1));
            }
        }
        let (elen, alen) = (expected.lines().count(), actual.lines().count());
        if elen != alen {
            diff.push_str(&format!(
                "line counts differ: golden {elen}, actual {alen}\n"
            ));
        }
        panic!(
            "compiled SQL drifted from golden snapshot {name}:\n{diff}\n\
             full output:\n{actual}\n\
             if intentional: UPDATE_GOLDEN=1 cargo test -p sigma-core --test compile_golden"
        );
    }
}

fn compile_and_check(name: &str, wb: &Workbook, element: &str) {
    compile_with_options(name, wb, element, CompileOptions::default());
}

fn compile_with_options(name: &str, wb: &Workbook, element: &str, options: CompileOptions) {
    let wh = warehouse();
    let schemas = WhSchemas(&wh);
    let compiler = Compiler::new(wb, &schemas, options);
    let compiled = compiler
        .compile_element(element)
        .unwrap_or_else(|e| panic!("compile {element}: {e}"));
    // The snapshot must describe SQL the warehouse actually accepts.
    wh.execute_sql(&compiled.sql)
        .unwrap_or_else(|e| panic!("snapshot SQL must execute: {e}\n{}", compiled.sql));
    check(name, &render(&compiled));
}

#[test]
fn golden_filter_and_formula() {
    let mut wb = Workbook::new(Some("g"));
    let mut t = flights_table();
    t.add_column(ColumnDef::formula("Is Late", "[Dep Delay] > 15", 0))
        .unwrap();
    t.add_column(ColumnDef::formula("Delay Hours", "[Dep Delay] / 60", 0))
        .unwrap();
    t.filters.push(FilterSpec {
        column: "Origin".into(),
        predicate: FilterPredicate::OneOf(vec![
            Value::Text("ORD".into()),
            Value::Text("JFK".into()),
        ]),
    });
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();
    compile_and_check("filter_and_formula", &wb, "Flights");
}

#[test]
fn golden_grouped_aggregates() {
    let mut wb = Workbook::new(Some("g"));
    let mut t = flights_table();
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    t.add_column(ColumnDef::formula("Avg Delay", "Avg([Dep Delay])", 1))
        .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "ByPlane", ElementKind::Table(t)).unwrap();
    compile_and_check("grouped_aggregates", &wb, "ByPlane");
}

#[test]
fn golden_multikey_grouping_with_aggregate_filter() {
    let mut wb = Workbook::new(Some("g"));
    let mut t = flights_table();
    t.add_level(
        1,
        Level::keyed(
            "By Plane Origin",
            vec!["Tail Number".into(), "Origin".into()],
        ),
    )
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Cancellations",
        "CountIf([Cancelled])",
        1,
    ))
    .unwrap();
    t.filters.push(FilterSpec {
        column: "Cancellations".into(),
        predicate: FilterPredicate::Range {
            min: Some(Value::Int(1)),
            max: None,
        },
    });
    wb.add_element(0, "F", ElementKind::Table(t)).unwrap();
    compile_and_check("multikey_grouping_with_aggregate_filter", &wb, "F");
}

#[test]
fn golden_summary_cross_level_percent() {
    let mut wb = Workbook::new(Some("g"));
    let mut t = flights_table();
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Plane Delay", "Sum([Dep Delay])", 1))
        .unwrap();
    t.add_column(ColumnDef::formula("Total Delay", "Sum([Dep Delay])", 2))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Share",
        "[Plane Delay] / [Total Delay]",
        1,
    ))
    .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "Shares", ElementKind::Table(t)).unwrap();
    compile_and_check("summary_cross_level_percent", &wb, "Shares");
}

#[test]
fn golden_window_functions() {
    let mut wb = Workbook::new(Some("g"));
    let mut t = flights_table();
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.levels[0] = Level::base().with_ordering("Flight Date", false);
    t.add_column(ColumnDef::formula("Prev Date", "Lag([Flight Date], 1)", 0))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Gap Days",
        "DateDiff(\"day\", Lag([Flight Date], 1), [Flight Date])",
        0,
    ))
    .unwrap();
    wb.add_element(0, "Session", ElementKind::Table(t)).unwrap();
    compile_and_check("window_functions", &wb, "Session");
}

#[test]
fn golden_rollup_self_join() {
    let mut wb = Workbook::new(Some("g"));
    let mut t = flights_table();
    t.add_column(ColumnDef::formula(
        "First Flight",
        "Rollup(Min([Flights/Flight Date]), [Tail Number], [Flights/Tail Number])",
        0,
    ))
    .unwrap();
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();
    compile_and_check("rollup_self_join", &wb, "Flights");
}

#[test]
fn golden_lookup_join() {
    let mut wb = Workbook::new(Some("g"));
    let mut airports = TableSpec::new(DataSource::WarehouseTable {
        table: "airports".into(),
    });
    airports
        .add_column(ColumnDef::source("Code", "code"))
        .unwrap();
    airports
        .add_column(ColumnDef::source("City", "city"))
        .unwrap();
    wb.add_element(0, "Airports", ElementKind::Table(airports))
        .unwrap();
    let mut t = flights_table();
    t.add_column(ColumnDef::formula(
        "Origin City",
        "Lookup([Airports/City], [Origin], [Airports/Code])",
        0,
    ))
    .unwrap();
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();
    compile_and_check("lookup_join", &wb, "Flights");
}

#[test]
fn golden_control_binding() {
    let mut wb = Workbook::new(Some("g"));
    wb.add_element(
        0,
        "Min Delay",
        ElementKind::Control(ControlSpec::slider(0.0, 120.0, 5.0, 20.0)),
    )
    .unwrap();
    let mut t = flights_table();
    t.add_column(ColumnDef::formula("Over", "[Dep Delay] >= [Min Delay]", 0))
        .unwrap();
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();
    compile_and_check("control_binding", &wb, "Flights");
}

#[test]
fn golden_element_chain_and_materialization() {
    let mut wb = Workbook::new(Some("g"));
    let mut base = flights_table();
    base.add_column(ColumnDef::formula("Is Late", "[Dep Delay] > 15", 0))
        .unwrap();
    wb.add_element(0, "Flights", ElementKind::Table(base))
        .unwrap();
    let mut derived = TableSpec::new(DataSource::Element {
        name: "Flights".into(),
    });
    derived
        .add_column(ColumnDef::source("Tail Number", "Tail Number"))
        .unwrap();
    derived
        .add_column(ColumnDef::source("Is Late", "Is Late"))
        .unwrap();
    derived
        .add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    derived
        .add_column(ColumnDef::formula("Late Flights", "CountIf([Is Late])", 1))
        .unwrap();
    derived.detail_level = 1;
    wb.add_element(0, "LateByPlane", ElementKind::Table(derived))
        .unwrap();
    // Un-substituted: the chain inlines as nested stages.
    compile_and_check("element_chain", &wb, "LateByPlane");
    // With materialized-view substitution the source collapses to a scan.
    let wh = warehouse();
    wh.execute_sql(
        "CREATE OR REPLACE TABLE mat_flights AS SELECT tail_number AS \"Tail Number\", \
         dep_delay > 15 AS \"Is Late\" FROM flights",
    )
    .unwrap();
    let schemas = WhSchemas(&wh);
    let options = CompileOptions::default().with_materialization("Flights", "mat_flights");
    let compiled = Compiler::new(&wb, &schemas, options)
        .compile_element("LateByPlane")
        .unwrap();
    wh.execute_sql(&compiled.sql).unwrap();
    check("element_chain_materialized", &render(&compiled));
}

#[test]
fn golden_viz() {
    let mut wb = Workbook::new(Some("g"));
    let viz = sigma_core::viz::VizSpec::new(
        DataSource::WarehouseTable {
            table: "flights".into(),
        },
        sigma_core::viz::Mark::Bar,
    )
    .encode(sigma_core::viz::Channel::X, "Origin", "[origin]")
    .encode(sigma_core::viz::Channel::Y, "Flights", "Count()");
    wb.add_element(0, "Chart", ElementKind::Viz(viz)).unwrap();
    compile_and_check("viz_bar", &wb, "Chart");
}

#[test]
fn golden_pivot() {
    let mut wb = Workbook::new(Some("g"));
    let pivot = sigma_core::pivot::PivotSpec::new(
        DataSource::WarehouseTable {
            table: "flights".into(),
        },
        vec![("Origin".into(), "[origin]".into())],
        ("Quarter".into(), "Quarter([flight_date])".into()),
        vec![("Flights".into(), "Count()".into())],
    );
    wb.add_element(0, "P", ElementKind::Pivot(pivot)).unwrap();
    let wh = warehouse();
    let schemas = WhSchemas(&wh);
    let compiler = Compiler::new(&wb, &schemas, CompileOptions::default());
    // Header discovery SQL plus the pivot compiled for a fixed header set
    // (data-independent, so the snapshot never depends on table contents).
    let discovery = compiler.pivot_discovery_query("P").unwrap();
    wh.execute_sql(&discovery.sql).unwrap();
    let headers = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
    let compiled = compiler.compile_pivot("P", &headers).unwrap();
    wh.execute_sql(&compiled.sql).unwrap();
    let mut out = String::from("== discovery ==\n");
    out.push_str(discovery.sql.trim_end());
    out.push('\n');
    out.push_str(&render(&compiled));
    check("pivot_two_phase", &out);
}

/// The snapshots describe stage DAGs the service caches by fingerprint —
/// sanity-check the sink invariant the directory relies on.
#[test]
fn golden_snapshots_cover_multi_stage_plans() {
    let mut wb = Workbook::new(Some("g"));
    let mut t = flights_table();
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "ByPlane", ElementKind::Table(t)).unwrap();
    let wh = warehouse();
    let schemas = WhSchemas(&wh);
    let compiled = Compiler::new(&wb, &schemas, CompileOptions::default())
        .compile_element("ByPlane")
        .unwrap();
    assert!(compiled.stages.nodes.len() > 2);
    assert_eq!(compiled.stages.nodes.last().unwrap().name, StagePlan::SINK);
}
