//! Stage-DAG fingerprint guarantees.
//!
//! 1. **Determinism**: two independent compiler runs over the same
//!    workbook state produce byte-identical per-stage SQL and identical
//!    fingerprints (the directory key is reproducible across processes —
//!    FNV-1a has no per-run seeding).
//! 2. **Isolation (Merkle property)**: an edit perturbs only the
//!    fingerprints of stages downstream of the stage whose SQL changed;
//!    everything upstream keeps its fingerprint, which is what makes
//!    cross-edit prefix reuse sound.

use proptest::prelude::*;
use sigma_core::schema::StaticSchemas;
use sigma_core::table::{ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec};
use sigma_core::{CompileOptions, Compiler, ElementKind, StagePlan, Workbook};
use sigma_value::{DataType, Field, Schema, Value};

fn schemas() -> StaticSchemas {
    StaticSchemas::default().with(
        "flights",
        Schema::new(vec![
            Field::new("carrier", DataType::Text),
            Field::new("origin", DataType::Text),
            Field::new("dep_delay", DataType::Float),
            Field::new("air_time", DataType::Float),
        ]),
    )
}

/// A three-stage pipeline (source → base → level → summary) with a knob
/// per stage: the filter threshold lands in the base filter wrap, the
/// aggregate multiplier in lvl1, the summary constant in the summary.
fn workbook(threshold: f64, multiplier: i64, summary_add: i64) -> Workbook {
    let mut wb = Workbook::new(Some("fp"));
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    t.add_column(ColumnDef::formula("Delay Hours", "[Dep Delay] / 60", 0))
        .unwrap();
    t.add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Weighted Delay",
        format!("Sum([Delay Hours]) * {multiplier}"),
        1,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Total",
        format!("Count() + {summary_add}"),
        2,
    ))
    .unwrap();
    t.filters.push(FilterSpec {
        column: "Dep Delay".into(),
        predicate: FilterPredicate::Range {
            min: Some(Value::Float(threshold)),
            max: None,
        },
    });
    t.detail_level = 1;
    wb.add_element(0, "Delays", ElementKind::Table(t)).unwrap();
    wb
}

fn compile(wb: &Workbook) -> StagePlan {
    let schemas = schemas();
    let compiler = Compiler::new(wb, &schemas, CompileOptions::default());
    compiler.compile_element("Delays").unwrap().stages
}

#[test]
fn independent_runs_pin_identical_sql_and_fingerprints() {
    let p1 = compile(&workbook(15.0, 2, 1));
    let p2 = compile(&workbook(15.0, 2, 1));
    assert_eq!(p1.nodes.len(), p2.nodes.len());
    for (a, b) in p1.nodes.iter().zip(&p2.nodes) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.sql, b.sql, "stage {} SQL must be deterministic", a.name);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "stage {} fingerprint must be deterministic",
            a.name
        );
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.tables, b.tables);
    }
    // Golden structure: the pipeline decomposes into these stages.
    let names: Vec<&str> = p1.nodes.iter().map(|n| n.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "source",
            "base_0",
            "base_0_f",
            "lvl1_0",
            "summary_0",
            StagePlan::SINK
        ]
    );
    // Only the source touches the warehouse; the sink sees it transitively.
    assert_eq!(p1.nodes[0].tables, vec!["flights"]);
    assert!(p1.nodes[1..].iter().all(|n| n.tables.is_empty()));
    assert_eq!(p1.sink().all_tables, vec!["flights"]);
}

#[test]
fn filter_edit_keeps_the_upstream_prefix() {
    let p1 = compile(&workbook(15.0, 2, 1));
    let p2 = compile(&workbook(30.0, 2, 1));
    let fp = |p: &StagePlan, name: &str| p.nodes[p.node_index(name).unwrap()].fingerprint;
    // The filter lands in the base_0_f wrap: source and base_0 are reusable.
    assert_eq!(fp(&p1, "source"), fp(&p2, "source"));
    assert_eq!(fp(&p1, "base_0"), fp(&p2, "base_0"));
    assert_ne!(fp(&p1, "base_0_f"), fp(&p2, "base_0_f"));
    assert_ne!(fp(&p1, "lvl1_0"), fp(&p2, "lvl1_0")); // Merkle: downstream moves
    assert_ne!(p1.root_fingerprint(), p2.root_fingerprint());
}

#[test]
fn level_formula_edit_keeps_base_and_filter_stages() {
    let p1 = compile(&workbook(15.0, 2, 1));
    let p2 = compile(&workbook(15.0, 3, 1));
    let fp = |p: &StagePlan, name: &str| p.nodes[p.node_index(name).unwrap()].fingerprint;
    for reusable in ["source", "base_0", "base_0_f"] {
        assert_eq!(fp(&p1, reusable), fp(&p2, reusable), "{reusable}");
    }
    assert_ne!(fp(&p1, "lvl1_0"), fp(&p2, "lvl1_0"));
}

proptest! {
    /// Editing one knob never changes the fingerprint of a stage that does
    /// not transitively depend on a stage whose canonical SQL changed.
    #[test]
    fn edits_only_move_downstream_fingerprints(
        t1 in 0.0f64..100.0, t2 in 0.0f64..100.0,
        m1 in 1i64..20, m2 in 1i64..20,
        s1 in 0i64..20, s2 in 0i64..20,
    ) {
        let p1 = compile(&workbook(t1, m1, s1));
        let p2 = compile(&workbook(t2, m2, s2));
        prop_assert_eq!(p1.nodes.len(), p2.nodes.len());
        // Mark stages whose own SQL changed, then taint downstream.
        let n = p1.nodes.len();
        let mut tainted = vec![false; n];
        for (i, (a, b)) in p1.nodes.iter().zip(&p2.nodes).enumerate() {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.inputs, &b.inputs);
            if a.sql != b.sql || a.inputs.iter().any(|&j| tainted[j]) {
                tainted[i] = true;
            }
        }
        for (i, (a, b)) in p1.nodes.iter().zip(&p2.nodes).enumerate() {
            if tainted[i] {
                continue;
            }
            prop_assert_eq!(
                a.fingerprint, b.fingerprint,
                "untouched stage {} must keep its fingerprint", a.name
            );
        }
        // And the converse direction the cache relies on: equal
        // fingerprints imply byte-identical stage SQL all the way up.
        for (i, (a, b)) in p1.nodes.iter().zip(&p2.nodes).enumerate() {
            if a.fingerprint == b.fingerprint {
                prop_assert_eq!(&a.sql, &b.sql);
                prop_assert!(!tainted[i]);
            }
        }
    }
}
