//! The Workbook table element (paper §3.1, Figure 3): grouping levels,
//! columns, and filters over a data source.

use serde::{Deserialize, Serialize};
use sigma_value::Value;

use crate::error::CoreError;

/// Where a table element's rows come from (paper §3.1 "Data Sources"):
/// a database table, a SQL query, an uploaded CSV, or another element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataSource {
    /// A table in the customer's warehouse.
    WarehouseTable { table: String },
    /// A raw SQL query executed on the warehouse.
    RawSql { sql: String },
    /// Another workbook data element, referenced by name.
    Element { name: String },
    /// An uploaded CSV, marshaled into the warehouse under this table name
    /// by the service (§3.4).
    Csv { table: String },
}

/// How an additional input is combined with the primary source
/// ("Additional inputs can be included from the same types of sources via
/// joins or unions", §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceLink {
    Join {
        source: DataSource,
        /// (left column, right column) equality pairs.
        on: Vec<(String, String)>,
        /// Left joins keep all primary-source rows.
        left_outer: bool,
        /// Prefix applied to the joined input's column names.
        prefix: String,
    },
    Union {
        source: DataSource,
    },
}

/// One grouping level. Levels are ordered finest-to-coarsest with the base
/// at index 0; the summary level is implicit (always present, empty keys).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Level {
    pub name: String,
    /// Grouping key column names. Empty only for the base level.
    /// "The only restriction is that level keys must reference columns from
    /// a lower level" (§3.1).
    pub keys: Vec<String>,
    /// Ordering annotation: how this level's rows are arranged, which
    /// window expressions derive their ordering from.
    pub ordering: Vec<LevelOrdering>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelOrdering {
    pub column: String,
    pub descending: bool,
}

impl Level {
    pub fn base() -> Level {
        Level {
            name: "Base".into(),
            keys: Vec::new(),
            ordering: Vec::new(),
        }
    }

    pub fn keyed(name: impl Into<String>, keys: Vec<String>) -> Level {
        Level {
            name: name.into(),
            keys,
            ordering: Vec::new(),
        }
    }

    pub fn with_ordering(mut self, column: impl Into<String>, descending: bool) -> Level {
        self.ordering.push(LevelOrdering {
            column: column.into(),
            descending,
        });
        self
    }
}

/// A column's defining expression: either a direct reference to a source
/// column or a formula in the expression language.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnExpr {
    /// Passes through a column of the data source (base level only).
    Source(String),
    /// A formula, stored as text exactly as the user typed it.
    Formula(String),
}

/// One table column: expression, visibility, and resident level (§3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub expr: ColumnExpr,
    /// Resident level (index into `TableSpec::levels`;
    /// `levels.len()` = the summary level).
    pub level: usize,
    pub visible: bool,
    /// Display format hint (the model keeps it; rendering is the client's).
    pub format: Option<String>,
}

impl ColumnDef {
    pub fn source(name: impl Into<String>, source_col: impl Into<String>) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            expr: ColumnExpr::Source(source_col.into()),
            level: 0,
            visible: true,
            format: None,
        }
    }

    pub fn formula(name: impl Into<String>, formula: impl Into<String>, level: usize) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            expr: ColumnExpr::Formula(formula.into()),
            level,
            visible: true,
            format: None,
        }
    }

    pub fn hidden(mut self) -> ColumnDef {
        self.visible = false;
        self
    }
}

/// Filter widgets (§3.1): a predicate applied to one column's values.
/// Filters apply greedily, as soon as their dependencies are met.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterSpec {
    pub column: String,
    pub predicate: FilterPredicate,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterPredicate {
    /// Keep rows whose value is one of these.
    OneOf(Vec<Value>),
    /// Drop rows whose value is one of these.
    NotOneOf(Vec<Value>),
    /// Inclusive range (either bound may be open).
    Range {
        min: Option<Value>,
        max: Option<Value>,
    },
    /// Text containment.
    Contains(String),
    Equals(Value),
    IsNull,
    IsNotNull,
}

/// The table element specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSpec {
    pub source: DataSource,
    /// Extra inputs joined or unioned into the source.
    pub links: Vec<SourceLink>,
    /// Finest-to-coarsest; index 0 is the base (no keys). The summary level
    /// (empty key set, scalar aggregates) is implicit at index
    /// `levels.len()`.
    pub levels: Vec<Level>,
    pub columns: Vec<ColumnDef>,
    pub filters: Vec<FilterSpec>,
    /// Which level the compiled query materializes rows at (default base).
    pub detail_level: usize,
    /// Row limit applied to the compiled query (grids fetch pages).
    pub limit: Option<u64>,
}

impl TableSpec {
    /// A table over a source with only the base level.
    pub fn new(source: DataSource) -> TableSpec {
        TableSpec {
            source,
            links: Vec::new(),
            levels: vec![Level::base()],
            columns: Vec::new(),
            filters: Vec::new(),
            detail_level: 0,
            limit: None,
        }
    }

    /// Index of the implicit summary level.
    pub fn summary_level(&self) -> usize {
        self.levels.len()
    }

    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column_mut(&mut self, name: &str) -> Option<&mut ColumnDef> {
        self.columns
            .iter_mut()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Add a column, rejecting duplicates.
    pub fn add_column(&mut self, col: ColumnDef) -> Result<(), CoreError> {
        if self.column(&col.name).is_some() {
            return Err(CoreError::Document(format!(
                "duplicate column name: {}",
                col.name
            )));
        }
        if col.level > self.summary_level() {
            return Err(CoreError::Document(format!(
                "column {} resident at level {} but the table has {} levels",
                col.name,
                col.level,
                self.summary_level() + 1
            )));
        }
        self.columns.push(col);
        Ok(())
    }

    /// Insert a keyed grouping level above the base (finer-to-coarser
    /// position `index`, where 1 is just above the base).
    pub fn add_level(&mut self, index: usize, level: Level) -> Result<(), CoreError> {
        if index == 0 {
            return Err(CoreError::Document(
                "cannot insert below the base level".into(),
            ));
        }
        if index > self.levels.len() {
            return Err(CoreError::Document(format!(
                "level index {index} out of range"
            )));
        }
        if level.keys.is_empty() {
            return Err(CoreError::Document(
                "grouping levels require at least one key".into(),
            ));
        }
        self.levels.insert(index, level);
        // Shift resident levels at or above the insertion point.
        for c in &mut self.columns {
            if c.level >= index {
                c.level += 1;
            }
        }
        Ok(())
    }

    /// Structural validation: base has no keys, keys reference columns at
    /// finer levels, filters reference existing columns.
    pub fn validate(&self) -> Result<(), CoreError> {
        let Some(base) = self.levels.first() else {
            return Err(CoreError::Document("table has no base level".into()));
        };
        if !base.keys.is_empty() {
            return Err(CoreError::Document(
                "the base level cannot have keys".into(),
            ));
        }
        for (i, level) in self.levels.iter().enumerate() {
            if i > 0 && level.keys.is_empty() {
                return Err(CoreError::Document(format!(
                    "level {} has no keys",
                    level.name
                )));
            }
            for key in &level.keys {
                let Some(col) = self.column(key) else {
                    return Err(CoreError::Unresolved(format!(
                        "level {} keys on unknown column {key}",
                        level.name
                    )));
                };
                if col.level >= i {
                    return Err(CoreError::Document(format!(
                        "level {} key {key} must reference a column from a lower level",
                        level.name
                    )));
                }
            }
            for o in &level.ordering {
                if self.column(&o.column).is_none() {
                    return Err(CoreError::Unresolved(format!(
                        "level {} orders by unknown column {}",
                        level.name, o.column
                    )));
                }
            }
        }
        for f in &self.filters {
            if self.column(&f.column).is_none() {
                return Err(CoreError::Unresolved(format!(
                    "filter on unknown column {}",
                    f.column
                )));
            }
        }
        if self.detail_level > self.summary_level() {
            return Err(CoreError::Document(format!(
                "detail level {} out of range",
                self.detail_level
            )));
        }
        let mut seen: Vec<&str> = Vec::new();
        for c in &self.columns {
            if seen.iter().any(|s| s.eq_ignore_ascii_case(&c.name)) {
                return Err(CoreError::Document(format!(
                    "duplicate column name: {}",
                    c.name
                )));
            }
            seen.push(&c.name);
            if c.level > self.summary_level() {
                return Err(CoreError::Document(format!(
                    "column {} level out of range",
                    c.name
                )));
            }
            if c.level > 0 && matches!(c.expr, ColumnExpr::Source(_)) {
                return Err(CoreError::Document(format!(
                    "source column {} must live at the base level",
                    c.name
                )));
            }
        }
        Ok(())
    }

    /// Effective grouping key of a level: the union of its keys and every
    /// coarser level's keys (paper: levels arrange records in a nested
    /// fashion; the summary's effective key is empty).
    pub fn effective_keys(&self, level: usize) -> Vec<String> {
        let mut keys = Vec::new();
        for l in self.levels.iter().skip(level.max(1)) {
            for k in &l.keys {
                if !keys.iter().any(|e: &String| e.eq_ignore_ascii_case(k)) {
                    keys.push(k.clone());
                }
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TableSpec {
        let mut t = TableSpec::new(DataSource::WarehouseTable {
            table: "flights".into(),
        });
        t.add_column(ColumnDef::source("Tail Number", "tail_number"))
            .unwrap();
        t.add_column(ColumnDef::source("Flight Date", "flight_date"))
            .unwrap();
        t.add_column(ColumnDef::formula(
            "Cohort",
            "DateTrunc(\"quarter\", [Flight Date])",
            0,
        ))
        .unwrap();
        t
    }

    #[test]
    fn validate_ok_and_duplicates() {
        let mut t = spec();
        t.validate().unwrap();
        assert!(t.add_column(ColumnDef::source("cohort", "x")).is_err());
    }

    #[test]
    fn add_level_shifts_residents() {
        let mut t = spec();
        // Level 1 is the implicit summary while only the base exists;
        // level 2 is out of range.
        t.add_column(ColumnDef::formula("Total", "Count()", 2))
            .unwrap_err();
        t.add_level(1, Level::keyed("By Cohort", vec!["Cohort".into()]))
            .unwrap();
        t.add_column(ColumnDef::formula(
            "Planes",
            "CountDistinct([Tail Number])",
            1,
        ))
        .unwrap();
        t.validate().unwrap();
        // Insert a finer level below "By Cohort": resident levels shift.
        t.add_level(1, Level::keyed("By Tail", vec!["Tail Number".into()]))
            .unwrap();
        assert_eq!(t.column("Planes").unwrap().level, 2);
        t.validate().unwrap();
    }

    #[test]
    fn level_keys_must_be_lower() {
        let mut t = spec();
        t.add_level(1, Level::keyed("G", vec!["Cohort".into()]))
            .unwrap();
        t.add_column(ColumnDef::formula("N", "Count()", 1)).unwrap();
        // A level keyed on its own level's column is invalid.
        t.levels[1].keys = vec!["N".into()];
        assert!(t.validate().is_err());
    }

    #[test]
    fn effective_keys_union() {
        let mut t = spec();
        t.add_level(1, Level::keyed("Quarter", vec!["Flight Date".into()]))
            .unwrap();
        t.add_level(2, Level::keyed("Cohort", vec!["Cohort".into()]))
            .unwrap();
        assert_eq!(
            t.effective_keys(1),
            vec!["Flight Date".to_string(), "Cohort".to_string()]
        );
        assert_eq!(t.effective_keys(2), vec!["Cohort".to_string()]);
        assert_eq!(t.effective_keys(3), Vec::<String>::new()); // summary
                                                               // Base's effective key equals level 1's.
        assert_eq!(t.effective_keys(0), t.effective_keys(1));
    }

    #[test]
    fn base_keys_rejected() {
        let mut t = spec();
        t.levels[0].keys.push("Cohort".into());
        assert!(t.validate().is_err());
    }
}
