//! Interactive control elements (paper §3.5): sliders, lists, text inputs,
//! date pickers. Controls are referenced by column formulas and can be set
//! by parameters to the workbook document URL.

use serde::{Deserialize, Serialize};
use sigma_value::{calendar, Value};

use crate::error::CoreError;

/// The kind of widget and its constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlKind {
    Slider { min: f64, max: f64, step: f64 },
    List { options: Vec<Value> },
    TextInput,
    DatePicker,
}

/// A control element's specification and current value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlSpec {
    pub kind: ControlKind,
    pub value: Value,
}

impl ControlSpec {
    pub fn slider(min: f64, max: f64, step: f64, value: f64) -> ControlSpec {
        ControlSpec {
            kind: ControlKind::Slider { min, max, step },
            value: Value::Float(value),
        }
    }

    pub fn list(options: Vec<Value>, value: Value) -> ControlSpec {
        ControlSpec {
            kind: ControlKind::List { options },
            value,
        }
    }

    pub fn text(value: impl Into<String>) -> ControlSpec {
        ControlSpec {
            kind: ControlKind::TextInput,
            value: Value::Text(value.into()),
        }
    }

    pub fn date_picker(days: i32) -> ControlSpec {
        ControlSpec {
            kind: ControlKind::DatePicker,
            value: Value::Date(days),
        }
    }

    /// Set the control's value, validating against the widget constraints.
    pub fn set_value(&mut self, value: Value) -> Result<(), CoreError> {
        match (&self.kind, &value) {
            (ControlKind::Slider { min, max, .. }, v) => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| CoreError::Document("slider values must be numeric".into()))?;
                if x < *min || x > *max {
                    return Err(CoreError::Document(format!(
                        "slider value {x} outside [{min}, {max}]"
                    )));
                }
            }
            (ControlKind::List { options }, v) => {
                if !v.is_null() && !options.iter().any(|o| o == v) {
                    return Err(CoreError::Document(format!(
                        "{} is not one of the list options",
                        v.render()
                    )));
                }
            }
            (ControlKind::TextInput, Value::Text(_) | Value::Null) => {}
            (ControlKind::TextInput, _) => {
                return Err(CoreError::Document("text controls hold text".into()))
            }
            (ControlKind::DatePicker, Value::Date(_) | Value::Null) => {}
            (ControlKind::DatePicker, _) => {
                return Err(CoreError::Document("date controls hold dates".into()))
            }
        }
        self.value = value;
        Ok(())
    }

    /// Parse a URL-parameter string into this control's value type
    /// ("controls … can be set by parameters to the Workbook document URL",
    /// §3.5).
    pub fn parse_url_value(&self, raw: &str) -> Result<Value, CoreError> {
        let parsed = match &self.kind {
            ControlKind::Slider { .. } => raw
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| CoreError::Document(format!("bad slider value {raw:?}")))?,
            ControlKind::List { options } => {
                // Match by rendered form so numbers and text both work.
                options
                    .iter()
                    .find(|o| o.render() == raw)
                    .cloned()
                    .ok_or_else(|| CoreError::Document(format!("{raw:?} is not a list option")))?
            }
            ControlKind::TextInput => Value::Text(raw.to_string()),
            ControlKind::DatePicker => calendar::parse_date(raw)
                .map(Value::Date)
                .ok_or_else(|| CoreError::Document(format!("bad date {raw:?}")))?,
        };
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slider_bounds() {
        let mut c = ControlSpec::slider(0.0, 10.0, 1.0, 5.0);
        c.set_value(Value::Float(7.0)).unwrap();
        assert!(c.set_value(Value::Float(11.0)).is_err());
        assert!(c.set_value(Value::Text("x".into())).is_err());
    }

    #[test]
    fn list_membership() {
        let mut c = ControlSpec::list(
            vec![Value::Text("AA".into()), Value::Text("UA".into())],
            Value::Text("AA".into()),
        );
        c.set_value(Value::Text("UA".into())).unwrap();
        assert!(c.set_value(Value::Text("ZZ".into())).is_err());
        c.set_value(Value::Null).unwrap();
    }

    #[test]
    fn url_parsing() {
        let c = ControlSpec::date_picker(0);
        assert_eq!(
            c.parse_url_value("2020-03-01").unwrap(),
            Value::Date(calendar::days_from_civil(2020, 3, 1))
        );
        assert!(c.parse_url_value("yesterday").is_err());
        let s = ControlSpec::slider(0.0, 100.0, 1.0, 0.0);
        assert_eq!(s.parse_url_value("42.5").unwrap(), Value::Float(42.5));
    }
}
