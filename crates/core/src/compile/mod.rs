//! The formula-to-SQL compiler: the heart of the paper.
//!
//! Each table element compiles to one CTE pipeline:
//!
//! ```text
//! WITH source AS (SELECT raw cols [+ lookup/rollup join values] FROM input),
//!      base_0 AS (SELECT base formulas, window calcs ... FROM source WHERE greedy filters),
//!      lvl1_0 AS (SELECT keys, aggregates ... FROM base_0 GROUP BY keys),
//!      ...,
//!      summary_0 AS (SELECT scalar aggregates FROM lvlK_0),
//!      base_1 AS (base_0 joined back to coarser levels for cross-level refs),
//!      ...
//! SELECT visible columns FROM <detail> JOIN <coarser levels> ORDER BY hierarchy
//! ```
//!
//! Columns are assigned *phases*: phase 0 formulas flow strictly upward
//! (finer → coarser); a formula that references a coarser level's column
//! (cross-level reference, §3.1) lands in a later phase whose stage CTE
//! joins the already-materialized coarser CTE back in. Arbitrary phase
//! depth is supported, so aggregates of cross-level expressions compile
//! too.
//!
//! `Lookup`/`Rollup` (§3.2) compile to LEFT JOINs in the `source` CTE
//! against the target element's compiled query (or its materialized table
//! when the service has one — "materialized view substitution", §2),
//! grouped by the join key so cardinality never changes.

mod context;
pub mod delta;
mod formula;
pub mod stageplan;
mod stages;

use std::collections::HashMap;

use sigma_sql::printer::print_query;
use sigma_sql::{Dialect, Query};

use crate::document::ElementKind;
use crate::error::CoreError;
pub use crate::schema::CompiledQuery;
pub use delta::{classify_plan_delta, PlanDelta, StageEdit, StageEditKind};
pub use stageplan::{Fingerprint, StageNode, StagePlan};

use crate::schema::SchemaProvider;
use crate::table::TableSpec;
use crate::Workbook;

pub(crate) use context::TableCtx;

/// Compiler configuration.
#[derive(Clone)]
pub struct CompileOptions {
    pub dialect: Dialect,
    /// Element name (lower-cased) → warehouse table holding its fresh
    /// materialization. Referenced elements with an entry are compiled as
    /// a scan of that table instead of their full query (§2, §4).
    pub materializations: HashMap<String, String>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            dialect: Dialect::generic(),
            materializations: HashMap::new(),
        }
    }
}

impl CompileOptions {
    pub fn with_materialization(
        mut self,
        element: &str,
        table: impl Into<String>,
    ) -> CompileOptions {
        self.materializations
            .insert(element.to_ascii_lowercase(), table.into());
        self
    }
}

/// Compiles workbook elements to SQL.
pub struct Compiler<'a> {
    pub workbook: &'a Workbook,
    pub schemas: &'a dyn SchemaProvider,
    pub options: CompileOptions,
}

impl<'a> Compiler<'a> {
    pub fn new(
        workbook: &'a Workbook,
        schemas: &'a dyn SchemaProvider,
        options: CompileOptions,
    ) -> Compiler<'a> {
        Compiler {
            workbook,
            schemas,
            options,
        }
    }

    /// Compile a data element by name.
    pub fn compile_element(&self, name: &str) -> Result<CompiledQuery, CoreError> {
        // Cycle/reference validation across the whole input graph first
        // (§2: "query input graph resolution").
        crate::graph::resolve_order(self.workbook, &[name])?;
        self.compile_element_unchecked(name)
    }

    pub(crate) fn compile_element_unchecked(&self, name: &str) -> Result<CompiledQuery, CoreError> {
        let element = self
            .workbook
            .element(name)
            .ok_or_else(|| CoreError::Unresolved(format!("element {name}")))?;
        match &element.kind {
            ElementKind::Table(spec) => self.compile_table(spec, &element.name),
            ElementKind::Viz(viz) => {
                let spec = viz.to_table_spec()?;
                self.compile_table(&spec, &element.name)
            }
            ElementKind::Input(input) => {
                let table = input.warehouse_table.clone().ok_or_else(|| {
                    CoreError::Compile(format!(
                        "input table {name} has not been projected into the warehouse yet"
                    ))
                })?;
                // Input elements read back their projection (minus the
                // bookkeeping row id).
                let mut spec = TableSpec::new(crate::table::DataSource::WarehouseTable { table });
                for (col, _) in &input.columns {
                    spec.add_column(crate::table::ColumnDef::source(col.clone(), col.clone()))?;
                }
                self.compile_table(&spec, &element.name)
            }
            ElementKind::Pivot(_) => Err(CoreError::Compile(format!(
                "{name} is a pivot: use pivot_discovery_query() then compile_pivot()"
            ))),
            _ => Err(CoreError::Compile(format!("{name} is not a data element"))),
        }
    }

    /// Compile a table spec (the workhorse).
    pub fn compile_table(
        &self,
        spec: &TableSpec,
        self_name: &str,
    ) -> Result<CompiledQuery, CoreError> {
        spec.validate()?;
        let ctx = TableCtx::build(self, spec, self_name)?;
        let query = stages::build_query(&ctx)?;
        Ok(self.finish(query, &ctx))
    }

    /// Phase 1 of pivot compilation: the distinct header values query.
    pub fn pivot_discovery_query(&self, name: &str) -> Result<CompiledQuery, CoreError> {
        let element = self
            .workbook
            .element(name)
            .ok_or_else(|| CoreError::Unresolved(format!("element {name}")))?;
        let ElementKind::Pivot(pivot) = &element.kind else {
            return Err(CoreError::Compile(format!("{name} is not a pivot")));
        };
        pivot.validate()?;
        let mut spec = TableSpec::new(pivot.source.clone());
        spec.add_column(crate::table::ColumnDef::formula(
            pivot.column.0.clone(),
            pivot.discovery_formula().to_string(),
            0,
        ))?;
        spec.filters = pivot.filters.clone();
        spec.add_level(
            1,
            crate::table::Level::keyed("Header", vec![pivot.column.0.clone()]),
        )?;
        spec.detail_level = 1;
        spec.limit = Some(crate::pivot::MAX_PIVOT_VALUES as u64 + 1);
        self.compile_table(&spec, &element.name)
    }

    /// Phase 2 of pivot compilation: with discovered header values.
    pub fn compile_pivot(
        &self,
        name: &str,
        header_values: &[sigma_value::Value],
    ) -> Result<CompiledQuery, CoreError> {
        let element = self
            .workbook
            .element(name)
            .ok_or_else(|| CoreError::Unresolved(format!("element {name}")))?;
        let ElementKind::Pivot(pivot) = &element.kind else {
            return Err(CoreError::Compile(format!("{name} is not a pivot")));
        };
        pivot.validate()?;
        let mut spec = TableSpec::new(pivot.source.clone());
        let mut row_names = Vec::new();
        for (rname, rformula) in &pivot.rows {
            spec.add_column(crate::table::ColumnDef::formula(
                rname.clone(),
                rformula.clone(),
                0,
            ))?;
            row_names.push(rname.clone());
        }
        if row_names.is_empty() {
            // No row dimensions: a single summary row.
            for (cname, cformula) in pivot.pivoted_value_formulas(header_values)? {
                spec.add_column(crate::table::ColumnDef::formula(cname, cformula, 1))?;
            }
            spec.detail_level = 1;
        } else {
            spec.add_level(1, crate::table::Level::keyed("Rows", row_names))?;
            for (cname, cformula) in pivot.pivoted_value_formulas(header_values)? {
                spec.add_column(crate::table::ColumnDef::formula(cname, cformula, 1))?;
            }
            spec.detail_level = 1;
        }
        spec.filters = pivot.filters.clone();
        self.compile_table(&spec, &element.name)
    }

    fn finish(&self, query: Query, ctx: &TableCtx<'_>) -> CompiledQuery {
        let sql = print_query(&query, &self.options.dialect);
        let stages = StagePlan::from_query(&query, &self.options.dialect);
        CompiledQuery {
            query,
            sql,
            stages,
            output: ctx.output_columns(),
            detail_level: ctx.spec.detail_level,
        }
    }
}

#[cfg(test)]
mod tests;
