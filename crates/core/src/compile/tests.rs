//! Compiler tests that execute generated SQL against the real warehouse
//! simulator, validating semantics end to end.

use std::sync::Arc;

use sigma_cdw::Warehouse;
use sigma_value::{calendar, Batch, Column, DataType, Field, Schema, Value};

use crate::controls::ControlSpec;
use crate::document::{ElementKind, Workbook};
use crate::schema::SchemaProvider;
use crate::table::{ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec};
use crate::{CompileOptions, Compiler};

/// Adapter: the warehouse is the schema provider.
struct WhSchemas<'a>(&'a Warehouse);

impl SchemaProvider for WhSchemas<'_> {
    fn table_schema(&self, table: &str) -> Option<Arc<Schema>> {
        self.0.table_schema(table)
    }
    fn query_schema(&self, sql: &str) -> Option<Arc<Schema>> {
        self.0.query_schema(sql).ok()
    }
}

fn d(y: i32, m: u32, dd: u32) -> i32 {
    calendar::days_from_civil(y, m, dd)
}

/// A small flights table with enough structure for every compiler feature:
/// two planes, flights across two quarters, delays and cancellations.
fn warehouse() -> Warehouse {
    let wh = Warehouse::default();
    let schema = Arc::new(Schema::new(vec![
        Field::new("tail_number", DataType::Text),
        Field::new("flight_date", DataType::Date),
        Field::new("dep_delay", DataType::Float),
        Field::new("cancelled", DataType::Bool),
        Field::new("origin", DataType::Text),
        Field::new("air_time", DataType::Float),
    ]));
    let batch = Batch::new(
        schema,
        vec![
            Column::from_texts(
                ["N1", "N1", "N1", "N2", "N2", "N2"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
            Column::from_dates(vec![
                d(2019, 1, 5),
                d(2019, 1, 20),
                d(2019, 4, 2),
                d(2019, 4, 10),
                d(2019, 4, 22),
                d(2019, 7, 1),
            ]),
            Column::from_opt_floats(vec![
                Some(5.0),
                Some(25.0),
                Some(0.0),
                None,
                Some(40.0),
                Some(10.0),
            ]),
            Column::from_bools(vec![false, false, true, false, true, false]),
            Column::from_texts(
                ["ORD", "SFO", "ORD", "JFK", "JFK", "ORD"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
            Column::from_floats(vec![120.0, 90.0, 60.0, 200.0, 180.0, 150.0]),
        ],
    )
    .unwrap();
    wh.load_table("flights", batch).unwrap();

    let airports = Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("code", DataType::Text),
            Field::new("city", DataType::Text),
        ])),
        vec![
            Column::from_texts(vec!["ORD".into(), "SFO".into()]),
            Column::from_texts(vec!["Chicago".into(), "San Francisco".into()]),
        ],
    )
    .unwrap();
    wh.load_table("airports", airports).unwrap();
    wh
}

fn flights_table() -> TableSpec {
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Tail Number", "tail_number"))
        .unwrap();
    t.add_column(ColumnDef::source("Flight Date", "flight_date"))
        .unwrap();
    t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    t.add_column(ColumnDef::source("Cancelled", "cancelled"))
        .unwrap();
    t.add_column(ColumnDef::source("Origin", "origin")).unwrap();
    t
}

fn run(wb: &Workbook, wh: &Warehouse, element: &str) -> Batch {
    let schemas = WhSchemas(wh);
    let compiler = Compiler::new(wb, &schemas, CompileOptions::default());
    let compiled = compiler
        .compile_element(element)
        .unwrap_or_else(|e| panic!("compile {element}: {e}"));
    wh.execute_sql(&compiled.sql)
        .unwrap_or_else(|e| panic!("execute failed: {e}\n--- SQL ---\n{}", compiled.sql))
        .batch
}

#[test]
fn passthrough_with_scalar_formula_and_filter() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut t = flights_table();
    t.add_column(ColumnDef::formula("Is Late", "[Dep Delay] > 15", 0))
        .unwrap();
    t.filters.push(FilterSpec {
        column: "Origin".into(),
        predicate: FilterPredicate::OneOf(vec!["ORD".into()]),
    });
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();
    let b = run(&wb, &wh, "Flights");
    assert_eq!(b.num_rows(), 3);
    let is_late = b.column_by_name("Is Late").unwrap();
    // ORD rows: delays 5, 0, 10 -> none late.
    assert_eq!(
        is_late.iter().filter(|v| *v == Value::Bool(true)).count(),
        0
    );
}

#[test]
fn grouping_level_aggregates() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut t = flights_table();
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    t.add_column(ColumnDef::formula("Avg Delay", "Avg([Dep Delay])", 1))
        .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "ByPlane", ElementKind::Table(t)).unwrap();
    let b = run(&wb, &wh, "ByPlane");
    assert_eq!(b.num_rows(), 2);
    assert_eq!(b.column_by_name("Flights").unwrap().value(0), Value::Int(3));
    // N1 delays: 5, 25, 0 -> avg 10.
    assert_eq!(
        b.column_by_name("Avg Delay").unwrap().value(0),
        Value::Float(10.0)
    );
}

#[test]
fn summary_and_cross_level_percent() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut t = flights_table();
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    let summary = t.summary_level();
    // Summary aggregates aggregate the next finer level's rows, so the
    // grand total of base rows is the sum of the per-plane counts.
    t.add_column(ColumnDef::formula("Total", "Sum([Flights])", summary))
        .unwrap();
    // Cross-level (downward) reference: level-1 formula uses the summary.
    t.add_column(ColumnDef::formula("Share", "[Flights] / [Total]", 1))
        .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "Shares", ElementKind::Table(t)).unwrap();
    let b = run(&wb, &wh, "Shares");
    assert_eq!(b.num_rows(), 2);
    let share = b.column_by_name("Share").unwrap();
    assert_eq!(share.value(0), Value::Float(0.5));
    assert_eq!(share.value(1), Value::Float(0.5));
    assert_eq!(b.column_by_name("Total").unwrap().value(0), Value::Int(6));
}

#[test]
fn window_functions_lag_and_filldown() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut t = flights_table();
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.levels[0] = Level::base().with_ordering("Flight Date", false);
    t.add_column(ColumnDef::formula("Prev Date", "Lag([Flight Date], 1)", 0))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Gap Days",
        "DateDiff(\"day\", Lag([Flight Date], 1), [Flight Date])",
        0,
    ))
    .unwrap();
    wb.add_element(0, "Session", ElementKind::Table(t)).unwrap();
    let b = run(&wb, &wh, "Session");
    assert_eq!(b.num_rows(), 6);
    // Rows ordered by tail then date. First row per plane has NULL lag.
    let prev = b.column_by_name("Prev Date").unwrap();
    assert!(prev.is_null(0));
    assert_eq!(prev.value(1), Value::Date(d(2019, 1, 5)));
    assert!(prev.is_null(3)); // first N2 row
    let gap = b.column_by_name("Gap Days").unwrap();
    assert_eq!(gap.value(1), Value::Int(15));
}

#[test]
fn rollup_self_join_cohort() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut t = flights_table();
    // Scenario 1's move: first flight date per plane via self-Rollup.
    t.add_column(ColumnDef::formula(
        "First Flight",
        "Rollup(Min([Flights/Flight Date]), [Tail Number], [Flights/Tail Number])",
        0,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Cohort",
        "DateTrunc(\"quarter\", [First Flight])",
        0,
    ))
    .unwrap();
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();
    let b = run(&wb, &wh, "Flights");
    let first = b.column_by_name("First Flight").unwrap();
    let cohort = b.column_by_name("Cohort").unwrap();
    for i in 0..b.num_rows() {
        let tail = b.column_by_name("Tail Number").unwrap().value(i);
        if tail == Value::Text("N1".into()) {
            assert_eq!(first.value(i), Value::Date(d(2019, 1, 5)));
            assert_eq!(cohort.value(i), Value::Date(d(2019, 1, 1)));
        } else {
            assert_eq!(first.value(i), Value::Date(d(2019, 4, 10)));
            assert_eq!(cohort.value(i), Value::Date(d(2019, 4, 1)));
        }
    }
}

#[test]
fn lookup_other_element() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut airports = TableSpec::new(DataSource::WarehouseTable {
        table: "airports".into(),
    });
    airports
        .add_column(ColumnDef::source("Code", "code"))
        .unwrap();
    airports
        .add_column(ColumnDef::source("City", "city"))
        .unwrap();
    wb.add_element(0, "Airports", ElementKind::Table(airports))
        .unwrap();

    let mut t = flights_table();
    t.add_column(ColumnDef::formula(
        "Origin City",
        "Lookup([Airports/City], [Origin], [Airports/Code])",
        0,
    ))
    .unwrap();
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();
    let b = run(&wb, &wh, "Flights");
    assert_eq!(b.num_rows(), 6); // cardinality preserved
    let city = b.column_by_name("Origin City").unwrap();
    let origin = b.column_by_name("Origin").unwrap();
    for i in 0..6 {
        match origin.value(i).render().as_str() {
            "ORD" => assert_eq!(city.value(i), Value::Text("Chicago".into())),
            "SFO" => assert_eq!(city.value(i), Value::Text("San Francisco".into())),
            "JFK" => assert!(city.is_null(i)), // VLOOKUP miss
            other => panic!("unexpected origin {other}"),
        }
    }
}

#[test]
fn control_binding_inlines_value() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    wb.add_element(
        0,
        "Min Delay",
        ElementKind::Control(ControlSpec::slider(0.0, 120.0, 5.0, 20.0)),
    )
    .unwrap();
    let mut t = flights_table();
    t.add_column(ColumnDef::formula("Over", "[Dep Delay] >= [Min Delay]", 0))
        .unwrap();
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();

    let schemas = WhSchemas(&wh);
    let compiler = Compiler::new(&wb, &schemas, CompileOptions::default());
    let compiled = compiler.compile_element("Flights").unwrap();
    assert!(compiled.sql.contains("20.0"), "{}", compiled.sql);
    let b = wh.execute_sql(&compiled.sql).unwrap().batch;
    let over = b.column_by_name("Over").unwrap();
    assert_eq!(over.iter().filter(|v| *v == Value::Bool(true)).count(), 2); // 25, 40
}

#[test]
fn greedy_filter_on_aggregate_level() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut t = flights_table();
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Cancel Rate",
        "AvgIf([Cancelled], 1.0)",
        1,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Cancellations",
        "CountIf([Cancelled])",
        1,
    ))
    .unwrap();
    t.filters.push(FilterSpec {
        column: "Cancellations".into(),
        predicate: FilterPredicate::Range {
            min: Some(Value::Int(1)),
            max: None,
        },
    });
    // Detail stays at base: filtered groups must drop their base rows too.
    wb.add_element(0, "F", ElementKind::Table(t)).unwrap();
    let b = run(&wb, &wh, "F");
    // Both planes have >= 1 cancellation, so nothing drops...
    assert_eq!(b.num_rows(), 6);
    // Tighten: require >= 2 cancellations - no plane qualifies? N1 has 1,
    // N2 has 1. Rebuild with min 2.
    let mut wb2 = Workbook::new(Some("t2"));
    let mut t2 = flights_table();
    t2.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t2.add_column(ColumnDef::formula(
        "Cancellations",
        "CountIf([Cancelled])",
        1,
    ))
    .unwrap();
    t2.filters.push(FilterSpec {
        column: "Cancellations".into(),
        predicate: FilterPredicate::Range {
            min: Some(Value::Int(2)),
            max: None,
        },
    });
    wb2.add_element(0, "F", ElementKind::Table(t2)).unwrap();
    let b2 = run(&wb2, &wh, "F");
    assert_eq!(b2.num_rows(), 0);
}

#[test]
fn element_source_chains_and_materialization() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut base = flights_table();
    base.add_column(ColumnDef::formula("Is Late", "[Dep Delay] > 15", 0))
        .unwrap();
    wb.add_element(0, "Flights", ElementKind::Table(base))
        .unwrap();

    let mut derived = TableSpec::new(DataSource::Element {
        name: "Flights".into(),
    });
    derived
        .add_column(ColumnDef::source("Tail Number", "Tail Number"))
        .unwrap();
    derived
        .add_column(ColumnDef::source("Is Late", "Is Late"))
        .unwrap();
    derived
        .add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    derived
        .add_column(ColumnDef::formula("Late Flights", "CountIf([Is Late])", 1))
        .unwrap();
    derived.detail_level = 1;
    wb.add_element(0, "LateByPlane", ElementKind::Table(derived))
        .unwrap();

    // Un-materialized: the whole chain is one query.
    let b = run(&wb, &wh, "LateByPlane");
    assert_eq!(b.num_rows(), 2);

    // Materialized: substitute a warehouse table for Flights.
    wh.execute_sql(
        "CREATE OR REPLACE TABLE mat_flights AS SELECT tail_number AS \"Tail Number\", \
         dep_delay > 15 AS \"Is Late\" FROM flights",
    )
    .unwrap();
    let schemas = WhSchemas(&wh);
    let options = CompileOptions::default().with_materialization("Flights", "mat_flights");
    let compiler = Compiler::new(&wb, &schemas, options);
    let compiled = compiler.compile_element("LateByPlane").unwrap();
    assert!(compiled.sql.contains("mat_flights"), "{}", compiled.sql);
    assert!(
        !compiled.sql.to_lowercase().contains("from flights"),
        "{}",
        compiled.sql
    );
    let b2 = wh.execute_sql(&compiled.sql).unwrap().batch;
    assert_eq!(b2.num_rows(), 2);
}

#[test]
fn viz_compiles_and_runs() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let viz = crate::viz::VizSpec::new(
        DataSource::WarehouseTable {
            table: "flights".into(),
        },
        crate::viz::Mark::Bar,
    )
    .encode(crate::viz::Channel::X, "Origin", "[origin]")
    .encode(crate::viz::Channel::Y, "Flights", "Count()");
    wb.add_element(0, "Chart", ElementKind::Viz(viz)).unwrap();
    let b = run(&wb, &wh, "Chart");
    assert_eq!(b.num_rows(), 3); // ORD, SFO, JFK
}

#[test]
fn pivot_two_phase() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let pivot = crate::pivot::PivotSpec::new(
        DataSource::WarehouseTable {
            table: "flights".into(),
        },
        vec![("Origin".into(), "[origin]".into())],
        ("Quarter".into(), "Quarter([flight_date])".into()),
        vec![("Flights".into(), "Count()".into())],
    );
    wb.add_element(0, "P", ElementKind::Pivot(pivot)).unwrap();
    let schemas = WhSchemas(&wh);
    let compiler = Compiler::new(&wb, &schemas, CompileOptions::default());

    let discovery = compiler.pivot_discovery_query("P").unwrap();
    let headers = wh.execute_sql(&discovery.sql).unwrap().batch;
    let values: Vec<Value> = (0..headers.num_rows())
        .map(|i| headers.value(i, 0))
        .collect();
    assert_eq!(values.len(), 3); // Q1, Q2, Q3

    let compiled = compiler.compile_pivot("P", &values).unwrap();
    let b = wh.execute_sql(&compiled.sql).unwrap().batch;
    assert_eq!(b.num_rows(), 3); // per origin
    assert_eq!(b.num_columns(), 1 + 3); // Origin + one column per quarter
}

#[test]
fn deterministic_sql_output() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut t = flights_table();
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("N", "Count()", 1)).unwrap();
    wb.add_element(0, "F", ElementKind::Table(t)).unwrap();
    let schemas = WhSchemas(&wh);
    let compiler = Compiler::new(&wb, &schemas, CompileOptions::default());
    let a = compiler.compile_element("F").unwrap().sql;
    let b = compiler.compile_element("F").unwrap().sql;
    assert_eq!(a, b);
    // The generated SQL has the CTE pipeline the paper shows users.
    assert!(a.contains("WITH source AS ("), "{a}");
    assert!(a.contains("base_0"), "{a}");
    assert!(a.contains("GROUP BY"), "{a}");
}

#[test]
fn errors_are_informative() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut t = flights_table();
    t.add_column(ColumnDef::formula("Bad", "Sum([Dep Delay])", 0))
        .unwrap();
    wb.add_element(0, "F", ElementKind::Table(t)).unwrap();
    let schemas = WhSchemas(&wh);
    let compiler = Compiler::new(&wb, &schemas, CompileOptions::default());
    let err = compiler.compile_element("F").unwrap_err();
    assert!(err.to_string().contains("base level"), "{err}");

    // Referencing a finer column from a coarser level without aggregation.
    let mut wb2 = Workbook::new(Some("t2"));
    let mut t2 = flights_table();
    t2.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t2.add_column(ColumnDef::formula("Bad", "[Dep Delay] + 1", 1))
        .unwrap();
    wb2.add_element(0, "F", ElementKind::Table(t2)).unwrap();
    let compiler2 = Compiler::new(&wb2, &schemas, CompileOptions::default());
    let err2 = compiler2.compile_element("F").unwrap_err();
    assert!(err2.to_string().contains("finer level"), "{err2}");
}

#[test]
fn dialect_rendering_differs() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let t = flights_table();
    wb.add_element(0, "F", ElementKind::Table(t)).unwrap();
    let schemas = WhSchemas(&wh);
    let generic = Compiler::new(&wb, &schemas, CompileOptions::default())
        .compile_element("F")
        .unwrap()
        .sql;
    let bq_opts = CompileOptions {
        dialect: sigma_sql::Dialect::new(sigma_sql::DialectKind::BigQuery),
        ..CompileOptions::default()
    };
    let bq = Compiler::new(&wb, &schemas, bq_opts)
        .compile_element("F")
        .unwrap()
        .sql;
    assert!(generic.contains("\"Tail Number\""), "{generic}");
    assert!(bq.contains("`Tail Number`"), "{bq}");
}

#[test]
fn deep_aggregate_cohort_population() {
    // Scenario 1's core shape: group by cohort then quarter; the cohort
    // population is a CountDistinct of a *base* column at the coarser
    // level (a "deep" aggregate spanning two levels).
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut t = flights_table();
    t.add_column(ColumnDef::formula(
        "Cohort",
        "DateTrunc(\"quarter\", Rollup(Min([Flights/Flight Date]), [Tail Number], [Flights/Tail Number]))",
        0,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Quarter",
        "DateTrunc(\"quarter\", [Flight Date])",
        0,
    ))
    .unwrap();
    t.add_level(1, Level::keyed("By Quarter", vec!["Quarter".into()]))
        .unwrap();
    t.add_level(2, Level::keyed("By Cohort", vec!["Cohort".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Active Planes",
        "CountDistinct([Tail Number])",
        1,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Population",
        "CountDistinct([Tail Number])",
        2,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Pct Active",
        "[Active Planes] / [Population]",
        1,
    ))
    .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "Flights", ElementKind::Table(t)).unwrap();
    let b = run(&wb, &wh, "Flights");
    // Cohorts: N1 -> 2019-Q1, N2 -> 2019-Q2. Quarters flown:
    // N1: Q1 (2 flights), Q2 (1); N2: Q2 (2), Q3 (1).
    assert_eq!(b.num_rows(), 4);
    let pop = b.column_by_name("Population").unwrap();
    let active = b.column_by_name("Active Planes").unwrap();
    let pct = b.column_by_name("Pct Active").unwrap();
    for i in 0..b.num_rows() {
        assert_eq!(pop.value(i), Value::Int(1)); // one plane per cohort here
        assert_eq!(active.value(i), Value::Int(1));
        assert_eq!(pct.value(i), Value::Float(1.0));
    }
}

#[test]
fn deep_aggregate_at_summary() {
    let wh = warehouse();
    let mut wb = Workbook::new(Some("t"));
    let mut t = flights_table();
    t.add_level(1, Level::keyed("By Plane", vec!["Tail Number".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    let summary = t.summary_level();
    // Summary-level aggregates over base rows (not over the 2 groups).
    t.add_column(ColumnDef::formula(
        "All Flights",
        "Count([Flight Date])",
        summary,
    ))
    .unwrap();
    t.add_column(ColumnDef::formula(
        "Fleet",
        "CountDistinct([Tail Number])",
        summary,
    ))
    .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "F", ElementKind::Table(t)).unwrap();
    let b = run(&wb, &wh, "F");
    assert_eq!(
        b.column_by_name("All Flights").unwrap().value(0),
        Value::Int(6)
    );
    assert_eq!(b.column_by_name("Fleet").unwrap().value(0), Value::Int(2));
}
