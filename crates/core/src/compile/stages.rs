//! CTE pipeline construction: source → base → levels → summary → final
//! assembly, phase by phase.

use std::collections::HashMap;

use super::context::{ColumnInfo, ColumnOrigin, LookupJoin, TableCtx};
use super::formula::{filter_predicate, lower, null_safe_key, Site};
use crate::error::CoreError;
use crate::table::{DataSource, SourceLink};
use sigma_expr::{analyze, Formula, FunctionKind};
use sigma_sql::{
    Join, JoinKind, ObjectName, OrderExpr, Query, Select, SelectItem, SetExpr, SqlExpr, TableRef,
    WindowSpec,
};

/// Build the complete query for a table context.
pub(crate) fn build_query(ctx: &TableCtx<'_>) -> Result<Query, CoreError> {
    let mut b = Builder {
        ctx,
        ctes: Vec::new(),
        current: vec![None; ctx.summary_stage() + 1],
        materialized: vec![Vec::new(); ctx.summary_stage() + 1],
        embed_counter: 0,
    };
    b.build_source()?;
    for phase in 0..=ctx.max_phase {
        for stage in 0..=ctx.summary_stage() {
            b.build_stage(stage, phase)?;
        }
    }
    b.build_final()
}

struct Builder<'a, 'b> {
    ctx: &'a TableCtx<'b>,
    ctes: Vec<(String, Query)>,
    /// Latest CTE name per stage (filters included).
    current: Vec<Option<String>>,
    /// Column names materialized per stage so far.
    materialized: Vec<Vec<String>>,
    embed_counter: usize,
}

const SOURCE_CTE: &str = "source";
const INPUT_CTE: &str = "input_rows";

impl<'a, 'b> Builder<'a, 'b> {
    fn push_cte(&mut self, name: String, query: Query) {
        self.ctes.push((name, query));
    }

    fn stage_cols(&self, stage: usize, phase: usize) -> Vec<ColumnInfo> {
        self.ctx
            .columns
            .iter()
            .filter(|c| c.level == stage && c.phase == phase)
            .cloned()
            .collect()
    }

    fn stage_cte_name(&self, stage: usize, phase: usize) -> String {
        let l = self.ctx.summary_stage();
        if stage == 0 {
            format!("base_{phase}")
        } else if stage == l {
            format!("summary_{phase}")
        } else {
            format!("lvl{stage}_{phase}")
        }
    }

    // ------------------------------------------------------------------
    // source
    // ------------------------------------------------------------------

    /// Relation for one data source (may append embedded CTEs).
    fn source_relation(&mut self, ds: &DataSource, alias: &str) -> Result<TableRef, CoreError> {
        match ds {
            DataSource::WarehouseTable { table } | DataSource::Csv { table } => {
                Ok(TableRef::Table {
                    name: ObjectName::bare(table.clone()),
                    alias: Some(alias.to_string()),
                })
            }
            DataSource::RawSql { sql } => {
                let query = sigma_sql::parse_query(sql)
                    .map_err(|e| CoreError::Compile(format!("raw SQL source: {e}")))?;
                Ok(TableRef::Subquery {
                    query: Box::new(query),
                    alias: alias.to_string(),
                })
            }
            DataSource::Element { name } => {
                if let Some(table) = self
                    .ctx
                    .compiler
                    .options
                    .materializations
                    .get(&name.to_ascii_lowercase())
                {
                    // Materialized view substitution (§2, §4).
                    return Ok(TableRef::Table {
                        name: ObjectName::bare(table.clone()),
                        alias: Some(alias.to_string()),
                    });
                }
                let compiled = self.ctx.compiler.compile_element_unchecked(name)?;
                let cte = self.embed(compiled.query)?;
                Ok(TableRef::Table {
                    name: ObjectName::bare(cte),
                    alias: Some(alias.to_string()),
                })
            }
        }
    }

    /// Embed another element's compiled query: its CTEs are merged (renamed
    /// with a unique prefix) and its body becomes a new CTE whose name is
    /// returned.
    fn embed(&mut self, mut query: Query) -> Result<String, CoreError> {
        let prefix = format!("e{}_", self.embed_counter);
        self.embed_counter += 1;
        let mut renames: HashMap<String, String> = HashMap::new();
        for (name, _) in &query.ctes {
            renames.insert(name.to_ascii_lowercase(), format!("{prefix}{name}"));
        }
        rename_tables_in_query(&mut query, &renames);
        let ctes = std::mem::take(&mut query.ctes);
        for (name, cte) in ctes {
            let new_name = renames
                .get(&name.to_ascii_lowercase())
                .cloned()
                .unwrap_or(name);
            self.push_cte(new_name, cte);
        }
        let out = format!("{prefix}out");
        self.push_cte(out.clone(), query);
        Ok(out)
    }

    fn build_source(&mut self) -> Result<(), CoreError> {
        let spec = self.ctx.spec;
        // The raw combined input (primary + links).
        let primary = self.source_relation(&spec.source, "s")?;
        let mut select = Select::new();
        let mut union_sources = Vec::new();
        for (i, link) in spec.links.iter().enumerate() {
            match link {
                SourceLink::Join {
                    source,
                    on,
                    left_outer,
                    prefix: _,
                } => {
                    let alias = format!("j{i}");
                    let rel = self.source_relation(source, &alias)?;
                    let on_expr = SqlExpr::conjunction(on.iter().map(|(l, r)| {
                        SqlExpr::eq(
                            SqlExpr::qcol("s", l.clone()),
                            SqlExpr::qcol(&alias, r.clone()),
                        )
                    }))
                    .ok_or_else(|| {
                        CoreError::Document("join links need at least one key pair".into())
                    })?;
                    select.joins.push(Join {
                        kind: if *left_outer {
                            JoinKind::Left
                        } else {
                            JoinKind::Inner
                        },
                        relation: rel,
                        on: Some(on_expr),
                    });
                }
                SourceLink::Union { source } => union_sources.push(source),
            }
        }
        select.from = Some(primary);
        // Select every source field under its combined name. Joined fields
        // arrive prefixed; their origin alias/name must be reconstructed.
        let primary_fields =
            super::context::source_schema(self.ctx.compiler, &spec.source, &self.ctx.element_name)?;
        for f in &primary_fields {
            select.projection.push(SelectItem::aliased(
                SqlExpr::qcol("s", f.name.clone()),
                f.name.clone(),
            ));
        }
        for (i, link) in spec.links.iter().enumerate() {
            if let SourceLink::Join { source, prefix, .. } = link {
                let alias = format!("j{i}");
                let fields = super::context::source_schema(
                    self.ctx.compiler,
                    source,
                    &self.ctx.element_name,
                )?;
                for f in fields {
                    select.projection.push(SelectItem::aliased(
                        SqlExpr::qcol(&alias, f.name.clone()),
                        format!("{prefix}{}", f.name),
                    ));
                }
            }
        }

        let mut body = SetExpr::Select(Box::new(select));
        for (u, source) in union_sources.into_iter().enumerate() {
            let alias = format!("u{u}");
            let rel = self.source_relation(source, &alias)?;
            let fields =
                super::context::source_schema(self.ctx.compiler, source, &self.ctx.element_name)?;
            let mut s = Select::new();
            s.from = Some(rel);
            for f in &self.ctx.source_fields {
                let matching = fields.iter().find(|x| x.name.eq_ignore_ascii_case(&f.name));
                let expr = match matching {
                    Some(m) => {
                        let raw = SqlExpr::qcol(&alias, m.name.clone());
                        if m.dtype == f.dtype {
                            raw
                        } else {
                            SqlExpr::Cast {
                                expr: Box::new(raw),
                                dtype: f.dtype,
                            }
                        }
                    }
                    None => SqlExpr::Cast {
                        expr: Box::new(SqlExpr::null()),
                        dtype: f.dtype,
                    },
                };
                s.projection.push(SelectItem::aliased(expr, f.name.clone()));
            }
            body = SetExpr::UnionAll(Box::new(body), Box::new(SetExpr::Select(Box::new(s))));
        }
        let input_query = Query {
            ctes: Vec::new(),
            body,
            order_by: vec![],
            limit: None,
            offset: None,
        };

        if self.ctx.lookups.is_empty() {
            self.push_cte(SOURCE_CTE.to_string(), input_query);
            return Ok(());
        }

        // Lookups present: materialize the raw input first, then join the
        // grouped targets.
        self.push_cte(INPUT_CTE.to_string(), input_query);
        let mut select = Select::new();
        select.from = Some(TableRef::Table {
            name: ObjectName::bare(INPUT_CTE),
            alias: Some("i".into()),
        });
        for f in &self.ctx.source_fields {
            select.projection.push(SelectItem::aliased(
                SqlExpr::qcol("i", f.name.clone()),
                f.name.clone(),
            ));
        }
        let lookups = self.ctx.lookups.clone();
        for lr in &lookups {
            let sub = self.lookup_subquery(lr)?;
            let mut on = Vec::new();
            for (j, local) in lr.local_keys.iter().enumerate() {
                let site = SourceKeySite {
                    ctx: self.ctx,
                    alias: "i",
                };
                let local_expr = lower(local, &site)?;
                on.push(SqlExpr::eq(
                    local_expr,
                    SqlExpr::qcol(&lr.alias, format!("k{j}")),
                ));
            }
            select.joins.push(Join {
                kind: JoinKind::Left,
                relation: TableRef::Subquery {
                    query: Box::new(sub),
                    alias: lr.alias.clone(),
                },
                on: SqlExpr::conjunction(on),
            });
            select.projection.push(SelectItem::aliased(
                SqlExpr::qcol(&lr.alias, "v"),
                lr.pseudo.clone(),
            ));
        }
        self.push_cte(SOURCE_CTE.to_string(), Query::from_select(select));
        Ok(())
    }

    /// The grouped target subquery for one Lookup/Rollup: grouping by the
    /// join key guarantees the join never changes cardinality (§3.2).
    fn lookup_subquery(&mut self, lr: &LookupJoin) -> Result<Query, CoreError> {
        let from = if lr.is_self {
            // Self-joins read this element's own raw input.
            TableRef::Table {
                name: ObjectName::bare(INPUT_CTE),
                alias: Some("t".into()),
            }
        } else {
            let ds = DataSource::Element {
                name: lr.target.clone(),
            };
            self.source_relation(&ds, "t")?
        };
        // Lookup is Rollup with the virtual ATTR aggregate; by this point
        // both shapes carry an aggregate value expression.
        debug_assert!(
            lr.is_rollup || matches!(&lr.value, Formula::Call { func, .. } if func == "ATTR")
        );
        let site = TargetSite {
            ctx: self.ctx,
            lr,
            alias: "t",
        };
        let mut select = Select::new();
        select.from = Some(from);
        let mut group_by = Vec::new();
        for (j, tk) in lr.target_keys.iter().enumerate() {
            let e = lower(tk, &site)?;
            select
                .projection
                .push(SelectItem::aliased(e.clone(), format!("k{j}")));
            group_by.push(e);
        }
        let value = lower(&lr.value, &site)?;
        select.projection.push(SelectItem::aliased(value, "v"));
        select.group_by = group_by;
        Ok(Query::from_select(select))
    }

    // ------------------------------------------------------------------
    // stage CTEs
    // ------------------------------------------------------------------

    fn build_stage(&mut self, stage: usize, phase: usize) -> Result<(), CoreError> {
        let cols = self.stage_cols(stage, phase);
        let l = self.ctx.summary_stage();
        let structural = phase == 0 && stage < l; // base & keyed levels always exist
        if cols.is_empty() && !structural {
            return Ok(());
        }
        // Levels aggregate their finer neighbour; that CTE must exist.
        if stage > 0 && self.current[stage - 1].is_none() {
            return Err(CoreError::Compile(format!(
                "internal: stage {stage} built before its finer stage"
            )));
        }

        let select = if stage == 0 {
            self.build_base_select(phase, &cols)?
        } else {
            self.build_level_select(stage, phase, &cols)?
        };

        let name = self.stage_cte_name(stage, phase);
        self.push_cte(name.clone(), Query::from_select(select));
        self.current[stage] = Some(name);
        if phase == 0 && stage > 0 && stage < l {
            // Keys materialize on first build.
            for k in self.ctx.spec.effective_keys(stage) {
                self.materialized[stage].push(k);
            }
        }
        for c in &cols {
            self.materialized[stage].push(c.name.clone());
        }

        // Greedy filters: applied as soon as the filtered column exists.
        self.apply_filters(stage, phase)?;
        Ok(())
    }

    /// Coarser stages referenced by these columns' formulas.
    fn coarser_refs(&self, stage: usize, cols: &[ColumnInfo]) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for c in cols {
            let ColumnOrigin::Formula(f) = &c.origin else {
                continue;
            };
            for r in analyze::column_refs(f) {
                if r.element.is_some() {
                    continue;
                }
                if let Some(dep) = self.ctx.column(&r.name) {
                    if dep.level > stage && !out.contains(&dep.level) {
                        out.push(dep.level);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn coarser_joins(
        &self,
        select: &mut Select,
        from_alias: &str,
        coarser: &[usize],
    ) -> Result<(), CoreError> {
        let l = self.ctx.summary_stage();
        for &m in coarser {
            let cte = self.current[m].clone().ok_or_else(|| {
                CoreError::Compile(format!("internal: coarser stage {m} not built"))
            })?;
            let alias = format!("c{m}");
            if m == l {
                // Summary: single row, cross join.
                select.joins.push(Join {
                    kind: JoinKind::Cross,
                    relation: TableRef::Table {
                        name: ObjectName::bare(cte),
                        alias: Some(alias),
                    },
                    on: None,
                });
            } else {
                let keys = self.ctx.spec.effective_keys(m);
                let on = SqlExpr::conjunction(keys.iter().map(|k| {
                    SqlExpr::eq(
                        null_safe_key(SqlExpr::qcol(from_alias, k.clone())),
                        null_safe_key(SqlExpr::qcol(&alias, k.clone())),
                    )
                }));
                select.joins.push(Join {
                    kind: JoinKind::Inner,
                    relation: TableRef::Table {
                        name: ObjectName::bare(cte),
                        alias: Some(alias),
                    },
                    on,
                });
            }
        }
        Ok(())
    }

    fn build_base_select(
        &mut self,
        phase: usize,
        cols: &[ColumnInfo],
    ) -> Result<Select, CoreError> {
        let mut select = Select::new();
        if phase == 0 {
            select.from = Some(TableRef::Table {
                name: ObjectName::bare(SOURCE_CTE),
                alias: None,
            });
            let site = BaseSite {
                ctx: self.ctx,
                phase: 0,
                pass_alias: None,
            };
            for c in cols {
                let e = self.lower_column(c, &site)?;
                select
                    .projection
                    .push(SelectItem::aliased(e, c.name.clone()));
            }
        } else {
            let prior = self.current[0].clone().expect("base_0 exists");
            select.from = Some(TableRef::Table {
                name: ObjectName::bare(prior),
                alias: Some("b".into()),
            });
            let coarser = self.coarser_refs(0, cols);
            self.coarser_joins(&mut select, "b", &coarser)?;
            for name in &self.materialized[0] {
                select.projection.push(SelectItem::aliased(
                    SqlExpr::qcol("b", name.clone()),
                    name.clone(),
                ));
            }
            let site = BaseSite {
                ctx: self.ctx,
                phase,
                pass_alias: Some("b"),
            };
            for c in cols {
                let e = self.lower_column(c, &site)?;
                select
                    .projection
                    .push(SelectItem::aliased(e, c.name.clone()));
            }
        }
        Ok(select)
    }

    fn lower_column(&self, c: &ColumnInfo, site: &dyn Site) -> Result<SqlExpr, CoreError> {
        match &c.origin {
            ColumnOrigin::SourceCol(raw) => Ok(SqlExpr::col(raw.clone())),
            ColumnOrigin::Formula(f) => lower(f, site),
        }
    }

    fn build_level_select(
        &mut self,
        stage: usize,
        phase: usize,
        cols: &[ColumnInfo],
    ) -> Result<Select, CoreError> {
        let l = self.ctx.summary_stage();
        let keys = if stage == l {
            Vec::new()
        } else {
            self.ctx.spec.effective_keys(stage)
        };
        let finer = self.current[stage - 1].clone().expect("finer stage exists");

        if phase == 0 {
            // Classify aggregate calls by input stage: aggregates over the
            // immediately finer level compute inline in this grouped
            // select; "deep" aggregates over finer stages (e.g. a
            // CountDistinct of a base column at a coarse level — Scenario
            // 1's cohort population) compute in per-stage subqueries
            // grouped by this level's keys and join back.
            let mut slots: HashMap<String, (usize, String)> = HashMap::new();
            let mut deep_exprs: HashMap<usize, Vec<(String, SqlExpr)>> = HashMap::new();
            for c in cols {
                let ColumnOrigin::Formula(f) = &c.origin else {
                    continue;
                };
                collect_agg_subtrees(f, &mut |agg: &Formula| {
                    let canonical = agg.to_string();
                    if slots.contains_key(&canonical) {
                        return Ok(());
                    }
                    let m = agg_input_stage(self.ctx, agg, stage)?;
                    if m == stage - 1 {
                        return Ok(()); // inline in the grouped select
                    }
                    let slot = format!("$d{}", slots.len());
                    let arg_site = ArgSite {
                        builder: self,
                        finer_stage: m,
                        alias: "d",
                    };
                    let lowered = lower_agg_call(agg, &arg_site)?;
                    slots.insert(canonical, (m, slot.clone()));
                    deep_exprs.entry(m).or_default().push((slot, lowered));
                    Ok(())
                })?;
            }

            // Single grouped select FROM the finer stage.
            let mut select = Select::new();
            select.from = Some(TableRef::Table {
                name: ObjectName::bare(finer),
                alias: Some("f".into()),
            });
            for k in &keys {
                select.projection.push(SelectItem::aliased(
                    SqlExpr::qcol("f", k.clone()),
                    k.clone(),
                ));
                select.group_by.push(SqlExpr::qcol("f", k.clone()));
            }
            let mut stages_sorted: Vec<usize> = deep_exprs.keys().copied().collect();
            stages_sorted.sort_unstable();
            for m in stages_sorted {
                let exprs = deep_exprs.remove(&m).expect("key present");
                let sub = self.deep_subquery(m, &keys, exprs)?;
                let alias = format!("bf{m}");
                let on = SqlExpr::conjunction(keys.iter().map(|k| {
                    SqlExpr::eq(
                        null_safe_key(SqlExpr::qcol("f", k.clone())),
                        null_safe_key(SqlExpr::qcol(&alias, k.clone())),
                    )
                }));
                select.joins.push(Join {
                    kind: if keys.is_empty() {
                        JoinKind::Cross
                    } else {
                        JoinKind::Inner
                    },
                    relation: TableRef::Subquery {
                        query: Box::new(sub),
                        alias,
                    },
                    on,
                });
            }
            let site = LevelSite {
                builder: self,
                stage,
                phase: 0,
                input_alias: "f",
                prior_alias: None,
                fresh_slots: &slots,
            };
            let mut items = Vec::new();
            for c in cols {
                items.push((c.name.clone(), self.lower_column(c, &site)?));
            }
            for (name, e) in items {
                select.projection.push(SelectItem::aliased(e, name));
            }
            if keys.is_empty() && cols.is_empty() {
                // Structural summary with no columns is skipped by caller;
                // guard anyway.
                select.projection.push(SelectItem::bare(SqlExpr::lit(1i64)));
            }
            return Ok(select);
        }

        // Phase > 0: fresh aggregates computed in per-input-stage
        // subqueries joined to the prior CTE of this stage, plus coarser
        // joins for downward refs.
        let mut fresh_slots: HashMap<String, (usize, String)> = HashMap::new();
        let mut fresh_exprs: HashMap<usize, Vec<(String, SqlExpr)>> = HashMap::new();
        for c in cols {
            let ColumnOrigin::Formula(f) = &c.origin else {
                continue;
            };
            collect_agg_subtrees(f, &mut |agg: &Formula| {
                let canonical = agg.to_string();
                if fresh_slots.contains_key(&canonical) {
                    return Ok(());
                }
                let m = agg_input_stage(self.ctx, agg, stage)?;
                let slot = format!("$f{}", fresh_slots.len());
                let arg_site = ArgSite {
                    builder: self,
                    finer_stage: m,
                    alias: "d",
                };
                let lowered = lower_agg_call(agg, &arg_site)?;
                fresh_slots.insert(canonical, (m, slot.clone()));
                fresh_exprs.entry(m).or_default().push((slot, lowered));
                Ok(())
            })?;
        }

        let prior = self.current[stage].clone();
        let mut select = Select::new();
        let have_fresh = !fresh_exprs.is_empty();
        let mut fresh_stages: Vec<usize> = fresh_exprs.keys().copied().collect();
        fresh_stages.sort_unstable();
        let mut fresh_subqueries: Vec<(usize, Query)> = Vec::new();
        for m in fresh_stages {
            let exprs = fresh_exprs.remove(&m).expect("key present");
            let sub = self.deep_subquery(m, &keys, exprs)?;
            fresh_subqueries.push((m, sub));
        }

        let (main_alias, pass_names): (String, Vec<String>) = match &prior {
            Some(prior_cte) => {
                select.from = Some(TableRef::Table {
                    name: ObjectName::bare(prior_cte.clone()),
                    alias: Some("prior".into()),
                });
                for (m, sub) in &fresh_subqueries {
                    let alias = format!("fresh{m}");
                    let on = SqlExpr::conjunction(keys.iter().map(|k| {
                        SqlExpr::eq(
                            null_safe_key(SqlExpr::qcol("prior", k.clone())),
                            null_safe_key(SqlExpr::qcol(&alias, k.clone())),
                        )
                    }));
                    select.joins.push(Join {
                        kind: if keys.is_empty() {
                            JoinKind::Cross
                        } else {
                            JoinKind::Inner
                        },
                        relation: TableRef::Subquery {
                            query: Box::new(sub.clone()),
                            alias,
                        },
                        on,
                    });
                }
                ("prior".to_string(), self.materialized[stage].clone())
            }
            None => {
                // First columns for this stage appear at phase > 0 (only
                // possible for the summary).
                if !have_fresh {
                    return Err(CoreError::Compile(
                        "internal: phase>0 stage with neither prior nor aggregates".into(),
                    ));
                }
                let (m0, sub0) = fresh_subqueries[0].clone();
                let first_alias = format!("fresh{m0}");
                select.from = Some(TableRef::Subquery {
                    query: Box::new(sub0),
                    alias: first_alias.clone(),
                });
                for (m, sub) in fresh_subqueries.iter().skip(1) {
                    let alias = format!("fresh{m}");
                    let on = SqlExpr::conjunction(keys.iter().map(|k| {
                        SqlExpr::eq(
                            null_safe_key(SqlExpr::qcol(&first_alias, k.clone())),
                            null_safe_key(SqlExpr::qcol(&alias, k.clone())),
                        )
                    }));
                    select.joins.push(Join {
                        kind: if keys.is_empty() {
                            JoinKind::Cross
                        } else {
                            JoinKind::Inner
                        },
                        relation: TableRef::Subquery {
                            query: Box::new(sub.clone()),
                            alias,
                        },
                        on,
                    });
                }
                (first_alias, keys.clone())
            }
        };
        let coarser = self.coarser_refs(stage, cols);
        self.coarser_joins(&mut select, &main_alias, &coarser)?;
        for name in &pass_names {
            select.projection.push(SelectItem::aliased(
                SqlExpr::qcol(&main_alias, name.clone()),
                name.clone(),
            ));
        }
        let _ = have_fresh;
        let site = LevelSite {
            builder: self,
            stage,
            phase,
            input_alias: "fresh",
            prior_alias: Some(&main_alias),
            fresh_slots: &fresh_slots,
        };
        let mut items = Vec::new();
        for c in cols {
            items.push((c.name.clone(), self.lower_column(c, &site)?));
        }
        for (name, e) in items {
            select.projection.push(SelectItem::aliased(e, name));
        }
        Ok(select)
    }

    /// A grouped subquery computing aggregate slots over stage `m`'s rows,
    /// keyed by this level's effective keys (the "deep aggregate" path).
    fn deep_subquery(
        &self,
        m: usize,
        keys: &[String],
        exprs: Vec<(String, SqlExpr)>,
    ) -> Result<Query, CoreError> {
        let input = self.current[m]
            .clone()
            .ok_or_else(|| CoreError::Compile(format!("internal: stage {m} not built")))?;
        let mut sub = Select::new();
        sub.from = Some(TableRef::Table {
            name: ObjectName::bare(input),
            alias: Some("d".into()),
        });
        for k in keys {
            sub.projection.push(SelectItem::aliased(
                SqlExpr::qcol("d", k.clone()),
                k.clone(),
            ));
            sub.group_by.push(SqlExpr::qcol("d", k.clone()));
        }
        for (slot, e) in exprs {
            sub.projection.push(SelectItem::aliased(e, slot));
        }
        Ok(Query::from_select(sub))
    }

    /// Wrap the stage's current CTE with the filters that just became
    /// computable (greedy placement, §3.1).
    fn apply_filters(&mut self, stage: usize, phase: usize) -> Result<(), CoreError> {
        let mut preds: Vec<SqlExpr> = Vec::new();
        for f in &self.ctx.spec.filters {
            let Some(col) = self.ctx.column(&f.column) else {
                continue;
            };
            if col.level != stage || col.phase != phase {
                continue;
            }
            preds.push(filter_predicate(
                &f.predicate,
                SqlExpr::col(col.name.clone()),
            )?);
        }
        let Some(pred) = SqlExpr::conjunction(preds) else {
            return Ok(());
        };
        let inner = self.current[stage].clone().expect("stage just built");
        let mut select = Select::new();
        select.projection.push(SelectItem::Wildcard);
        select.from = Some(TableRef::Table {
            name: ObjectName::bare(inner.clone()),
            alias: None,
        });
        select.selection = Some(pred);
        let name = format!("{inner}_f");
        self.push_cte(name.clone(), Query::from_select(select));
        self.current[stage] = Some(name);
        Ok(())
    }

    // ------------------------------------------------------------------
    // final assembly
    // ------------------------------------------------------------------

    fn build_final(mut self) -> Result<Query, CoreError> {
        let ctx = self.ctx;
        let l = ctx.summary_stage();
        let d = ctx.spec.detail_level;
        let detail_cte = self.current[d]
            .clone()
            .ok_or_else(|| CoreError::Compile("nothing to select at the detail level".into()))?;

        let mut select = Select::new();
        select.from = Some(TableRef::Table {
            name: ObjectName::bare(detail_cte),
            alias: Some("t".into()),
        });

        // Which coarser stages must be joined: those with visible columns
        // or with filters (group-elimination must reach the detail rows).
        let mut joined: Vec<usize> = Vec::new();
        for m in (d + 1)..=l {
            let has_visible = ctx.columns.iter().any(|c| c.level == m && c.visible);
            let has_filter = ctx
                .spec
                .filters
                .iter()
                .any(|f| ctx.column(&f.column).is_some_and(|c| c.level == m));
            let exists = self.current[m].is_some();
            if exists && (has_visible || has_filter) {
                joined.push(m);
            }
        }
        for &m in &joined {
            let cte = self.current[m].clone().expect("joined stage exists");
            let alias = format!("lv{m}");
            if m == l {
                select.joins.push(Join {
                    kind: JoinKind::Cross,
                    relation: TableRef::Table {
                        name: ObjectName::bare(cte),
                        alias: Some(alias),
                    },
                    on: None,
                });
            } else {
                let keys = ctx.spec.effective_keys(m);
                let on = SqlExpr::conjunction(keys.iter().map(|k| {
                    SqlExpr::eq(
                        null_safe_key(SqlExpr::qcol("t", k.clone())),
                        null_safe_key(SqlExpr::qcol(&alias, k.clone())),
                    )
                }));
                select.joins.push(Join {
                    kind: JoinKind::Inner,
                    relation: TableRef::Table {
                        name: ObjectName::bare(cte),
                        alias: Some(alias),
                    },
                    on,
                });
            }
        }

        // Keyed detail levels surface their grouping keys first.
        let mut projected: Vec<String> = Vec::new();
        if d >= 1 && d < l {
            for k in ctx.spec.effective_keys(d) {
                select.projection.push(SelectItem::aliased(
                    SqlExpr::qcol("t", k.clone()),
                    k.clone(),
                ));
                projected.push(k);
            }
        }
        // Visible columns at the detail level and coarser, in spec order.
        for c in &ctx.columns {
            if !c.visible
                || c.level < d
                || projected.iter().any(|p| p.eq_ignore_ascii_case(&c.name))
            {
                continue;
            }
            let expr = if c.level == d {
                SqlExpr::qcol("t", c.name.clone())
            } else if joined.contains(&c.level) {
                SqlExpr::qcol(format!("lv{}", c.level), c.name.clone())
            } else {
                continue;
            };
            select
                .projection
                .push(SelectItem::aliased(expr, c.name.clone()));
        }
        if select.projection.is_empty() {
            return Err(CoreError::Compile(
                "the table has no visible columns at its detail level".into(),
            ));
        }

        // Hierarchical ordering: coarsest keys first, then the detail
        // level's ordering annotation.
        let mut order_by = Vec::new();
        // Keyed levels run 1..l-1 in `spec.levels[1..]`; coarsest first.
        for m in (d.max(1)..l).rev() {
            for k in &ctx.spec.levels[m].keys {
                order_by.push(OrderExpr::asc(SqlExpr::qcol("t", k.clone())));
            }
        }
        if d < ctx.spec.levels.len() {
            for o in &ctx.spec.levels[d].ordering {
                order_by.push(OrderExpr {
                    expr: SqlExpr::qcol("t", o.column.clone()),
                    descending: o.descending,
                    nulls_last: None,
                });
            }
        }

        Ok(Query {
            ctes: std::mem::take(&mut self.ctes),
            body: SetExpr::Select(Box::new(select)),
            order_by,
            limit: ctx.spec.limit,
            offset: None,
        })
    }
}

// ---------------------------------------------------------------------
// sites
// ---------------------------------------------------------------------

/// Base-stage site (phase 0: inline over `source`; later phases pass
/// through the prior base CTE and joined coarser levels).
struct BaseSite<'x, 'y> {
    ctx: &'x TableCtx<'y>,
    phase: usize,
    pass_alias: Option<&'x str>,
}

impl Site for BaseSite<'_, '_> {
    fn ctx(&self) -> &TableCtx<'_> {
        self.ctx
    }

    fn column_ref(&self, col: &ColumnInfo) -> Result<SqlExpr, CoreError> {
        if col.level == 0 {
            if col.phase == self.phase {
                return match &col.origin {
                    // Source columns are phase 0 and come straight from
                    // the source CTE.
                    ColumnOrigin::SourceCol(raw) => Ok(SqlExpr::col(raw.clone())),
                    ColumnOrigin::Formula(f) => lower(f, self),
                };
            }
            if col.phase < self.phase {
                let alias = self.pass_alias.expect("later phases pass through");
                return Ok(SqlExpr::qcol(alias, col.name.clone()));
            }
            return Err(CoreError::Compile(format!(
                "internal: column {} (phase {}) referenced at base phase {}",
                col.name, col.phase, self.phase
            )));
        }
        // Coarser reference: joined as c{level} (phase assignment
        // guarantees the coarser CTE already exists).
        if self.phase == 0 {
            return Err(CoreError::Compile(format!(
                "internal: cross-level reference to {} at phase 0",
                col.name
            )));
        }
        Ok(SqlExpr::qcol(format!("c{}", col.level), col.name.clone()))
    }

    fn allow_window(&self) -> bool {
        true
    }

    fn window_spec(&self) -> Result<WindowSpec, CoreError> {
        // Base windows partition by the effective key of the nearest
        // coarser keyed level and order by the base ordering annotation.
        let keys = self.ctx.spec.effective_keys(1);
        let mut partition_by = Vec::new();
        for k in keys {
            let col = self
                .ctx
                .column(&k)
                .ok_or_else(|| CoreError::Unresolved(format!("key column {k}")))?
                .clone();
            partition_by.push(self.column_ref(&col)?);
        }
        let mut order_by = Vec::new();
        for o in &self.ctx.spec.levels[0].ordering {
            let col = self
                .ctx
                .column(&o.column)
                .ok_or_else(|| CoreError::Unresolved(format!("ordering column {}", o.column)))?
                .clone();
            order_by.push(OrderExpr {
                expr: self.column_ref(&col)?,
                descending: o.descending,
                nulls_last: None,
            });
        }
        Ok(WindowSpec {
            partition_by,
            order_by,
            frame: None,
        })
    }
}

/// Keyed-level / summary site.
struct LevelSite<'x, 'y, 'z> {
    builder: &'x Builder<'x, 'y>,
    stage: usize,
    phase: usize,
    /// Alias of the finer input (phase 0) or the fresh subquery.
    input_alias: &'z str,
    /// Alias of this stage's prior-phase CTE (phase > 0).
    prior_alias: Option<&'z str>,
    /// Canonical aggregate text -> (input stage, slot name) for aggregates
    /// computed out-of-line (deep aggregates at phase 0; all aggregates at
    /// phase > 0).
    fresh_slots: &'z HashMap<String, (usize, String)>,
}

impl LevelSite<'_, '_, '_> {
    fn keys(&self) -> Vec<String> {
        if self.stage == self.builder.ctx.summary_stage() {
            Vec::new()
        } else {
            self.builder.ctx.spec.effective_keys(self.stage)
        }
    }

    fn key_ref(&self, name: &str) -> SqlExpr {
        match self.prior_alias {
            Some(alias) => SqlExpr::qcol(alias, name.to_string()),
            None => SqlExpr::qcol(self.input_alias, name.to_string()),
        }
    }
}

impl Site for LevelSite<'_, '_, '_> {
    fn ctx(&self) -> &TableCtx<'_> {
        self.builder.ctx
    }

    fn column_ref(&self, col: &ColumnInfo) -> Result<SqlExpr, CoreError> {
        if col.level == self.stage {
            if col.phase == self.phase {
                let ColumnOrigin::Formula(f) = &col.origin else {
                    return Err(CoreError::Compile(format!(
                        "internal: source column {} above the base level",
                        col.name
                    )));
                };
                return lower(f, self);
            }
            if col.phase < self.phase {
                let alias = self.prior_alias.expect("later phases have a prior");
                return Ok(SqlExpr::qcol(alias, col.name.clone()));
            }
            return Err(CoreError::Compile(format!(
                "internal: column {} not yet materialized",
                col.name
            )));
        }
        if col.level < self.stage {
            let keys = self.keys();
            if keys.iter().any(|k| k.eq_ignore_ascii_case(&col.name)) {
                return Ok(self.key_ref(&col.name));
            }
            return Err(CoreError::Type(format!(
                "[{}] is at a finer level; aggregate it (e.g. Sum([{}]))",
                col.name, col.name
            )));
        }
        // Coarser.
        if self.phase == 0 {
            return Err(CoreError::Compile(format!(
                "internal: cross-level reference to {} at phase 0",
                col.name
            )));
        }
        Ok(SqlExpr::qcol(format!("c{}", col.level), col.name.clone()))
    }

    fn allow_aggregate(&self) -> bool {
        true
    }

    fn aggregate_slot(&self, call: &Formula) -> Option<SqlExpr> {
        let (m, slot) = self.fresh_slots.get(&call.to_string())?;
        if self.phase == 0 {
            // Deep aggregate joined as bf{m}: constant per group, so it
            // rides through the GROUP BY under the virtual aggregate ATTR.
            Some(SqlExpr::func(
                "ATTR",
                vec![SqlExpr::qcol(format!("bf{m}"), slot.clone())],
            ))
        } else {
            Some(SqlExpr::qcol(format!("fresh{m}"), slot.clone()))
        }
    }

    fn agg_arg(&self, arg: &Formula) -> Result<SqlExpr, CoreError> {
        if self.phase == 0 {
            let site = ArgSite {
                builder: self.builder,
                finer_stage: self.stage - 1,
                alias: self.input_alias,
            };
            lower(arg, &site)
        } else {
            Err(CoreError::Compile(
                "internal: phase>0 aggregates lower via fresh slots".into(),
            ))
        }
    }

    fn allow_window(&self) -> bool {
        true
    }

    fn window_spec(&self) -> Result<WindowSpec, CoreError> {
        let ctx = self.builder.ctx;
        let coarser_keys = if self.stage >= ctx.summary_stage() {
            Vec::new()
        } else {
            ctx.spec.effective_keys(self.stage + 1)
        };
        let partition_by = coarser_keys.iter().map(|k| self.key_ref(k)).collect();
        let mut order_by = Vec::new();
        if self.stage < ctx.spec.levels.len() {
            for o in &ctx.spec.levels[self.stage].ordering {
                let col = ctx
                    .column(&o.column)
                    .ok_or_else(|| CoreError::Unresolved(format!("ordering column {}", o.column)))?
                    .clone();
                order_by.push(OrderExpr {
                    expr: self.column_ref(&col)?,
                    descending: o.descending,
                    nulls_last: None,
                });
            }
        }
        Ok(WindowSpec {
            partition_by,
            order_by,
            frame: None,
        })
    }
}

/// Aggregate-argument site: expressions evaluated per finer-stage row.
struct ArgSite<'x, 'y, 'z> {
    builder: &'x Builder<'x, 'y>,
    finer_stage: usize,
    alias: &'z str,
}

impl Site for ArgSite<'_, '_, '_> {
    fn ctx(&self) -> &TableCtx<'_> {
        self.builder.ctx
    }

    fn column_ref(&self, col: &ColumnInfo) -> Result<SqlExpr, CoreError> {
        let available = self.builder.materialized[self.finer_stage]
            .iter()
            .any(|n| n.eq_ignore_ascii_case(&col.name));
        if available {
            return Ok(SqlExpr::qcol(self.alias, col.name.clone()));
        }
        if col.level < self.finer_stage {
            return Err(CoreError::Type(format!(
                "[{}] is too fine to aggregate here; aggregate it at an intermediate level first",
                col.name
            )));
        }
        Err(CoreError::Type(format!(
            "[{}] is not available to this aggregate (it lives at a coarser level or later phase)",
            col.name
        )))
    }
}

/// Lookup local-key site: expressions over the raw input rows.
struct SourceKeySite<'x, 'y> {
    ctx: &'x TableCtx<'y>,
    alias: &'x str,
}

impl Site for SourceKeySite<'_, '_> {
    fn ctx(&self) -> &TableCtx<'_> {
        self.ctx
    }

    fn column_ref(&self, col: &ColumnInfo) -> Result<SqlExpr, CoreError> {
        if col.level != 0 {
            return Err(CoreError::Compile(format!(
                "Lookup/Rollup keys must use base-level columns; [{}] is coarser",
                col.name
            )));
        }
        match &col.origin {
            ColumnOrigin::SourceCol(raw) => {
                if raw.starts_with("$lr") {
                    return Err(CoreError::Compile(
                        "Lookup/Rollup keys cannot use other lookups".into(),
                    ));
                }
                Ok(SqlExpr::qcol(self.alias, raw.clone()))
            }
            ColumnOrigin::Formula(f) => lower(f, self),
        }
    }
}

/// Lookup target-side site: `[Target/Column]` refs over the target rows.
struct TargetSite<'x, 'y> {
    ctx: &'x TableCtx<'y>,
    lr: &'x LookupJoin,
    alias: &'x str,
}

impl TargetSite<'_, '_> {
    fn resolve_target_col(&self, name: &str) -> Result<SqlExpr, CoreError> {
        if self.lr.is_self {
            // Self-joins read the raw input: element base columns lower to
            // their source expressions; raw fields pass through.
            if let Some(col) = self.ctx.column(name) {
                if col.level != 0 {
                    return Err(CoreError::Compile(format!(
                        "self-Lookup can only reference base columns; [{}] is coarser",
                        name
                    )));
                }
                return match &col.origin {
                    ColumnOrigin::SourceCol(raw) => Ok(SqlExpr::qcol(self.alias, raw.clone())),
                    ColumnOrigin::Formula(f) => {
                        // Rewrite the formula's qualified refs? Base column
                        // formulas use local refs; lower with this site so
                        // local refs resolve against the target alias.
                        lower(f, self)
                    }
                };
            }
            if self.ctx.source_field(name).is_some() {
                return Ok(SqlExpr::qcol(self.alias, name.to_string()));
            }
            return Err(CoreError::Unresolved(format!(
                "[{}/{}]",
                self.lr.target, name
            )));
        }
        // Non-self targets expose their compiled output columns by name.
        Ok(SqlExpr::qcol(self.alias, name.to_string()))
    }
}

impl Site for TargetSite<'_, '_> {
    fn ctx(&self) -> &TableCtx<'_> {
        self.ctx
    }

    fn column_ref(&self, col: &ColumnInfo) -> Result<SqlExpr, CoreError> {
        // Local (unqualified) refs inside target-side formulas resolve
        // against the target too (used when inlining self-target columns).
        self.resolve_target_col(&col.name)
    }

    fn qualified_ref(&self, r: &sigma_expr::ColumnRef) -> Result<SqlExpr, CoreError> {
        let el = r.element.as_deref().unwrap_or_default();
        if !el.eq_ignore_ascii_case(&self.lr.target) {
            return Err(CoreError::Compile(format!(
                "Lookup/Rollup mixes targets: expected [{}/...], found [{el}/...]",
                self.lr.target
            )));
        }
        self.resolve_target_col(&r.name)
    }

    fn allow_aggregate(&self) -> bool {
        true
    }

    fn agg_arg(&self, arg: &Formula) -> Result<SqlExpr, CoreError> {
        lower(arg, self)
    }
}

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

/// Visit every aggregate call subtree (not descending into them).
fn collect_agg_subtrees(
    f: &Formula,
    visit: &mut impl FnMut(&Formula) -> Result<(), CoreError>,
) -> Result<(), CoreError> {
    match f {
        Formula::Call { func, args } => {
            let kind = sigma_expr::registry(func).map(|d| d.kind);
            if kind == Some(FunctionKind::Aggregate) {
                visit(f)?;
                return Ok(());
            }
            for a in args {
                collect_agg_subtrees(a, visit)?;
            }
            Ok(())
        }
        Formula::Unary { expr, .. } => collect_agg_subtrees(expr, visit),
        Formula::Binary { left, right, .. } => {
            collect_agg_subtrees(left, visit)?;
            collect_agg_subtrees(right, visit)
        }
        _ => Ok(()),
    }
}

/// The stage whose rows an aggregate call consumes: the maximum resident
/// level of the columns its arguments reference (aggregating base columns
/// reads base rows; aggregating a level's outputs reads that level's rows);
/// argument-free aggregates (Count()) count the immediately finer level.
fn agg_input_stage(ctx: &TableCtx<'_>, agg: &Formula, stage: usize) -> Result<usize, CoreError> {
    let Formula::Call { args, .. } = agg else {
        return Err(CoreError::Compile("internal: not an aggregate".into()));
    };
    let mut input: Option<usize> = None;
    for a in args {
        for r in analyze::column_refs(a) {
            if r.element.is_some() {
                continue;
            }
            if let Some(col) = ctx.column(&r.name) {
                let lvl = col.level;
                if lvl >= stage {
                    return Err(CoreError::Type(format!(
                        "[{}] is not finer than this level and cannot be aggregated here",
                        col.name
                    )));
                }
                input = Some(input.map_or(lvl, |x| x.max(lvl)));
            }
        }
    }
    Ok(input.unwrap_or(stage.saturating_sub(1)))
}

/// Lower a single aggregate call in an argument context.
fn lower_agg_call(agg: &Formula, arg_site: &dyn Site) -> Result<SqlExpr, CoreError> {
    struct AggOnly<'x> {
        inner: &'x dyn Site,
    }
    impl Site for AggOnly<'_> {
        fn ctx(&self) -> &TableCtx<'_> {
            self.inner.ctx()
        }
        fn column_ref(&self, col: &ColumnInfo) -> Result<SqlExpr, CoreError> {
            self.inner.column_ref(col)
        }
        fn allow_aggregate(&self) -> bool {
            true
        }
        fn agg_arg(&self, arg: &Formula) -> Result<SqlExpr, CoreError> {
            lower(arg, self.inner)
        }
    }
    lower(agg, &AggOnly { inner: arg_site })
}

/// Rewrite CTE-name references inside a query (used when embedding another
/// element's compiled query under a prefix).
fn rename_tables_in_query(q: &mut Query, renames: &HashMap<String, String>) {
    for (_, cte) in &mut q.ctes {
        rename_tables_in_query(cte, renames);
    }
    rename_tables_in_set(&mut q.body, renames);
}

fn rename_tables_in_set(body: &mut SetExpr, renames: &HashMap<String, String>) {
    match body {
        SetExpr::Select(s) => {
            if let Some(from) = &mut s.from {
                rename_table_ref(from, renames);
            }
            for j in &mut s.joins {
                rename_table_ref(&mut j.relation, renames);
            }
        }
        SetExpr::UnionAll(l, r) => {
            rename_tables_in_set(l, renames);
            rename_tables_in_set(r, renames);
        }
        SetExpr::Values(_) => {}
    }
}

fn rename_table_ref(t: &mut TableRef, renames: &HashMap<String, String>) {
    match t {
        TableRef::Table { name, .. } => {
            if name.0.len() == 1 {
                if let Some(new) = renames.get(&name.0[0].to_ascii_lowercase()) {
                    name.0[0] = new.clone();
                }
            }
        }
        TableRef::Subquery { query, .. } => rename_tables_in_query(query, renames),
        TableRef::Function { .. } => {}
    }
}
