//! Edit-delta classification between two [`StagePlan`]s.
//!
//! A workbook edit recompiles the element into a new stage DAG. Comparing
//! the old and new plans stage by stage tells the client *how* the query
//! changed — and whether the dominant interactive edit shapes apply:
//!
//! * **FilterTweak** — exactly the `WHERE` clause of a stage changed
//!   (slider drag, filter threshold edit). The stage's new result is the
//!   cached parent result re-filtered through one selection-vector kernel
//!   pass; no re-plan, no re-scan.
//! * **Projection** — only the SELECT list of a stage changed (new or
//!   edited formula column). The stage's new result is a projection over
//!   the cached parent result.
//!
//! Any other difference — stages added or removed, renamed, re-wired,
//! grouping changes, ordering changes — is **Structural**: the residual
//! suffix must re-plan and re-execute (locally when the invalidated
//! frontier is cached, on the service otherwise).
//!
//! Classification is purely syntactic (AST equality over the stage
//! queries); it never looks at data, so it is exact: two stages classify
//! as a tweak iff every other clause is identical. Downstream stages whose
//! canonical SQL is unchanged (only their Merkle fingerprints moved) are
//! not edits — they re-execute over new inputs but need no classification.

use sigma_sql::{Query, Select, SetExpr};

use super::stageplan::StagePlan;

/// How a single stage's query text changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageEditKind {
    /// Only the `WHERE` predicate differs.
    FilterTweak,
    /// Only the SELECT list differs.
    Projection,
}

/// One edited stage, by index into the **new** plan's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEdit {
    pub stage: usize,
    pub kind: StageEditKind,
}

/// The classified difference between two compiled plans of one element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanDelta {
    /// Same root fingerprint: nothing changed.
    Identical,
    /// Every stage whose canonical SQL changed did so in a
    /// delta-maintainable way. Edits are in topological (index) order.
    Edits(Vec<StageEdit>),
    /// The plans differ in shape, or some changed stage is not a pure
    /// filter/projection tweak.
    Structural,
}

impl PlanDelta {
    /// The edits, when delta-maintainable.
    pub fn edits(&self) -> &[StageEdit] {
        match self {
            PlanDelta::Edits(e) => e,
            _ => &[],
        }
    }
}

/// Classify the difference between two compiled stage DAGs.
pub fn classify_plan_delta(old: &StagePlan, new: &StagePlan) -> PlanDelta {
    if old.root_fingerprint() == new.root_fingerprint() {
        return PlanDelta::Identical;
    }
    // Same DAG shape: node-for-node names and wiring.
    if old.nodes.len() != new.nodes.len() {
        return PlanDelta::Structural;
    }
    for (o, n) in old.nodes.iter().zip(&new.nodes) {
        if !o.name.eq_ignore_ascii_case(&n.name) || o.inputs != n.inputs {
            return PlanDelta::Structural;
        }
    }
    let mut edits = Vec::new();
    for (idx, (o, n)) in old.nodes.iter().zip(&new.nodes).enumerate() {
        if o.sql == n.sql {
            continue;
        }
        match classify_stage_edit(&o.query, &n.query) {
            Some(kind) => edits.push(StageEdit { stage: idx, kind }),
            None => return PlanDelta::Structural,
        }
    }
    if edits.is_empty() {
        // SQL all equal but roots differ: cannot happen with Merkle
        // fingerprints over identical wiring, but classify conservatively.
        return PlanDelta::Structural;
    }
    PlanDelta::Edits(edits)
}

/// Classify how one stage's query changed, if delta-maintainably.
pub fn classify_stage_edit(old: &Query, new: &Query) -> Option<StageEditKind> {
    // The surrounding query must be a plain select with identical
    // ordering/limit framing on both sides.
    if old.ctes != new.ctes
        || old.order_by != new.order_by
        || old.limit != new.limit
        || old.offset != new.offset
    {
        return None;
    }
    let (SetExpr::Select(o), SetExpr::Select(n)) = (&old.body, &new.body) else {
        return None;
    };
    if same_but_selection(o, n) && o.selection != n.selection {
        return Some(StageEditKind::FilterTweak);
    }
    if same_but_projection(o, n) && o.projection != n.projection {
        return Some(StageEditKind::Projection);
    }
    None
}

/// Every clause equal except (possibly) the WHERE predicate.
fn same_but_selection(o: &Select, n: &Select) -> bool {
    o.distinct == n.distinct
        && o.projection == n.projection
        && o.from == n.from
        && o.joins == n.joins
        && o.group_by == n.group_by
        && o.having == n.having
        && o.qualify == n.qualify
}

/// Every clause equal except (possibly) the SELECT list.
fn same_but_projection(o: &Select, n: &Select) -> bool {
    o.distinct == n.distinct
        && o.from == n.from
        && o.joins == n.joins
        && o.selection == n.selection
        && o.group_by == n.group_by
        && o.having == n.having
        && o.qualify == n.qualify
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_sql::{parse_query, Dialect};

    fn plan(sql: &str) -> StagePlan {
        StagePlan::from_query(&parse_query(sql).unwrap(), &Dialect::generic())
    }

    #[test]
    fn identical_plans() {
        let p = plan("WITH s AS (SELECT a FROM t) SELECT a FROM s");
        assert_eq!(classify_plan_delta(&p, &p), PlanDelta::Identical);
    }

    #[test]
    fn filter_tweak_classifies() {
        let p1 =
            plan("WITH s AS (SELECT a FROM t), f AS (SELECT * FROM s WHERE a > 1) SELECT a FROM f");
        let p2 =
            plan("WITH s AS (SELECT a FROM t), f AS (SELECT * FROM s WHERE a > 2) SELECT a FROM f");
        let delta = classify_plan_delta(&p1, &p2);
        assert_eq!(
            delta,
            PlanDelta::Edits(vec![StageEdit {
                stage: 1,
                kind: StageEditKind::FilterTweak,
            }])
        );
    }

    #[test]
    fn added_and_removed_filters_classify() {
        let p1 = plan("WITH s AS (SELECT a FROM t) SELECT a FROM s");
        let p2 = plan("WITH s AS (SELECT a FROM t WHERE a > 2) SELECT a FROM s");
        assert_eq!(
            classify_plan_delta(&p1, &p2).edits(),
            &[StageEdit {
                stage: 0,
                kind: StageEditKind::FilterTweak,
            }]
        );
        assert_eq!(
            classify_plan_delta(&p2, &p1).edits(),
            &[StageEdit {
                stage: 0,
                kind: StageEditKind::FilterTweak,
            }]
        );
    }

    #[test]
    fn projection_change_classifies_including_sink_passthrough() {
        let p1 = plan("WITH s AS (SELECT a FROM t) SELECT a AS a FROM s");
        let p2 = plan("WITH s AS (SELECT a, a + 1 AS b FROM t) SELECT a AS a, b AS b FROM s");
        let delta = classify_plan_delta(&p1, &p2);
        assert_eq!(
            delta,
            PlanDelta::Edits(vec![
                StageEdit {
                    stage: 0,
                    kind: StageEditKind::Projection,
                },
                StageEdit {
                    stage: 1,
                    kind: StageEditKind::Projection,
                },
            ])
        );
    }

    #[test]
    fn structural_changes_detected() {
        // Regroup: GROUP BY key changed.
        let p1 = plan("WITH s AS (SELECT a, b FROM t) SELECT a, SUM(b) AS s FROM s GROUP BY a");
        let p2 = plan("WITH s AS (SELECT a, b FROM t) SELECT b, SUM(a) AS s FROM s GROUP BY b");
        assert_eq!(classify_plan_delta(&p1, &p2), PlanDelta::Structural);
        // Stage count changed.
        let p3 = plan("WITH s AS (SELECT a FROM t), f AS (SELECT * FROM s) SELECT a FROM f");
        let p4 = plan("WITH s AS (SELECT a FROM t) SELECT a FROM s");
        assert_eq!(classify_plan_delta(&p3, &p4), PlanDelta::Structural);
    }

    #[test]
    fn simultaneous_filter_and_projection_change_is_structural() {
        let p1 = plan("WITH s AS (SELECT a FROM t) SELECT a FROM s WHERE a > 1");
        let p2 = plan("WITH s AS (SELECT a FROM t) SELECT a, a + 1 AS b FROM s WHERE a > 2");
        assert_eq!(classify_plan_delta(&p1, &p2), PlanDelta::Structural);
    }

    #[test]
    fn order_by_change_is_structural() {
        let p1 = plan("WITH s AS (SELECT a FROM t) SELECT a FROM s ORDER BY a");
        let p2 = plan("WITH s AS (SELECT a FROM t) SELECT a FROM s ORDER BY a DESC");
        assert_eq!(classify_plan_delta(&p1, &p2), PlanDelta::Structural);
    }
}
