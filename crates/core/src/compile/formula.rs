//! Formula → SQL expression lowering.
//!
//! Lowering is parameterized by a [`Site`]: the stage CTE being built
//! decides how column references resolve (inline, from the finer input,
//! from a prior-phase CTE, or from a joined coarser level) and what the
//! window partition/ordering is. The function mapping below is the
//! spreadsheet-language → SQL dictionary.

use sigma_expr::{BinaryOp, ColumnRef, Formula, FunctionKind, UnaryOp};
use sigma_sql::{FrameBound, SqlBinaryOp, SqlExpr, SqlUnaryOp, WindowFrame, WindowSpec};
use sigma_value::{DataType, Value};

use super::context::{ColumnInfo, TableCtx};
use crate::error::CoreError;
use crate::table::FilterPredicate;

/// Resolution context for one lowering position.
pub(crate) trait Site {
    fn ctx(&self) -> &TableCtx<'_>;
    /// Lower a reference to a local column.
    fn column_ref(&self, col: &ColumnInfo) -> Result<SqlExpr, CoreError>;
    /// Lower an aggregate call's argument (evaluated over the finer rows).
    fn agg_arg(&self, arg: &Formula) -> Result<SqlExpr, CoreError> {
        let _ = arg;
        Err(CoreError::Compile(
            "aggregates are not allowed in this position".into(),
        ))
    }
    fn allow_aggregate(&self) -> bool {
        false
    }
    fn allow_window(&self) -> bool {
        false
    }
    /// Partition/ordering for window calls at this site.
    fn window_spec(&self) -> Result<WindowSpec, CoreError> {
        Err(CoreError::Compile(
            "window functions are not allowed in this position".into(),
        ))
    }
    /// Pre-computed SQL for a whole aggregate call (phase>0 level sites
    /// compute aggregates in a "fresh" subquery and reference them here).
    fn aggregate_slot(&self, call: &Formula) -> Option<SqlExpr> {
        let _ = call;
        None
    }
    /// Resolve a qualified `[Element/Column]` reference (lookup target
    /// sites only).
    fn qualified_ref(&self, r: &ColumnRef) -> Result<SqlExpr, CoreError> {
        Err(CoreError::Compile(format!(
            "[{}/{}] is only valid inside Lookup/Rollup",
            r.element.as_deref().unwrap_or(""),
            r.name
        )))
    }
}

/// Lower a formula at a site.
pub(crate) fn lower(f: &Formula, site: &dyn Site) -> Result<SqlExpr, CoreError> {
    match f {
        Formula::Literal(v) => Ok(SqlExpr::Literal(v.clone())),
        Formula::Ref(r) => lower_ref(r, site),
        Formula::Unary { op, expr } => {
            let inner = lower(expr, site)?;
            Ok(match op {
                UnaryOp::Neg => SqlExpr::Unary {
                    op: SqlUnaryOp::Neg,
                    expr: Box::new(inner),
                },
                UnaryOp::Not => SqlExpr::Unary {
                    op: SqlUnaryOp::Not,
                    expr: Box::new(inner),
                },
            })
        }
        Formula::Binary { op, left, right } => {
            let l = lower(left, site)?;
            let r = lower(right, site)?;
            Ok(match op {
                // Spreadsheet `&` concatenation treats NULL as empty text,
                // so it maps to CONCAT (null-tolerant) rather than `||`.
                BinaryOp::Concat => SqlExpr::func("CONCAT", vec![l, r]),
                BinaryOp::Pow => SqlExpr::func("POWER", vec![l, r]),
                BinaryOp::Mod => SqlExpr::func("MOD", vec![l, r]),
                other => SqlExpr::binary(map_binop(*other), l, r),
            })
        }
        Formula::Call { func, args } => {
            if let Some(slot) = site.aggregate_slot(f) {
                return Ok(slot);
            }
            lower_call(func, args, site)
        }
    }
}

fn map_binop(op: BinaryOp) -> SqlBinaryOp {
    match op {
        BinaryOp::Add => SqlBinaryOp::Add,
        BinaryOp::Sub => SqlBinaryOp::Sub,
        BinaryOp::Mul => SqlBinaryOp::Mul,
        BinaryOp::Div => SqlBinaryOp::Div,
        BinaryOp::Eq => SqlBinaryOp::Eq,
        BinaryOp::Ne => SqlBinaryOp::NotEq,
        BinaryOp::Lt => SqlBinaryOp::Lt,
        BinaryOp::Le => SqlBinaryOp::LtEq,
        BinaryOp::Gt => SqlBinaryOp::Gt,
        BinaryOp::Ge => SqlBinaryOp::GtEq,
        BinaryOp::And => SqlBinaryOp::And,
        BinaryOp::Or => SqlBinaryOp::Or,
        BinaryOp::Concat | BinaryOp::Pow | BinaryOp::Mod => unreachable!("handled above"),
    }
}

fn lower_ref(r: &ColumnRef, site: &dyn Site) -> Result<SqlExpr, CoreError> {
    if r.element.is_some() {
        return site.qualified_ref(r);
    }
    // Columns shadow controls, which shadow nothing else.
    if let Some(col) = site.ctx().column(&r.name) {
        let col = col.clone();
        return site.column_ref(&col);
    }
    if let Some(control) = site.ctx().compiler.workbook.control(&r.name) {
        // Control binding: inline the current value as a literal.
        return Ok(SqlExpr::Literal(control.value.clone()));
    }
    Err(CoreError::Unresolved(format!(
        "column or control [{}]",
        r.name
    )))
}

fn lower_call(func: &str, args: &[Formula], site: &dyn Site) -> Result<SqlExpr, CoreError> {
    let def = sigma_expr::registry(func)
        .ok_or_else(|| CoreError::Unresolved(format!("function {func}")))?;
    match def.kind {
        FunctionKind::Scalar => lower_scalar(def.name, args, site),
        FunctionKind::Aggregate => {
            if !site.allow_aggregate() {
                return Err(CoreError::Compile(format!(
                    "{func} aggregates but this column resides at a level without a finer level to aggregate"
                )));
            }
            lower_aggregate(def.name, args, site)
        }
        FunctionKind::Window => {
            if !site.allow_window() {
                return Err(CoreError::Compile(format!(
                    "{func} is a window function and is not allowed here"
                )));
            }
            lower_window(def.name, args, site)
        }
        FunctionKind::Special => Err(CoreError::Compile(
            "internal: Lookup/Rollup should have been extracted".into(),
        )),
    }
}

fn lower_all(args: &[Formula], site: &dyn Site) -> Result<Vec<SqlExpr>, CoreError> {
    args.iter().map(|a| lower(a, site)).collect()
}

fn unit_arg(args: &[Formula]) -> Result<SqlExpr, CoreError> {
    match &args[0] {
        Formula::Literal(Value::Text(s)) => Ok(SqlExpr::lit(s.to_ascii_lowercase())),
        _ => Err(CoreError::Compile(
            "date units must be string literals like \"quarter\"".into(),
        )),
    }
}

fn lower_scalar(name: &str, args: &[Formula], site: &dyn Site) -> Result<SqlExpr, CoreError> {
    let a = |i: usize| lower(&args[i], site);
    Ok(match name {
        "Abs" => SqlExpr::func("ABS", lower_all(args, site)?),
        "Round" => SqlExpr::func("ROUND", lower_all(args, site)?),
        "Floor" | "Int" => SqlExpr::func("FLOOR", lower_all(args, site)?),
        "Ceiling" => SqlExpr::func("CEIL", lower_all(args, site)?),
        "Sqrt" => SqlExpr::func("SQRT", lower_all(args, site)?),
        "Exp" => SqlExpr::func("EXP", lower_all(args, site)?),
        "Ln" => SqlExpr::func("LN", lower_all(args, site)?),
        "Log" => SqlExpr::func("LOG", lower_all(args, site)?),
        "Power" => SqlExpr::func("POWER", lower_all(args, site)?),
        "Mod" => SqlExpr::func("MOD", lower_all(args, site)?),
        "Sign" => SqlExpr::func("SIGN", lower_all(args, site)?),
        "Greatest" => SqlExpr::func("GREATEST", lower_all(args, site)?),
        "Least" => SqlExpr::func("LEAST", lower_all(args, site)?),
        "Concat" => SqlExpr::func("CONCAT", lower_all(args, site)?),
        "Upper" => SqlExpr::func("UPPER", lower_all(args, site)?),
        "Lower" => SqlExpr::func("LOWER", lower_all(args, site)?),
        "Trim" => SqlExpr::func("TRIM", lower_all(args, site)?),
        "LTrim" => SqlExpr::func("LTRIM", lower_all(args, site)?),
        "RTrim" => SqlExpr::func("RTRIM", lower_all(args, site)?),
        "Len" => SqlExpr::func("LENGTH", lower_all(args, site)?),
        "Left" => SqlExpr::func("LEFT", lower_all(args, site)?),
        "Right" => SqlExpr::func("RIGHT", lower_all(args, site)?),
        "Mid" => SqlExpr::func("SUBSTRING", lower_all(args, site)?),
        "Contains" => SqlExpr::func("CONTAINS", lower_all(args, site)?),
        "StartsWith" => SqlExpr::func("STARTS_WITH", lower_all(args, site)?),
        "EndsWith" => SqlExpr::func("ENDS_WITH", lower_all(args, site)?),
        "Replace" => SqlExpr::func("REPLACE", lower_all(args, site)?),
        "SplitPart" => SqlExpr::func("SPLIT_PART", lower_all(args, site)?),
        "Lpad" => SqlExpr::func("LPAD", lower_all(args, site)?),
        "Rpad" => SqlExpr::func("RPAD", lower_all(args, site)?),
        "Repeat" => SqlExpr::func("REPEAT", lower_all(args, site)?),
        "If" => {
            // If(c1, v1, [c2, v2, ...], [else]) -> searched CASE.
            let mut whens = Vec::new();
            let mut i = 0;
            while i + 1 < args.len() {
                whens.push((a(i)?, a(i + 1)?));
                i += 2;
            }
            let else_ = if i < args.len() {
                Some(Box::new(a(i)?))
            } else {
                None
            };
            SqlExpr::Case {
                operand: None,
                whens,
                else_,
            }
        }
        "Switch" => {
            let operand = Some(Box::new(a(0)?));
            let mut whens = Vec::new();
            let mut i = 1;
            while i + 1 < args.len() {
                whens.push((a(i)?, a(i + 1)?));
                i += 2;
            }
            let else_ = if i < args.len() {
                Some(Box::new(a(i)?))
            } else {
                None
            };
            SqlExpr::Case {
                operand,
                whens,
                else_,
            }
        }
        "IsNull" => SqlExpr::IsNull {
            expr: Box::new(a(0)?),
            negated: false,
        },
        "IsNotNull" => SqlExpr::IsNull {
            expr: Box::new(a(0)?),
            negated: true,
        },
        "Coalesce" | "IfNull" => SqlExpr::func("COALESCE", lower_all(args, site)?),
        "Nullif" => SqlExpr::func("NULLIF", lower_all(args, site)?),
        "OneOf" => SqlExpr::InList {
            expr: Box::new(a(0)?),
            list: args[1..]
                .iter()
                .map(|x| lower(x, site))
                .collect::<Result<_, _>>()?,
            negated: false,
        },
        "Between" => SqlExpr::Between {
            expr: Box::new(a(0)?),
            low: Box::new(a(1)?),
            high: Box::new(a(2)?),
            negated: false,
        },
        "Number" => SqlExpr::Cast {
            expr: Box::new(a(0)?),
            dtype: DataType::Float,
        },
        "Text" => SqlExpr::Cast {
            expr: Box::new(a(0)?),
            dtype: DataType::Text,
        },
        "Date" => SqlExpr::Cast {
            expr: Box::new(a(0)?),
            dtype: DataType::Date,
        },
        "DateTime" => SqlExpr::Cast {
            expr: Box::new(a(0)?),
            dtype: DataType::Timestamp,
        },
        "Today" => SqlExpr::func("CURRENT_DATE", vec![]),
        "Now" => SqlExpr::func("CURRENT_TIMESTAMP", vec![]),
        "DateTrunc" => SqlExpr::func("DATE_TRUNC", vec![unit_arg(args)?, a(1)?]),
        "DatePart" => SqlExpr::func("DATE_PART", vec![unit_arg(args)?, a(1)?]),
        "DateAdd" => SqlExpr::func("DATEADD", vec![unit_arg(args)?, a(1)?, a(2)?]),
        "DateDiff" => SqlExpr::func("DATEDIFF", vec![unit_arg(args)?, a(1)?, a(2)?]),
        "Year" => SqlExpr::func("DATE_PART", vec![SqlExpr::lit("year"), a(0)?]),
        "Quarter" => SqlExpr::func("DATE_PART", vec![SqlExpr::lit("quarter"), a(0)?]),
        "Month" => SqlExpr::func("DATE_PART", vec![SqlExpr::lit("month"), a(0)?]),
        "Week" => SqlExpr::func("DATE_PART", vec![SqlExpr::lit("week"), a(0)?]),
        "Day" => SqlExpr::func("DATE_PART", vec![SqlExpr::lit("day"), a(0)?]),
        "Hour" => SqlExpr::func("DATE_PART", vec![SqlExpr::lit("hour"), a(0)?]),
        "Minute" => SqlExpr::func("DATE_PART", vec![SqlExpr::lit("minute"), a(0)?]),
        "Second" => SqlExpr::func("DATE_PART", vec![SqlExpr::lit("second"), a(0)?]),
        "Weekday" => {
            // 1 = Sunday ... 7 = Saturday. 1970-01-04 was a Sunday.
            let diff = SqlExpr::func(
                "DATEDIFF",
                vec![
                    SqlExpr::lit("day"),
                    SqlExpr::Literal(Value::Date(sigma_value::calendar::days_from_civil(
                        1970, 1, 4,
                    ))),
                    a(0)?,
                ],
            );
            SqlExpr::binary(
                SqlBinaryOp::Add,
                SqlExpr::func("MOD", vec![diff, SqlExpr::lit(7i64)]),
                SqlExpr::lit(1i64),
            )
        }
        "MakeDate" => SqlExpr::func("MAKE_DATE", lower_all(args, site)?),
        other => {
            return Err(CoreError::Compile(format!(
                "no SQL lowering for scalar function {other}"
            )))
        }
    })
}

fn lower_aggregate(name: &str, args: &[Formula], site: &dyn Site) -> Result<SqlExpr, CoreError> {
    let arg = |i: usize| site.agg_arg(&args[i]);
    // <Agg>If(cond, x) -> AGG(CASE WHEN cond THEN x END).
    let guarded = |cond: SqlExpr, then: SqlExpr| SqlExpr::Case {
        operand: None,
        whens: vec![(cond, then)],
        else_: None,
    };
    Ok(match name {
        "Sum" => SqlExpr::func("SUM", vec![arg(0)?]),
        "Avg" => SqlExpr::func("AVG", vec![arg(0)?]),
        "Min" => SqlExpr::func("MIN", vec![arg(0)?]),
        "Max" => SqlExpr::func("MAX", vec![arg(0)?]),
        "Count" => {
            if args.is_empty() {
                SqlExpr::func("COUNT", vec![SqlExpr::Star])
            } else {
                SqlExpr::func("COUNT", vec![arg(0)?])
            }
        }
        "CountDistinct" => SqlExpr::Func {
            name: "COUNT".into(),
            args: vec![arg(0)?],
            distinct: true,
        },
        "CountIf" => SqlExpr::func("COUNT", vec![guarded(arg(0)?, SqlExpr::lit(1i64))]),
        "SumIf" => SqlExpr::func("SUM", vec![guarded(arg(0)?, arg(1)?)]),
        "AvgIf" => SqlExpr::func("AVG", vec![guarded(arg(0)?, arg(1)?)]),
        "MinIf" => SqlExpr::func("MIN", vec![guarded(arg(0)?, arg(1)?)]),
        "MaxIf" => SqlExpr::func("MAX", vec![guarded(arg(0)?, arg(1)?)]),
        "Median" => SqlExpr::func("MEDIAN", vec![arg(0)?]),
        "StdDev" => SqlExpr::func("STDDEV", vec![arg(0)?]),
        "Variance" => SqlExpr::func("VARIANCE", vec![arg(0)?]),
        "Percentile" => {
            let frac = match &args[1] {
                Formula::Literal(v) if v.as_f64().is_some() => SqlExpr::Literal(v.clone()),
                _ => {
                    return Err(CoreError::Compile(
                        "Percentile's fraction must be a numeric literal".into(),
                    ))
                }
            };
            SqlExpr::func("PERCENTILE_CONT", vec![arg(0)?, frac])
        }
        "ATTR" => SqlExpr::func("ATTR", vec![arg(0)?]),
        other => {
            return Err(CoreError::Compile(format!(
                "no SQL lowering for aggregate {other}"
            )))
        }
    })
}

fn lower_window(name: &str, args: &[Formula], site: &dyn Site) -> Result<SqlExpr, CoreError> {
    let base_spec = site.window_spec()?;
    let needs_order = !matches!(name, "First" | "Last" | "Nth");
    if needs_order && base_spec.order_by.is_empty() {
        return Err(CoreError::Compile(format!(
            "{name} needs the level to have an ordering annotation"
        )));
    }
    let a = |i: usize| lower(&args[i], site);
    let running = WindowFrame {
        start: FrameBound::UnboundedPreceding,
        end: FrameBound::CurrentRow,
    };
    let whole = WindowFrame {
        start: FrameBound::UnboundedPreceding,
        end: FrameBound::UnboundedFollowing,
    };
    let frame_lit = |f: &Formula, what: &str| -> Result<u64, CoreError> {
        match f {
            Formula::Literal(Value::Int(n)) if *n >= 0 => Ok(*n as u64),
            _ => Err(CoreError::Compile(format!(
                "{what} must be a non-negative integer literal"
            ))),
        }
    };
    let win = |name: &str,
               args: Vec<SqlExpr>,
               ignore_nulls: bool,
               frame: Option<WindowFrame>|
     -> SqlExpr {
        SqlExpr::WindowFunc {
            name: name.into(),
            args,
            ignore_nulls,
            spec: WindowSpec {
                partition_by: base_spec.partition_by.clone(),
                order_by: base_spec.order_by.clone(),
                frame,
            },
        }
    };
    Ok(match name {
        "RowNumber" => win("ROW_NUMBER", vec![], false, None),
        "Rank" => win("RANK", vec![], false, None),
        "DenseRank" => win("DENSE_RANK", vec![], false, None),
        "Ntile" => win("NTILE", vec![a(0)?], false, None),
        "Lag" | "Lead" => {
            let mut wargs = vec![a(0)?];
            for i in 1..args.len() {
                wargs.push(a(i)?);
            }
            win(
                if name == "Lag" { "LAG" } else { "LEAD" },
                wargs,
                false,
                None,
            )
        }
        "First" => win("FIRST_VALUE", vec![a(0)?], false, Some(whole)),
        "Last" => win("LAST_VALUE", vec![a(0)?], false, Some(whole)),
        "Nth" => win("NTH_VALUE", vec![a(0)?, a(1)?], false, Some(whole)),
        "RunningSum" => win("SUM", vec![a(0)?], false, Some(running)),
        "RunningAvg" => win("AVG", vec![a(0)?], false, Some(running)),
        "RunningMin" => win("MIN", vec![a(0)?], false, Some(running)),
        "RunningMax" => win("MAX", vec![a(0)?], false, Some(running)),
        "RunningCount" => {
            let wargs = if args.is_empty() {
                vec![SqlExpr::Star]
            } else {
                vec![a(0)?]
            };
            win("COUNT", wargs, false, Some(running))
        }
        "MovingAvg" | "MovingSum" | "MovingMin" | "MovingMax" => {
            let back = frame_lit(&args[1], "the moving-window look-back")?;
            let fwd = if args.len() > 2 {
                frame_lit(&args[2], "the moving-window look-ahead")?
            } else {
                0
            };
            let frame = WindowFrame {
                start: FrameBound::Preceding(back),
                end: if fwd == 0 {
                    FrameBound::CurrentRow
                } else {
                    FrameBound::Following(fwd)
                },
            };
            let sql_name = match name {
                "MovingAvg" => "AVG",
                "MovingSum" => "SUM",
                "MovingMin" => "MIN",
                _ => "MAX",
            };
            win(sql_name, vec![a(0)?], false, Some(frame))
        }
        "FillDown" => win("LAST_VALUE", vec![a(0)?], true, Some(running)),
        "FillUp" => {
            let frame = WindowFrame {
                start: FrameBound::CurrentRow,
                end: FrameBound::UnboundedFollowing,
            };
            win("FIRST_VALUE", vec![a(0)?], true, Some(frame))
        }
        other => {
            return Err(CoreError::Compile(format!(
                "no SQL lowering for window function {other}"
            )))
        }
    })
}

/// Lower a filter predicate over the given value expression.
pub(crate) fn filter_predicate(
    pred: &FilterPredicate,
    value: SqlExpr,
) -> Result<SqlExpr, CoreError> {
    Ok(match pred {
        FilterPredicate::OneOf(values) => SqlExpr::InList {
            expr: Box::new(value),
            list: values.iter().map(|v| SqlExpr::Literal(v.clone())).collect(),
            negated: false,
        },
        FilterPredicate::NotOneOf(values) => SqlExpr::InList {
            expr: Box::new(value),
            list: values.iter().map(|v| SqlExpr::Literal(v.clone())).collect(),
            negated: true,
        },
        FilterPredicate::Range { min, max } => {
            let mut preds = Vec::new();
            if let Some(lo) = min {
                preds.push(SqlExpr::binary(
                    SqlBinaryOp::GtEq,
                    value.clone(),
                    SqlExpr::Literal(lo.clone()),
                ));
            }
            if let Some(hi) = max {
                preds.push(SqlExpr::binary(
                    SqlBinaryOp::LtEq,
                    value.clone(),
                    SqlExpr::Literal(hi.clone()),
                ));
            }
            SqlExpr::conjunction(preds).ok_or_else(|| {
                CoreError::Document("range filter needs at least one bound".into())
            })?
        }
        FilterPredicate::Contains(text) => {
            SqlExpr::func("CONTAINS", vec![value, SqlExpr::lit(text.as_str())])
        }
        FilterPredicate::Equals(v) => SqlExpr::eq(value, SqlExpr::Literal(v.clone())),
        FilterPredicate::IsNull => SqlExpr::IsNull {
            expr: Box::new(value),
            negated: false,
        },
        FilterPredicate::IsNotNull => SqlExpr::IsNull {
            expr: Box::new(value),
            negated: true,
        },
    })
}

/// Null-safe join-key expression for structural level joins: NULL keys must
/// match each other (GROUP BY groups them), so both sides canonicalize to
/// text with a sentinel for NULL.
pub(crate) fn null_safe_key(expr: SqlExpr) -> SqlExpr {
    SqlExpr::func(
        "COALESCE",
        vec![
            SqlExpr::Cast {
                expr: Box::new(expr),
                dtype: DataType::Text,
            },
            SqlExpr::lit("\u{1}<null>"),
        ],
    )
}
