//! Per-element compilation context: resolved columns, types, phases, and
//! lookup joins.

use std::collections::HashMap;
use std::sync::Arc;

use sigma_expr::{analyze, parse_formula, ColumnRef, Formula, FunctionKind};
use sigma_value::{DataType, Field, Schema};

use crate::error::CoreError;
use crate::table::{ColumnExpr, DataSource, TableSpec};

use super::Compiler;

/// Safety cap on cross-level phase depth (each phase adds a join-back CTE
/// round; real workbooks never need more than two or three).
pub(crate) const MAX_PHASES: usize = 6;

/// How a column's value is produced.
#[derive(Debug, Clone)]
pub(crate) enum ColumnOrigin {
    /// Materialized by the `source` CTE under this physical name (raw
    /// source columns and lookup/rollup values).
    SourceCol(String),
    /// A formula evaluated at the column's resident stage.
    Formula(Formula),
}

/// One resolved column (user-defined or synthesized).
#[derive(Debug, Clone)]
pub(crate) struct ColumnInfo {
    pub name: String,
    pub origin: ColumnOrigin,
    /// Resident stage: 0 = base, 1..k = keyed levels, k+1 = summary.
    pub level: usize,
    pub phase: usize,
    pub visible: bool,
    pub dtype: Option<DataType>,
}

/// One Lookup/Rollup call, joined in the `source` CTE.
#[derive(Debug, Clone)]
pub(crate) struct LookupJoin {
    /// Join alias (`lr0`, `lr1`, ...) and the pseudo-column name (`$lr0`).
    pub alias: String,
    pub pseudo: String,
    /// Canonical formula text used for de-duplication.
    pub canonical: String,
    pub target: String,
    pub is_self: bool,
    /// Target-side value expression (aggregate for Rollup; wrapped in the
    /// virtual aggregate ATTR for Lookup — §3.2).
    pub value: Formula,
    pub is_rollup: bool,
    pub local_keys: Vec<Formula>,
    pub target_keys: Vec<Formula>,
    pub dtype: Option<DataType>,
}

/// The fully resolved compilation context for one table element.
pub(crate) struct TableCtx<'a> {
    pub compiler: &'a Compiler<'a>,
    pub element_name: String,
    pub spec: &'a TableSpec,
    /// Combined source schema (primary + joined links).
    pub source_fields: Vec<Field>,
    pub columns: Vec<ColumnInfo>,
    pub lookups: Vec<LookupJoin>,
    pub max_phase: usize,
}

impl<'a> TableCtx<'a> {
    pub fn build(
        compiler: &'a Compiler<'a>,
        spec: &'a TableSpec,
        self_name: &str,
    ) -> Result<TableCtx<'a>, CoreError> {
        let source_fields = resolve_source_fields(compiler, spec, self_name)?;
        let mut ctx = TableCtx {
            compiler,
            element_name: self_name.to_string(),
            spec,
            source_fields,
            columns: Vec::new(),
            lookups: Vec::new(),
            max_phase: 0,
        };

        // 1. Seed user columns, parsing formulas.
        for def in &spec.columns {
            let origin = match &def.expr {
                ColumnExpr::Source(raw) => {
                    if ctx.source_field(raw).is_none() {
                        return Err(CoreError::Unresolved(format!(
                            "column {}: source column {raw} not found",
                            def.name
                        )));
                    }
                    ColumnOrigin::SourceCol(raw.clone())
                }
                ColumnExpr::Formula(text) => ColumnOrigin::Formula(
                    parse_formula(text)
                        .map_err(|e| CoreError::Formula(format!("column {}: {e}", def.name)))?,
                ),
            };
            ctx.columns.push(ColumnInfo {
                name: def.name.clone(),
                origin,
                level: def.level,
                phase: 0,
                visible: def.visible,
                dtype: None,
            });
        }

        // 2. Implicit source passthroughs: formula refs that match raw
        // source columns but no element column become hidden base columns.
        ctx.add_implicit_source_columns()?;

        // 3. Extract Lookup/Rollup calls into source-CTE joins and rewrite
        // the formulas to reference their pseudo-columns.
        ctx.extract_lookups()?;

        // 4. Decompose nested aggregates / windows-inside-aggregates into
        // synthesized finer-level columns so each formula needs at most one
        // aggregation step.
        ctx.decompose_nested()?;

        // 5. Column dependency order, type inference, phase assignment.
        ctx.infer_types_and_phases()?;
        Ok(ctx)
    }

    pub fn source_field(&self, name: &str) -> Option<&Field> {
        self.source_fields
            .iter()
            .find(|f| f.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, name: &str) -> Option<&ColumnInfo> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn summary_stage(&self) -> usize {
        self.spec.levels.len()
    }

    /// Visible output columns at the detail level and coarser: the detail
    /// level's grouping keys first (for keyed detail levels), then the
    /// visible columns in definition order.
    pub fn output_columns(&self) -> Vec<(String, DataType)> {
        let d = self.spec.detail_level;
        let mut out: Vec<(String, DataType)> = Vec::new();
        if d >= 1 && d < self.summary_stage() {
            for k in self.spec.effective_keys(d) {
                if let Some(col) = self.column(&k) {
                    out.push((col.name.clone(), col.dtype.unwrap_or(DataType::Text)));
                }
            }
        }
        for c in &self.columns {
            if c.visible
                && c.level >= d
                && !out.iter().any(|(n, _)| n.eq_ignore_ascii_case(&c.name))
            {
                out.push((c.name.clone(), c.dtype.unwrap_or(DataType::Text)));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // construction passes
    // ------------------------------------------------------------------

    fn add_implicit_source_columns(&mut self) -> Result<(), CoreError> {
        // A column whose formula references *its own name* means the raw
        // source column (common for viz encodings like `Origin = [origin]`);
        // rewrite such refs to a hidden passthrough to avoid a false cycle.
        let mut self_shadows: Vec<String> = Vec::new();
        for col in &mut self.columns {
            let own = col.name.clone();
            let ColumnOrigin::Formula(f) = &mut col.origin else {
                continue;
            };
            let mut rewrote = false;
            analyze::walk_mut(f, &mut |node| {
                if let Formula::Ref(r) = node {
                    if r.element.is_none() && r.name.eq_ignore_ascii_case(&own) {
                        r.name = format!("$src:{}", r.name.to_ascii_lowercase());
                        rewrote = true;
                    }
                }
            });
            if rewrote {
                self_shadows.push(own);
            }
        }
        for name in self_shadows {
            let Some(field) = self.source_field(&name) else {
                return Err(CoreError::Cycle(format!(
                    "column {name} references itself and no source column shares its name"
                )));
            };
            let raw = field.name.clone();
            let hidden = format!("$src:{}", name.to_ascii_lowercase());
            if self.column(&hidden).is_none() {
                self.columns.push(ColumnInfo {
                    name: hidden,
                    origin: ColumnOrigin::SourceCol(raw),
                    level: 0,
                    phase: 0,
                    visible: false,
                    dtype: None,
                });
            }
        }

        let mut to_add: Vec<String> = Vec::new();
        for col in &self.columns {
            let ColumnOrigin::Formula(f) = &col.origin else {
                continue;
            };
            for name in analyze::local_ref_names(f) {
                let known = self.column(&name).is_some()
                    || self.compiler.workbook.control(&name).is_some()
                    || to_add.iter().any(|n| n.eq_ignore_ascii_case(&name));
                if !known && self.source_field(&name).is_some() {
                    to_add.push(name);
                }
            }
        }
        for name in to_add {
            self.columns.push(ColumnInfo {
                name: name.clone(),
                origin: ColumnOrigin::SourceCol(name),
                level: 0,
                phase: 0,
                visible: false,
                dtype: None,
            });
        }
        Ok(())
    }

    fn extract_lookups(&mut self) -> Result<(), CoreError> {
        // Walk formulas, replacing each Lookup/Rollup call with a ref to a
        // synthesized pseudo-column; register the join.
        let mut lookups: Vec<LookupJoin> = Vec::new();
        let mut new_columns = self.columns.clone();
        for col in &mut new_columns {
            let ColumnOrigin::Formula(f) = &mut col.origin else {
                continue;
            };
            let mut formula = f.clone();
            rewrite_specials(&mut formula, &mut lookups, &self.element_name)?;
            *f = formula;
        }
        // Validate targets exist (self-references are allowed) and nested
        // lookups inside key formulas are rejected for sanity.
        for lr in &lookups {
            if !lr.is_self && self.compiler.workbook.element(&lr.target).is_none() {
                return Err(CoreError::Unresolved(format!(
                    "Lookup/Rollup target element {}",
                    lr.target
                )));
            }
            for k in &lr.local_keys {
                if analyze::has_special(k) || analyze::has_aggregate(k) || analyze::has_window(k) {
                    return Err(CoreError::Compile(
                        "Lookup/Rollup local keys must be plain row expressions".into(),
                    ));
                }
            }
        }
        // Register pseudo-columns for the join values.
        for lr in &lookups {
            new_columns.push(ColumnInfo {
                name: lr.pseudo.clone(),
                origin: ColumnOrigin::SourceCol(lr.pseudo.clone()),
                level: 0,
                phase: 0,
                visible: false,
                dtype: None, // filled during type inference
            });
        }
        self.columns = new_columns;
        self.lookups = lookups;
        Ok(())
    }

    fn decompose_nested(&mut self) -> Result<(), CoreError> {
        let mut synth: Vec<ColumnInfo> = Vec::new();
        let mut counter = 0usize;
        for col in &mut self.columns {
            let level = col.level;
            let ColumnOrigin::Formula(f) = &mut col.origin else {
                continue;
            };
            if level == 0 && analyze::has_aggregate(f) {
                return Err(CoreError::Type(format!(
                    "column {}: aggregates cannot reside at the base level; move the column to a grouping level",
                    col.name
                )));
            }
            let mut formula = f.clone();
            decompose(&mut formula, level, &col.name, &mut synth, &mut counter)?;
            *f = formula;
        }
        self.columns.extend(synth);
        Ok(())
    }

    fn infer_types_and_phases(&mut self) -> Result<(), CoreError> {
        // Topological order over local column references.
        let order = self.column_topo_order()?;

        // Lookup value types need target output schemas; compute lazily.
        let mut lookup_types: HashMap<String, Option<DataType>> = HashMap::new();
        for lr in &self.lookups {
            let t = self.lookup_value_type(lr)?;
            lookup_types.insert(lr.pseudo.clone(), t);
        }
        for lr in self.lookups.iter_mut() {
            lr.dtype = lookup_types.get(&lr.pseudo).copied().flatten();
        }

        let mut types: HashMap<String, Option<DataType>> = HashMap::new();
        let mut phases: HashMap<String, usize> = HashMap::new();
        // "Effectively windowed" columns: inlining them injects a window
        // expression, so using them *inside another window's argument*
        // must move to a later phase (window-over-window splits into
        // successive CTEs, like FillDown over RunningSum in Scenario 2).
        let mut windowed: HashMap<String, bool> = HashMap::new();
        for name in &order {
            let col = self.column(name).expect("ordered name exists").clone();
            let (dtype, phase, is_windowed) = match &col.origin {
                ColumnOrigin::SourceCol(raw) => {
                    let t = if let Some(t) = lookup_types.get(raw.as_str()).copied() {
                        t
                    } else {
                        Some(
                            self.source_field(raw)
                                .ok_or_else(|| {
                                    CoreError::Unresolved(format!("source column {raw}"))
                                })?
                                .dtype,
                        )
                    };
                    (t, 0, false)
                }
                ColumnOrigin::Formula(f) => {
                    let dtype = self.infer_formula_type(f, &types)?;
                    let phase = self.formula_phase(f, col.level, &phases, &windowed)?;
                    let mut w = analyze::has_window(f);
                    if !w {
                        // Same-level refs inline, importing their windows.
                        for r in analyze::column_refs(f) {
                            if r.element.is_none() {
                                if let Some(dep) = self.column(&r.name) {
                                    if dep.level == col.level
                                        && *windowed
                                            .get(&r.name.to_ascii_lowercase())
                                            .unwrap_or(&false)
                                    {
                                        w = true;
                                    }
                                }
                            }
                        }
                    }
                    (dtype, phase, w)
                }
            };
            types.insert(col.name.to_ascii_lowercase(), dtype);
            phases.insert(col.name.to_ascii_lowercase(), phase);
            windowed.insert(col.name.to_ascii_lowercase(), is_windowed);
        }
        let mut max_phase = 0;
        for col in &mut self.columns {
            let key = col.name.to_ascii_lowercase();
            col.dtype = types.get(&key).copied().flatten();
            col.phase = *phases.get(&key).unwrap_or(&0);
            max_phase = max_phase.max(col.phase);
        }
        if max_phase > MAX_PHASES {
            return Err(CoreError::Compile(format!(
                "cross-level reference chain needs {max_phase} phases; the maximum is {MAX_PHASES}"
            )));
        }
        self.max_phase = max_phase;
        Ok(())
    }

    fn column_topo_order(&self) -> Result<Vec<String>, CoreError> {
        let mut order = Vec::new();
        let mut state: HashMap<String, u8> = HashMap::new();
        fn visit(
            ctx: &TableCtx<'_>,
            name: &str,
            state: &mut HashMap<String, u8>,
            order: &mut Vec<String>,
        ) -> Result<(), CoreError> {
            let key = name.to_ascii_lowercase();
            match state.get(&key) {
                Some(2) => return Ok(()),
                Some(1) => {
                    return Err(CoreError::Cycle(format!("column {name} depends on itself")))
                }
                _ => {}
            }
            state.insert(key.clone(), 1);
            let col = ctx
                .column(name)
                .ok_or_else(|| CoreError::Unresolved(format!("column {name}")))?;
            if let ColumnOrigin::Formula(f) = &col.origin {
                for dep in analyze::local_ref_names(f) {
                    if ctx.column(&dep).is_some() {
                        visit(ctx, &dep, state, order)?;
                    }
                }
            }
            state.insert(key, 2);
            order.push(col.name.clone());
            Ok(())
        }
        for col in &self.columns {
            visit(self, &col.name, &mut state, &mut order)?;
        }
        Ok(order)
    }

    fn infer_formula_type(
        &self,
        f: &Formula,
        types: &HashMap<String, Option<DataType>>,
    ) -> Result<Option<DataType>, CoreError> {
        let env = |r: &ColumnRef| -> Option<DataType> {
            if r.element.is_some() {
                return None; // qualified refs only survive inside lookups
            }
            let key = r.name.to_ascii_lowercase();
            if let Some(t) = types.get(&key) {
                // Unknown-typed (all-null) columns report Text.
                return Some(t.unwrap_or(DataType::Text));
            }
            if let Some(c) = self.compiler.workbook.control(&r.name) {
                return Some(c.value.dtype().unwrap_or(DataType::Text));
            }
            self.source_field(&r.name).map(|f| f.dtype)
        };
        Ok(sigma_expr::infer_type(f, &env)?)
    }

    fn formula_phase(
        &self,
        f: &Formula,
        level: usize,
        phases: &HashMap<String, usize>,
        windowed: &HashMap<String, bool>,
    ) -> Result<usize, CoreError> {
        fn walk(
            ctx: &TableCtx<'_>,
            f: &Formula,
            level: usize,
            in_window_arg: bool,
            phases: &HashMap<String, usize>,
            windowed: &HashMap<String, bool>,
            phase: &mut usize,
        ) {
            match f {
                Formula::Ref(r) if r.element.is_none() => {
                    let Some(dep) = ctx.column(&r.name) else {
                        return;
                    };
                    let key = r.name.to_ascii_lowercase();
                    let dep_phase = *phases.get(&key).unwrap_or(&dep.phase);
                    if dep.level > level {
                        // Cross-level (downward) reference: needs the
                        // coarser value materialized first.
                        *phase = (*phase).max(dep_phase + 1);
                    } else if in_window_arg
                        && dep.level == level
                        && *windowed.get(&key).unwrap_or(&false)
                    {
                        // Window-over-window: the inner window must be a
                        // materialized column before this one computes.
                        *phase = (*phase).max(dep_phase + 1);
                    } else {
                        *phase = (*phase).max(dep_phase);
                    }
                }
                Formula::Call { func, args } => {
                    let is_window =
                        sigma_expr::registry(func).is_some_and(|d| d.kind == FunctionKind::Window);
                    for a in args {
                        walk(
                            ctx,
                            a,
                            level,
                            in_window_arg || is_window,
                            phases,
                            windowed,
                            phase,
                        );
                    }
                }
                Formula::Unary { expr, .. } => {
                    walk(ctx, expr, level, in_window_arg, phases, windowed, phase)
                }
                Formula::Binary { left, right, .. } => {
                    walk(ctx, left, level, in_window_arg, phases, windowed, phase);
                    walk(ctx, right, level, in_window_arg, phases, windowed, phase);
                }
                _ => {}
            }
        }
        let mut phase = 0usize;
        walk(self, f, level, false, phases, windowed, &mut phase);
        Ok(phase)
    }

    /// Type of a lookup's value expression, resolved against the target.
    fn lookup_value_type(&self, lr: &LookupJoin) -> Result<Option<DataType>, CoreError> {
        let target_types: HashMap<String, DataType> = if lr.is_self {
            // Self-lookups read this element's *source*.
            self.spec
                .columns
                .iter()
                .filter_map(|c| match &c.expr {
                    ColumnExpr::Source(raw) => self
                        .source_field(raw)
                        .map(|f| (c.name.to_ascii_lowercase(), f.dtype)),
                    _ => None,
                })
                .chain(
                    self.source_fields
                        .iter()
                        .map(|f| (f.name.to_ascii_lowercase(), f.dtype)),
                )
                .collect()
        } else {
            let compiled = self.compiler.compile_element_unchecked(&lr.target)?;
            compiled
                .output
                .iter()
                .map(|(n, t)| (n.to_ascii_lowercase(), *t))
                .collect()
        };
        let env = |r: &ColumnRef| -> Option<DataType> {
            match &r.element {
                Some(el) if el.eq_ignore_ascii_case(&lr.target) => {
                    target_types.get(&r.name.to_ascii_lowercase()).copied()
                }
                _ => None,
            }
        };
        Ok(sigma_expr::infer_type(&lr.value, &env)?)
    }
}

/// Replace Lookup/Rollup calls with pseudo-column refs, registering joins.
fn rewrite_specials(
    f: &mut Formula,
    lookups: &mut Vec<LookupJoin>,
    self_name: &str,
) -> Result<(), CoreError> {
    // Post-order so nested scalar args are rewritten first.
    match f {
        Formula::Unary { expr, .. } => rewrite_specials(expr, lookups, self_name)?,
        Formula::Binary { left, right, .. } => {
            rewrite_specials(left, lookups, self_name)?;
            rewrite_specials(right, lookups, self_name)?;
        }
        Formula::Call { args, .. } => {
            for a in args.iter_mut() {
                rewrite_specials(a, lookups, self_name)?;
            }
        }
        Formula::Literal(_) | Formula::Ref(_) => {}
    }
    let Formula::Call { func, args } = f else {
        return Ok(());
    };
    let Some(def) = sigma_expr::registry(func) else {
        return Ok(());
    };
    if def.kind != FunctionKind::Special {
        return Ok(());
    }
    let is_rollup = func == "Rollup";
    if args.len() < 3 || (args.len() - 1) % 2 != 0 {
        return Err(CoreError::Compile(format!(
            "{func} expects a value expression followed by local/target key pairs"
        )));
    }
    let value = args[0].clone();
    // The target element is named by the qualified refs on the target side.
    let targets = analyze::referenced_elements(&value);
    let mut local_keys = Vec::new();
    let mut target_keys = Vec::new();
    let mut i = 1;
    while i < args.len() {
        local_keys.push(args[i].clone());
        target_keys.push(args[i + 1].clone());
        i += 2;
    }
    let mut all_target_side = targets.clone();
    for tk in &target_keys {
        for t in analyze::referenced_elements(tk) {
            if !all_target_side.iter().any(|x| x.eq_ignore_ascii_case(&t)) {
                all_target_side.push(t);
            }
        }
    }
    if all_target_side.is_empty() {
        return Err(CoreError::Compile(format!(
            "{func}: the value expression must reference the target element with [Element/Column]"
        )));
    }
    if all_target_side.len() > 1 {
        return Err(CoreError::Compile(format!(
            "{func}: references mix multiple target elements: {}",
            all_target_side.join(", ")
        )));
    }
    let target = all_target_side[0].clone();
    for lk in &local_keys {
        if !analyze::referenced_elements(lk).is_empty() {
            return Err(CoreError::Compile(format!(
                "{func}: local keys must reference this element's columns"
            )));
        }
    }
    if is_rollup && !analyze::has_aggregate(&value) {
        return Err(CoreError::Compile(
            "Rollup's first argument must be an aggregate expression".into(),
        ));
    }
    if !is_rollup && analyze::has_aggregate(&value) {
        return Err(CoreError::Compile(
            "Lookup's value must be a row expression (use Rollup to aggregate)".into(),
        ));
    }
    // Lookup is Rollup with the virtual aggregate ATTR (paper §3.2).
    let value = if is_rollup {
        value
    } else {
        Formula::call("ATTR", vec![value])
    };
    let canonical = f.to_string();
    let existing = lookups.iter().find(|l| l.canonical == canonical);
    let pseudo = match existing {
        Some(l) => l.pseudo.clone(),
        None => {
            let idx = lookups.len();
            let lr = LookupJoin {
                alias: format!("lr{idx}"),
                pseudo: format!("$lr{idx}"),
                canonical,
                is_self: target.eq_ignore_ascii_case(self_name),
                target,
                value,
                is_rollup,
                local_keys,
                target_keys,
                dtype: None,
            };
            let pseudo = lr.pseudo.clone();
            lookups.push(lr);
            pseudo
        }
    };
    *f = Formula::Ref(ColumnRef::local(pseudo));
    Ok(())
}

/// Pull inner aggregates (and windows inside aggregate args) out into
/// synthesized columns one level finer, so every formula performs at most
/// one aggregation step in its own stage.
fn decompose(
    f: &mut Formula,
    level: usize,
    owner: &str,
    synth: &mut Vec<ColumnInfo>,
    counter: &mut usize,
) -> Result<(), CoreError> {
    let kind = |name: &str| sigma_expr::registry(name).map(|d| d.kind);
    // Inside an aggregate argument, any aggregate or window subtree gets
    // extracted to a synthesized column at `level - 1`.
    fn extract_in_arg(
        f: &mut Formula,
        level: usize,
        owner: &str,
        synth: &mut Vec<ColumnInfo>,
        counter: &mut usize,
    ) -> Result<(), CoreError> {
        let is_extractable = match f {
            Formula::Call { func, .. } => matches!(
                sigma_expr::registry(func).map(|d| d.kind),
                Some(FunctionKind::Aggregate) | Some(FunctionKind::Window)
            ),
            _ => false,
        };
        if is_extractable {
            if level == 0 {
                return Err(CoreError::Type(format!(
                    "column {owner}: nested aggregation would reside below the base level"
                )));
            }
            let mut inner = f.clone();
            // Recursively decompose the extracted formula at its new level.
            decompose(&mut inner, level, owner, synth, counter)?;
            let name = format!("$n{}", *counter);
            *counter += 1;
            synth.push(ColumnInfo {
                name: name.clone(),
                origin: ColumnOrigin::Formula(inner),
                level,
                phase: 0,
                visible: false,
                dtype: None,
            });
            *f = Formula::Ref(ColumnRef::local(name));
            return Ok(());
        }
        match f {
            Formula::Unary { expr, .. } => extract_in_arg(expr, level, owner, synth, counter),
            Formula::Binary { left, right, .. } => {
                extract_in_arg(left, level, owner, synth, counter)?;
                extract_in_arg(right, level, owner, synth, counter)
            }
            Formula::Call { args, .. } => {
                for a in args.iter_mut() {
                    extract_in_arg(a, level, owner, synth, counter)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    match f {
        Formula::Call { func, args } if kind(func) == Some(FunctionKind::Aggregate) => {
            if level == 0 {
                return Err(CoreError::Type(format!(
                    "column {owner}: aggregates cannot reside at the base level"
                )));
            }
            for a in args.iter_mut() {
                extract_in_arg(a, level - 1, owner, synth, counter)?;
            }
            Ok(())
        }
        Formula::Call { args, .. } => {
            for a in args.iter_mut() {
                decompose(a, level, owner, synth, counter)?;
            }
            Ok(())
        }
        Formula::Unary { expr, .. } => decompose(expr, level, owner, synth, counter),
        Formula::Binary { left, right, .. } => {
            decompose(left, level, owner, synth, counter)?;
            decompose(right, level, owner, synth, counter)
        }
        _ => Ok(()),
    }
}

/// Resolve the combined (primary + links) source schema for a table.
fn resolve_source_fields(
    compiler: &Compiler<'_>,
    spec: &TableSpec,
    self_name: &str,
) -> Result<Vec<Field>, CoreError> {
    let mut fields = source_schema(compiler, &spec.source, self_name)?;
    for link in &spec.links {
        match link {
            crate::table::SourceLink::Join { source, prefix, .. } => {
                let joined = source_schema(compiler, source, self_name)?;
                for f in joined {
                    let name = format!("{prefix}{}", f.name);
                    if fields.iter().any(|x| x.name.eq_ignore_ascii_case(&name)) {
                        return Err(CoreError::Document(format!(
                            "joined column {name} collides; adjust the link prefix"
                        )));
                    }
                    fields.push(Field::new(name, f.dtype));
                }
            }
            crate::table::SourceLink::Union { .. } => {
                // Unions match by name; they add no fields.
            }
        }
    }
    Ok(fields)
}

/// Schema of one data source.
pub(crate) fn source_schema(
    compiler: &Compiler<'_>,
    source: &DataSource,
    self_name: &str,
) -> Result<Vec<Field>, CoreError> {
    match source {
        DataSource::WarehouseTable { table } | DataSource::Csv { table } => {
            let schema: Arc<Schema> = compiler
                .schemas
                .table_schema(table)
                .ok_or_else(|| CoreError::Unresolved(format!("warehouse table {table}")))?;
            Ok(schema.fields().to_vec())
        }
        DataSource::RawSql { sql } => {
            let schema = compiler.schemas.query_schema(sql).ok_or_else(|| {
                CoreError::Compile(
                    "the schema provider cannot derive a schema for this SQL source".into(),
                )
            })?;
            Ok(schema.fields().to_vec())
        }
        DataSource::Element { name } => {
            if name.eq_ignore_ascii_case(self_name) {
                return Err(CoreError::Cycle(format!("{name} sources itself")));
            }
            // Materialization substitution applies to element sources too.
            if let Some(table) = compiler
                .options
                .materializations
                .get(&name.to_ascii_lowercase())
            {
                let schema = compiler.schemas.table_schema(table).ok_or_else(|| {
                    CoreError::Unresolved(format!("materialization table {table}"))
                })?;
                return Ok(schema.fields().to_vec());
            }
            let compiled = compiler.compile_element_unchecked(name)?;
            Ok(compiled
                .output
                .iter()
                .map(|(n, t)| Field::new(n.clone(), *t))
                .collect())
        }
    }
}
