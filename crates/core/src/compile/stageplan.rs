//! The **StagePlan DAG**: the compiler's output decomposed into cacheable
//! stages.
//!
//! Instead of treating a compiled element as one opaque SQL string, the
//! pipeline is exposed as a DAG with one node per CTE stage (`source`,
//! `base_k`, `lvl{n}_k`, `summary_k`, filter wraps, embedded elements) plus
//! a sink node for the final assembly. Each node carries
//!
//! * its own **canonical SQL** (the stage query printed standalone, with
//!   inputs referenced by their stage names),
//! * a **Merkle-style fingerprint**: a 128-bit hash of the stage's
//!   canonical SQL combined with its inputs' fingerprints, so an edit only
//!   perturbs fingerprints of stages downstream of the change, and
//! * the **warehouse tables** the stage reads directly (plus the
//!   transitive closure, for precise cache invalidation).
//!
//! The service uses this structure for stage-level caching (§4): fingerprints
//! key the query directory, and cached stages are re-read via
//! `TABLE(RESULT_SCAN('<query-id>'))` so an edit recomputes only the suffix
//! of the pipeline that actually changed.

use std::collections::HashMap;
use std::fmt;

use sigma_sql::printer::print_query;
use sigma_sql::{Dialect, Query, SetExpr, TableRef};

/// A 128-bit content fingerprint (FNV-1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fingerprint {
    /// Hash raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Fingerprint {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(FNV_PRIME);
        }
        Fingerprint(h)
    }

    /// Extend this fingerprint with more bytes (order-sensitive).
    pub fn extend(self, bytes: &[u8]) -> Fingerprint {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(FNV_PRIME);
        }
        Fingerprint(h)
    }

    /// Lossless 32-hex-digit rendering (stable across runs/processes).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// One cacheable stage of a compiled element.
#[derive(Debug, Clone)]
pub struct StageNode {
    /// CTE name inside the compiled query (`source`, `base_0`, ...); the
    /// sink (final assembly) is named [`StagePlan::SINK`].
    pub name: String,
    /// The stage query standalone: no CTE prologue; inputs are referenced
    /// by their stage names as if they were tables.
    pub query: Query,
    /// Canonical SQL of [`StageNode::query`] — the fingerprint's text input.
    pub sql: String,
    /// Indices (into [`StagePlan::nodes`]) of the stages this one reads.
    /// Always smaller than this node's own index (topological order).
    pub inputs: Vec<usize>,
    /// Warehouse tables this stage reads *directly* (lower-cased, deduped).
    pub tables: Vec<String>,
    /// Warehouse tables read by this stage or any transitive input.
    pub all_tables: Vec<String>,
    /// Merkle fingerprint: hash(sql, inputs' fingerprints).
    pub fingerprint: Fingerprint,
}

/// The compiled element as a DAG of cacheable stages, topologically
/// ordered; the last node is the sink (final assembly, carrying the
/// ORDER BY / LIMIT).
#[derive(Debug, Clone)]
pub struct StagePlan {
    pub nodes: Vec<StageNode>,
}

impl StagePlan {
    /// Name of the sink node (the final assembly select).
    pub const SINK: &'static str = "__sink";

    /// Decompose a compiled query (CTE prologue + final body) into the
    /// stage DAG. CTEs are already emitted in dependency order by the
    /// builder, so each stage only references earlier stages.
    pub fn from_query(query: &Query, dialect: &Dialect) -> StagePlan {
        let mut nodes: Vec<StageNode> = Vec::with_capacity(query.ctes.len() + 1);
        let mut index: HashMap<String, usize> = HashMap::new();
        for (name, cte) in &query.ctes {
            let node = build_node(name.clone(), cte.clone(), dialect, &index, &nodes);
            index.insert(name.to_ascii_lowercase(), nodes.len());
            nodes.push(node);
        }
        let sink_query = Query {
            ctes: Vec::new(),
            body: query.body.clone(),
            order_by: query.order_by.clone(),
            limit: query.limit,
            offset: query.offset,
        };
        let sink = build_node(Self::SINK.to_string(), sink_query, dialect, &index, &nodes);
        nodes.push(sink);
        StagePlan { nodes }
    }

    /// The sink node (always present).
    pub fn sink(&self) -> &StageNode {
        self.nodes.last().expect("plan has a sink")
    }

    /// The element's root fingerprint: the sink's Merkle hash. Two
    /// workbook states compile to the same root iff every stage matches.
    pub fn root_fingerprint(&self) -> Fingerprint {
        self.sink().fingerprint
    }

    /// Look up a node index by stage name.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.name.eq_ignore_ascii_case(name))
    }

    /// Indices of every node that transitively depends on `idx` (excluding
    /// `idx` itself). Used by tests to check fingerprint isolation.
    pub fn downstream_of(&self, idx: usize) -> Vec<usize> {
        let mut tainted = vec![false; self.nodes.len()];
        tainted[idx] = true;
        for (i, node) in self.nodes.iter().enumerate().skip(idx + 1) {
            if node.inputs.iter().any(|&j| tainted[j]) {
                tainted[i] = true;
            }
        }
        (idx + 1..self.nodes.len())
            .filter(|&i| tainted[i])
            .collect()
    }
}

fn build_node(
    name: String,
    query: Query,
    dialect: &Dialect,
    index: &HashMap<String, usize>,
    nodes: &[StageNode],
) -> StageNode {
    let mut inputs: Vec<usize> = Vec::new();
    let mut tables: Vec<String> = Vec::new();
    collect_refs(&query, index, &mut inputs, &mut tables);
    inputs.sort_unstable();
    inputs.dedup();
    tables.sort();
    tables.dedup();
    let mut all_tables = tables.clone();
    for &i in &inputs {
        all_tables.extend(nodes[i].all_tables.iter().cloned());
    }
    all_tables.sort();
    all_tables.dedup();
    let sql = print_query(&query, dialect);
    // Merkle combine: the stage's own canonical text, then each input's
    // (name, fingerprint) pair in reference order. Input names are part of
    // the stage SQL already, but hashing them again keeps the combination
    // unambiguous if SQL text ever collides across naming schemes.
    let mut fp = Fingerprint::of_bytes(sql.as_bytes());
    for &i in &inputs {
        fp = fp.extend(nodes[i].name.as_bytes());
        fp = fp.extend(&nodes[i].fingerprint.0.to_le_bytes());
    }
    StageNode {
        name,
        query,
        sql,
        inputs,
        tables,
        all_tables,
        fingerprint: fp,
    }
}

/// Walk a query for `FROM`/`JOIN` relations, splitting references into
/// earlier stages (CTE names) and warehouse tables.
fn collect_refs(
    query: &Query,
    index: &HashMap<String, usize>,
    inputs: &mut Vec<usize>,
    tables: &mut Vec<String>,
) {
    // Stage queries are emitted with an empty CTE prologue, but walk any
    // nested prologue defensively (raw-SQL sources may carry their own
    // WITH clauses, whose local names shadow nothing here).
    for (_, cte) in &query.ctes {
        collect_refs(cte, index, inputs, tables);
    }
    collect_refs_in_set(&query.body, index, inputs, tables);
}

fn collect_refs_in_set(
    body: &SetExpr,
    index: &HashMap<String, usize>,
    inputs: &mut Vec<usize>,
    tables: &mut Vec<String>,
) {
    match body {
        SetExpr::Select(s) => {
            let mut visit = |t: &TableRef| match t {
                TableRef::Table { name, .. } => {
                    let dotted = name.to_dotted().to_ascii_lowercase();
                    if name.0.len() == 1 {
                        if let Some(&i) = index.get(&dotted) {
                            inputs.push(i);
                            return;
                        }
                    }
                    tables.push(dotted);
                }
                TableRef::Subquery { query, .. } => collect_refs(query, index, inputs, tables),
                TableRef::Function { .. } => {}
            };
            if let Some(from) = &s.from {
                visit(from);
            }
            for j in &s.joins {
                visit(&j.relation);
            }
        }
        SetExpr::UnionAll(l, r) => {
            collect_refs_in_set(l, index, inputs, tables);
            collect_refs_in_set(r, index, inputs, tables);
        }
        SetExpr::Values(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_order_sensitive() {
        let a = Fingerprint::of_bytes(b"SELECT 1");
        let b = Fingerprint::of_bytes(b"SELECT 1");
        assert_eq!(a, b);
        assert_ne!(a, Fingerprint::of_bytes(b"SELECT 2"));
        assert_ne!(a.extend(b"x").extend(b"y"), a.extend(b"y").extend(b"x"));
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn decomposes_ctes_and_tracks_tables() {
        let q = sigma_sql::parse_query(
            "WITH source AS (SELECT a FROM warehouse_t), \
                  base_0 AS (SELECT a FROM source) \
             SELECT a FROM base_0 ORDER BY a",
        )
        .unwrap();
        let plan = StagePlan::from_query(&q, &Dialect::generic());
        assert_eq!(plan.nodes.len(), 3);
        assert_eq!(plan.nodes[0].name, "source");
        assert_eq!(plan.nodes[0].tables, vec!["warehouse_t"]);
        assert!(plan.nodes[0].inputs.is_empty());
        assert_eq!(plan.nodes[1].inputs, vec![0]);
        assert!(plan.nodes[1].tables.is_empty());
        assert_eq!(plan.nodes[1].all_tables, vec!["warehouse_t"]);
        let sink = plan.sink();
        assert_eq!(sink.name, StagePlan::SINK);
        assert_eq!(sink.inputs, vec![1]);
        assert_eq!(sink.all_tables, vec!["warehouse_t"]);
    }

    #[test]
    fn upstream_edit_moves_downstream_fingerprints_only() {
        let before = sigma_sql::parse_query(
            "WITH source AS (SELECT a FROM t), \
                  base_0 AS (SELECT a FROM source WHERE a > 1) \
             SELECT a FROM base_0",
        )
        .unwrap();
        let after = sigma_sql::parse_query(
            "WITH source AS (SELECT a FROM t), \
                  base_0 AS (SELECT a FROM source WHERE a > 2) \
             SELECT a FROM base_0",
        )
        .unwrap();
        let p1 = StagePlan::from_query(&before, &Dialect::generic());
        let p2 = StagePlan::from_query(&after, &Dialect::generic());
        // source untouched; base_0 and the sink move.
        assert_eq!(p1.nodes[0].fingerprint, p2.nodes[0].fingerprint);
        assert_ne!(p1.nodes[1].fingerprint, p2.nodes[1].fingerprint);
        assert_ne!(p1.root_fingerprint(), p2.root_fingerprint());
        assert_eq!(p1.downstream_of(1), vec![2]);
    }
}
