//! Error type for the workbook model and compiler.

use std::fmt;

/// Errors from document manipulation or compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A formula failed to parse.
    Formula(String),
    /// A formula failed type checking.
    Type(String),
    /// Document-structure validation failed (bad levels, duplicate names…).
    Document(String),
    /// Reference to a missing element/column/control.
    Unresolved(String),
    /// Cyclic dependency between elements or columns.
    Cycle(String),
    /// Compilation cannot express the requested construct.
    Compile(String),
    /// Serialization problems.
    Serde(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Formula(m) => write!(f, "formula error: {m}"),
            CoreError::Type(m) => write!(f, "type error: {m}"),
            CoreError::Document(m) => write!(f, "document error: {m}"),
            CoreError::Unresolved(m) => write!(f, "unresolved reference: {m}"),
            CoreError::Cycle(m) => write!(f, "cycle: {m}"),
            CoreError::Compile(m) => write!(f, "compile error: {m}"),
            CoreError::Serde(m) => write!(f, "serialization error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<sigma_expr::ParseError> for CoreError {
    fn from(e: sigma_expr::ParseError) -> Self {
        CoreError::Formula(e.to_string())
    }
}

impl From<sigma_expr::TypeError> for CoreError {
    fn from(e: sigma_expr::TypeError) -> Self {
        CoreError::Type(e.to_string())
    }
}
