//! The query input graph: which elements feed which (paper §2: the service
//! performs "query input graph resolution" before compiling). Edges come
//! from `DataSource::Element` sources and from `Lookup`/`Rollup` targets in
//! formulas. Cycles are compile errors (self-Lookups are allowed — they
//! read the element's *source*, not its output).

use std::collections::{HashMap, HashSet};

use crate::document::{ElementKind, Workbook};
use crate::error::CoreError;
use crate::table::{ColumnExpr, DataSource, SourceLink};

/// Direct dependencies of one element (element names, deduplicated,
/// excluding self-references).
pub fn element_dependencies(wb: &Workbook, name: &str) -> Result<Vec<String>, CoreError> {
    let element = wb
        .element(name)
        .ok_or_else(|| CoreError::Unresolved(format!("element {name}")))?;
    let mut deps: Vec<String> = Vec::new();
    let mut push = |dep: &str| {
        if !dep.eq_ignore_ascii_case(name) && !deps.iter().any(|d| d.eq_ignore_ascii_case(dep)) {
            deps.push(dep.to_string());
        }
    };
    let mut sources: Vec<&DataSource> = Vec::new();
    match &element.kind {
        ElementKind::Table(t) => {
            sources.push(&t.source);
            for link in &t.links {
                match link {
                    SourceLink::Join { source, .. } | SourceLink::Union { source } => {
                        sources.push(source)
                    }
                }
            }
            for col in &t.columns {
                if let ColumnExpr::Formula(text) = &col.expr {
                    let parsed = sigma_expr::parse_formula(text)?;
                    for el in sigma_expr::analyze::referenced_elements(&parsed) {
                        push(&el);
                    }
                }
            }
        }
        ElementKind::Viz(v) => sources.push(&v.source),
        ElementKind::Pivot(p) => sources.push(&p.source),
        ElementKind::Input(_)
        | ElementKind::Text { .. }
        | ElementKind::Image { .. }
        | ElementKind::Spacer
        | ElementKind::Control(_) => {}
    }
    for s in sources {
        if let DataSource::Element { name: dep } = s {
            push(dep);
        }
    }
    Ok(deps)
}

/// Topological order over the data elements reachable from `roots`
/// (dependencies first). Errors on cycles and on references to missing or
/// non-data elements.
pub fn resolve_order(wb: &Workbook, roots: &[&str]) -> Result<Vec<String>, CoreError> {
    let mut order: Vec<String> = Vec::new();
    let mut state: HashMap<String, u8> = HashMap::new(); // 1 = visiting, 2 = done

    fn visit(
        wb: &Workbook,
        name: &str,
        state: &mut HashMap<String, u8>,
        order: &mut Vec<String>,
        stack: &mut Vec<String>,
    ) -> Result<(), CoreError> {
        let key = name.to_ascii_lowercase();
        match state.get(&key) {
            Some(2) => return Ok(()),
            Some(1) => {
                let cycle = stack.join(" -> ");
                return Err(CoreError::Cycle(format!("{cycle} -> {name}")));
            }
            _ => {}
        }
        let element = wb
            .element(name)
            .ok_or_else(|| CoreError::Unresolved(format!("element {name}")))?;
        if !element.kind.is_data() {
            return Err(CoreError::Document(format!(
                "{name} is not a data element and cannot be a source"
            )));
        }
        state.insert(key.clone(), 1);
        stack.push(element.name.clone());
        for dep in element_dependencies(wb, name)? {
            visit(wb, &dep, state, order, stack)?;
        }
        stack.pop();
        state.insert(key, 2);
        order.push(element.name.clone());
        Ok(())
    }

    let mut stack = Vec::new();
    for root in roots {
        visit(wb, root, &mut state, &mut order, &mut stack)?;
    }
    Ok(order)
}

/// Every element that (transitively) consumes `name` — used to know which
/// queries to re-run when an editable table changes (paper §3.4: "these
/// edits propagate to downstream queries automatically").
pub fn downstream_of(wb: &Workbook, name: &str) -> Result<Vec<String>, CoreError> {
    let mut consumers: Vec<String> = Vec::new();
    let mut frontier: HashSet<String> = HashSet::new();
    frontier.insert(name.to_ascii_lowercase());
    loop {
        let mut grew = false;
        for el in wb.elements().filter(|e| e.kind.is_data()) {
            let key = el.name.to_ascii_lowercase();
            if frontier.contains(&key) {
                continue;
            }
            let deps = element_dependencies(wb, &el.name)?;
            if deps
                .iter()
                .any(|d| frontier.contains(&d.to_ascii_lowercase()))
            {
                frontier.insert(key);
                consumers.push(el.name.clone());
                grew = true;
            }
        }
        if !grew {
            return Ok(consumers);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{ElementKind, Workbook};
    use crate::table::{ColumnDef, DataSource, TableSpec};

    fn wb() -> Workbook {
        let mut wb = Workbook::new(Some("g"));
        let mut flights = TableSpec::new(DataSource::WarehouseTable {
            table: "flights".into(),
        });
        flights
            .add_column(ColumnDef::source("Origin", "origin"))
            .unwrap();
        wb.add_element(0, "Flights", ElementKind::Table(flights))
            .unwrap();

        let mut derived = TableSpec::new(DataSource::Element {
            name: "Flights".into(),
        });
        derived
            .add_column(ColumnDef::source("Origin", "Origin"))
            .unwrap();
        wb.add_element(0, "Derived", ElementKind::Table(derived))
            .unwrap();
        wb
    }

    #[test]
    fn order_dependencies_first() {
        let wb = wb();
        let order = resolve_order(&wb, &["Derived"]).unwrap();
        assert_eq!(order, vec!["Flights".to_string(), "Derived".to_string()]);
    }

    #[test]
    fn lookup_edges_counted() {
        let mut wb = wb();
        let t = wb.table_mut("Derived").unwrap();
        t.add_column(ColumnDef::formula(
            "Name",
            "Lookup([Airports/name], [Origin], [Airports/code])",
            0,
        ))
        .unwrap();
        // Airports doesn't exist yet -> unresolved.
        assert!(resolve_order(&wb, &["Derived"]).is_err());
        let mut airports = TableSpec::new(DataSource::WarehouseTable {
            table: "airports".into(),
        });
        airports
            .add_column(ColumnDef::source("code", "code"))
            .unwrap();
        wb.add_element(0, "Airports", ElementKind::Table(airports))
            .unwrap();
        let order = resolve_order(&wb, &["Derived"]).unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(order.last().unwrap(), "Derived");
    }

    #[test]
    fn cycle_detected() {
        let mut wb = wb();
        // Make Flights source from Derived: cycle.
        wb.table_mut("Flights").unwrap().source = DataSource::Element {
            name: "Derived".into(),
        };
        let err = resolve_order(&wb, &["Derived"]).unwrap_err();
        assert!(matches!(err, CoreError::Cycle(_)), "{err:?}");
    }

    #[test]
    fn self_lookup_is_not_a_cycle() {
        let mut wb = wb();
        let t = wb.table_mut("Flights").unwrap();
        t.add_column(ColumnDef::formula(
            "First",
            "Rollup(Min([Flights/Origin]), [Origin], [Flights/Origin])",
            0,
        ))
        .unwrap();
        resolve_order(&wb, &["Flights"]).unwrap();
    }

    #[test]
    fn downstream_propagation_set() {
        let wb = wb();
        let down = downstream_of(&wb, "Flights").unwrap();
        assert_eq!(down, vec!["Derived".to_string()]);
        assert!(downstream_of(&wb, "Derived").unwrap().is_empty());
    }
}
