//! The workbook document: pages of elements on a canvas (paper §3),
//! JSON-serializable ("sent to the Sigma service as a JSON-encoding of the
//! Workbook state", §2), with layout, presentation elements, and URL
//! parameter binding.

use serde::{Deserialize, Serialize};

use crate::controls::ControlSpec;
use crate::editable::InputTableSpec;
use crate::error::CoreError;
use crate::pivot::PivotSpec;
use crate::table::TableSpec;
use crate::viz::VizSpec;

/// Stable element identifier within a workbook.
pub type ElementId = u64;

/// The three element categories of §3: data elements, UI elements, and
/// interactive controls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ElementKind {
    // data elements
    Table(TableSpec),
    Viz(VizSpec),
    Pivot(PivotSpec),
    Input(InputTableSpec),
    // UI elements
    /// Text with embedded formulas: `{=  ...}` spans render inline (§3.5).
    Text {
        template: String,
    },
    Image {
        url: String,
    },
    Spacer,
    // interactive controls
    Control(ControlSpec),
}

impl ElementKind {
    /// Data elements can be referenced as sources and in Lookup/Rollup.
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            ElementKind::Table(_)
                | ElementKind::Viz(_)
                | ElementKind::Pivot(_)
                | ElementKind::Input(_)
        )
    }
}

/// One element placed on the canvas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Element {
    pub id: ElementId,
    /// Unique (case-insensitive) across the workbook; qualified formula
    /// references use it: `[Flights/Tail Number]`.
    pub name: String,
    pub kind: ElementKind,
}

/// A page partitions the canvas (§3: "Users can partition the canvas into
/// pages to organize their analysis"). Elements lay out as a sequence of
/// sections; we keep the order, which is all the model needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Page {
    pub name: String,
    pub elements: Vec<Element>,
}

/// A workbook document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workbook {
    /// `None` marks an unnamed, persistent anonymous "exploration" (§2).
    pub name: Option<String>,
    pub pages: Vec<Page>,
    next_id: ElementId,
}

impl Workbook {
    pub fn new(name: Option<&str>) -> Workbook {
        Workbook {
            name: name.map(str::to_owned),
            pages: vec![Page {
                name: "Page 1".into(),
                elements: Vec::new(),
            }],
            next_id: 1,
        }
    }

    /// An anonymous exploration, discardable by the document store.
    pub fn exploration() -> Workbook {
        Workbook::new(None)
    }

    pub fn is_exploration(&self) -> bool {
        self.name.is_none()
    }

    pub fn add_page(&mut self, name: impl Into<String>) -> usize {
        self.pages.push(Page {
            name: name.into(),
            elements: Vec::new(),
        });
        self.pages.len() - 1
    }

    /// Add an element to a page, enforcing workbook-wide name uniqueness
    /// for data elements and controls (anything referenceable).
    pub fn add_element(
        &mut self,
        page: usize,
        name: impl Into<String>,
        kind: ElementKind,
    ) -> Result<ElementId, CoreError> {
        let name = name.into();
        if name.trim().is_empty() {
            return Err(CoreError::Document("element names cannot be empty".into()));
        }
        if name.contains('/') {
            return Err(CoreError::Document(
                "element names cannot contain '/' (reserved for qualified references)".into(),
            ));
        }
        if self.element(&name).is_some() {
            return Err(CoreError::Document(format!(
                "duplicate element name: {name}"
            )));
        }
        let Some(page) = self.pages.get_mut(page) else {
            return Err(CoreError::Document("no such page".into()));
        };
        let id = self.next_id;
        self.next_id += 1;
        page.elements.push(Element { id, name, kind });
        Ok(id)
    }

    /// Look up an element by name (case-insensitive), across pages.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.pages
            .iter()
            .flat_map(|p| &p.elements)
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    pub fn element_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.pages
            .iter_mut()
            .flat_map(|p| &mut p.elements)
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    pub fn element_by_id(&self, id: ElementId) -> Option<&Element> {
        self.pages
            .iter()
            .flat_map(|p| &p.elements)
            .find(|e| e.id == id)
    }

    /// All elements in page order.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.pages.iter().flat_map(|p| &p.elements)
    }

    /// Convenience accessors for typed specs.
    pub fn table(&self, name: &str) -> Option<&TableSpec> {
        match &self.element(name)?.kind {
            ElementKind::Table(t) => Some(t),
            _ => None,
        }
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut TableSpec> {
        match &mut self.element_mut(name)?.kind {
            ElementKind::Table(t) => Some(t),
            _ => None,
        }
    }

    pub fn control(&self, name: &str) -> Option<&ControlSpec> {
        match &self.element(name)?.kind {
            ElementKind::Control(c) => Some(c),
            _ => None,
        }
    }

    pub fn input_table_mut(&mut self, name: &str) -> Option<&mut InputTableSpec> {
        match &mut self.element_mut(name)?.kind {
            ElementKind::Input(t) => Some(t),
            _ => None,
        }
    }

    /// Serialize to the JSON document interchanged with the service.
    pub fn to_json(&self) -> Result<String, CoreError> {
        serde_json::to_string_pretty(self).map_err(|e| CoreError::Serde(e.to_string()))
    }

    pub fn from_json(json: &str) -> Result<Workbook, CoreError> {
        serde_json::from_str(json).map_err(|e| CoreError::Serde(e.to_string()))
    }

    /// Apply `?name=value&...` URL parameters to controls (§3.5: "controls
    /// … can be set by parameters to the Workbook document URL").
    pub fn apply_url_params(&mut self, query_string: &str) -> Result<usize, CoreError> {
        let mut applied = 0;
        for pair in query_string.trim_start_matches('?').split('&') {
            if pair.is_empty() {
                continue;
            }
            let (raw_name, raw_value) = pair
                .split_once('=')
                .ok_or_else(|| CoreError::Document(format!("malformed parameter {pair:?}")))?;
            let name = url_decode(raw_name);
            let value = url_decode(raw_value);
            let Some(element) = self.element_mut(&name) else {
                continue; // unknown params are ignored, like the product
            };
            if let ElementKind::Control(control) = &mut element.kind {
                let parsed = control.parse_url_value(&value)?;
                control.set_value(parsed)?;
                applied += 1;
            }
        }
        Ok(applied)
    }
}

/// Minimal percent-decoding for URL parameters.
fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 3 <= bytes.len() => {
                if let Ok(b) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                    out.push(b);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::DataSource;
    use sigma_value::Value;

    fn wb() -> Workbook {
        let mut wb = Workbook::new(Some("demo"));
        wb.add_element(
            0,
            "Flights",
            ElementKind::Table(TableSpec::new(DataSource::WarehouseTable {
                table: "flights".into(),
            })),
        )
        .unwrap();
        wb.add_element(
            0,
            "Min Delay",
            ElementKind::Control(ControlSpec::slider(0.0, 120.0, 5.0, 15.0)),
        )
        .unwrap();
        wb
    }

    #[test]
    fn names_unique_case_insensitive() {
        let mut wb = wb();
        assert!(wb.add_element(0, "flights", ElementKind::Spacer).is_err());
        assert!(wb.add_element(0, "A/B", ElementKind::Spacer).is_err());
        assert!(wb.add_element(0, "  ", ElementKind::Spacer).is_err());
    }

    #[test]
    fn json_round_trip() {
        let wb = wb();
        let json = wb.to_json().unwrap();
        let back = Workbook::from_json(&json).unwrap();
        assert_eq!(wb, back);
        // The JSON mentions the element names (human-auditable payload).
        assert!(json.contains("Flights"));
    }

    #[test]
    fn url_params_set_controls() {
        let mut wb = wb();
        let n = wb.apply_url_params("?Min%20Delay=30&unknown=1").unwrap();
        assert_eq!(n, 1);
        assert_eq!(wb.control("Min Delay").unwrap().value, Value::Float(30.0));
        // Out-of-range slider value errors.
        assert!(wb.apply_url_params("Min+Delay=999").is_err());
    }

    #[test]
    fn pages_and_lookup() {
        let mut wb = wb();
        let p2 = wb.add_page("Analysis");
        wb.add_element(
            p2,
            "Notes",
            ElementKind::Text {
                template: "hello".into(),
            },
        )
        .unwrap();
        assert!(wb.element("notes").is_some());
        assert_eq!(wb.elements().count(), 3);
        let id = wb.element("Flights").unwrap().id;
        assert_eq!(wb.element_by_id(id).unwrap().name, "Flights");
    }

    #[test]
    fn exploration_flag() {
        assert!(Workbook::exploration().is_exploration());
        assert!(!wb().is_exploration());
    }
}
