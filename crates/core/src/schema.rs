//! Schema access and compiled-query types shared with the service/browser.

use std::sync::Arc;

use sigma_value::{DataType, Schema};

/// Supplies warehouse schemas to the compiler. The service implements this
/// against the customer's CDW; tests implement it in memory.
pub trait SchemaProvider {
    /// Schema of a warehouse table, if it exists.
    fn table_schema(&self, table: &str) -> Option<Arc<Schema>>;

    /// Output schema of a raw SQL query (used for `DataSource::RawSql`).
    /// The default declines, which surfaces a compile error for raw-SQL
    /// sources — providers backed by a live warehouse plan the query.
    fn query_schema(&self, _sql: &str) -> Option<Arc<Schema>> {
        None
    }
}

/// In-memory provider for tests and examples.
#[derive(Default)]
pub struct StaticSchemas {
    pub tables: std::collections::HashMap<String, Arc<Schema>>,
}

impl StaticSchemas {
    pub fn with(mut self, name: &str, schema: Schema) -> Self {
        self.tables
            .insert(name.to_ascii_lowercase(), Arc::new(schema));
        self
    }
}

impl SchemaProvider for StaticSchemas {
    fn table_schema(&self, table: &str) -> Option<Arc<Schema>> {
        self.tables.get(&table.to_ascii_lowercase()).cloned()
    }
}

/// The compiler's output for one element.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The SQL query as an AST (dialect-independent).
    pub query: sigma_sql::Query,
    /// Rendered SQL in the requested dialect.
    pub sql: String,
    /// The same query decomposed into the cacheable stage DAG: one node
    /// per CTE stage plus the final-assembly sink, each with a Merkle
    /// fingerprint and its warehouse table dependencies.
    pub stages: crate::compile::stageplan::StagePlan,
    /// Visible output columns at the detail level, in display order.
    pub output: Vec<(String, DataType)>,
    /// Which grouping level the rows materialize at.
    pub detail_level: usize,
}
