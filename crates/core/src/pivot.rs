//! Pivot table elements (paper §3.3). A pivot groups by row dimensions,
//! spreads a column dimension across the header, and aggregates values in
//! the cells. Compilation is two-phase: discover the distinct pivot-column
//! values (capped), then emit one conditional aggregate per value.

use serde::{Deserialize, Serialize};
use sigma_value::Value;

use crate::error::CoreError;
use crate::table::{DataSource, FilterSpec};

/// Cap on discovered pivot header values, mirroring product guardrails.
pub const MAX_PIVOT_VALUES: usize = 50;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PivotSpec {
    pub source: DataSource,
    /// Row dimension formulas (name, formula).
    pub rows: Vec<(String, String)>,
    /// The column dimension spread across the header.
    pub column: (String, String),
    /// Cell measures: (name, aggregate formula).
    pub values: Vec<(String, String)>,
    pub filters: Vec<FilterSpec>,
}

impl PivotSpec {
    pub fn new(
        source: DataSource,
        rows: Vec<(String, String)>,
        column: (String, String),
        values: Vec<(String, String)>,
    ) -> PivotSpec {
        PivotSpec {
            source,
            rows,
            column,
            values,
            filters: Vec::new(),
        }
    }

    /// Validate the formulas parse and that measures aggregate.
    pub fn validate(&self) -> Result<(), CoreError> {
        for (name, f) in self.rows.iter().chain([&self.column]) {
            let parsed = sigma_expr::parse_formula(f)?;
            if sigma_expr::analyze::has_aggregate(&parsed) {
                return Err(CoreError::Document(format!(
                    "pivot dimension {name} cannot aggregate"
                )));
            }
        }
        for (name, f) in &self.values {
            let parsed = sigma_expr::parse_formula(f)?;
            if !sigma_expr::analyze::has_aggregate(&parsed) {
                return Err(CoreError::Document(format!(
                    "pivot value {name} must be an aggregate"
                )));
            }
        }
        Ok(())
    }

    /// Phase 1: the formula whose distinct values become header columns.
    pub fn discovery_formula(&self) -> &str {
        &self.column.1
    }

    /// Phase 2: given discovered header values, the per-cell measure
    /// formulas — each value becomes `<agg>If`-style conditional aggregates
    /// in the expression language, so the ordinary table compiler handles
    /// the rest.
    pub fn pivoted_value_formulas(
        &self,
        header_values: &[Value],
    ) -> Result<Vec<(String, String)>, CoreError> {
        if header_values.len() > MAX_PIVOT_VALUES {
            return Err(CoreError::Compile(format!(
                "pivot spreads {} values; the maximum is {MAX_PIVOT_VALUES}",
                header_values.len()
            )));
        }
        let mut out = Vec::new();
        for hv in header_values {
            let literal = value_literal(hv);
            for (vname, vformula) in &self.values {
                let parsed = sigma_expr::parse_formula(vformula)?;
                let guarded = guard_aggregates(&parsed, &self.column.1, &literal)?;
                let col_name = format!("{} ({})", vname, hv.render());
                out.push((col_name, guarded.to_string()));
            }
        }
        Ok(out)
    }
}

/// Render a value as a formula literal.
fn value_literal(v: &Value) -> String {
    match v {
        Value::Null => "Null".to_string(),
        Value::Bool(true) => "True".to_string(),
        Value::Bool(false) => "False".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Text(s) => format!("\"{}\"", s.replace('"', "\"\"")),
        Value::Date(_) => format!("Date(\"{}\")", v.render()),
        Value::Timestamp(_) => format!("DateTime(\"{}\")", v.render()),
    }
}

/// Rewrite each aggregate call `Agg(e...)` into its conditional form
/// filtered to one header value: `SumIf(cond, e)`, `CountIf(cond)`, etc.
fn guard_aggregates(
    f: &sigma_expr::Formula,
    column_formula: &str,
    literal: &str,
) -> Result<sigma_expr::Formula, CoreError> {
    use sigma_expr::{Formula, FunctionKind};
    let cond_text = if literal == "Null" {
        format!("IsNull({column_formula})")
    } else {
        format!("({column_formula}) = {literal}")
    };
    let cond = sigma_expr::parse_formula(&cond_text)?;
    fn rewrite(
        f: &sigma_expr::Formula,
        cond: &sigma_expr::Formula,
    ) -> Result<sigma_expr::Formula, CoreError> {
        Ok(match f {
            Formula::Call { func, args } => {
                let kind = sigma_expr::registry(func).map(|d| d.kind);
                if kind == Some(FunctionKind::Aggregate) {
                    match func.as_str() {
                        "Sum" | "Avg" | "Min" | "Max" => Formula::Call {
                            func: format!("{func}If"),
                            args: vec![cond.clone(), args[0].clone()],
                        },
                        "Count" => Formula::Call {
                            func: "CountIf".into(),
                            args: vec![cond.clone()],
                        },
                        "CountIf" | "SumIf" | "AvgIf" | "MinIf" | "MaxIf" => {
                            // Already conditional: conjoin.
                            let mut args = args.clone();
                            args[0] = sigma_expr::Formula::binary(
                                sigma_expr::BinaryOp::And,
                                args[0].clone(),
                                cond.clone(),
                            );
                            Formula::Call {
                                func: func.clone(),
                                args,
                            }
                        }
                        other => {
                            return Err(CoreError::Compile(format!(
                            "pivot cannot condition aggregate {other}; use Sum/Avg/Min/Max/Count"
                        )))
                        }
                    }
                } else {
                    Formula::Call {
                        func: func.clone(),
                        args: args
                            .iter()
                            .map(|a| rewrite(a, cond))
                            .collect::<Result<_, _>>()?,
                    }
                }
            }
            Formula::Binary { op, left, right } => Formula::Binary {
                op: *op,
                left: Box::new(rewrite(left, cond)?),
                right: Box::new(rewrite(right, cond)?),
            },
            Formula::Unary { op, expr } => Formula::Unary {
                op: *op,
                expr: Box::new(rewrite(expr, cond)?),
            },
            leaf => leaf.clone(),
        })
    }
    rewrite(f, &cond)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pivot() -> PivotSpec {
        PivotSpec::new(
            DataSource::WarehouseTable {
                table: "flights".into(),
            },
            vec![("Carrier".into(), "[carrier]".into())],
            ("Year".into(), "Year([flight_date])".into()),
            vec![("Flights".into(), "Count()".into())],
        )
    }

    #[test]
    fn validation() {
        pivot().validate().unwrap();
        let mut bad = pivot();
        bad.values[0].1 = "[carrier]".into();
        assert!(bad.validate().is_err());
        let mut bad2 = pivot();
        bad2.rows[0].1 = "Sum([x])".into();
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn pivoted_formulas() {
        let p = pivot();
        let cols = p
            .pivoted_value_formulas(&[Value::Int(2019), Value::Int(2020)])
            .unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].0, "Flights (2019)");
        assert_eq!(cols[0].1, "CountIf(Year(flight_date) = 2019)");
    }

    #[test]
    fn sum_becomes_sumif_and_null_header() {
        let p = PivotSpec::new(
            DataSource::WarehouseTable { table: "t".into() },
            vec![],
            ("k".into(), "[k]".into()),
            vec![("Total".into(), "Sum([x]) / Count()".into())],
        );
        let cols = p.pivoted_value_formulas(&[Value::Null]).unwrap();
        assert_eq!(cols[0].1, "SumIf(IsNull(k), x) / CountIf(IsNull(k))");
    }

    #[test]
    fn value_cap() {
        let p = pivot();
        let many: Vec<Value> = (0..51).map(Value::Int).collect();
        assert!(p.pivoted_value_formulas(&many).is_err());
    }
}
