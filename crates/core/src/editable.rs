//! Editable input tables (paper §3.4): free-form user tables whose values
//! are projected into the warehouse, letting users augment shared data and
//! run what-if scenarios. Edits propagate to the warehouse (the service
//! turns the dirty-row journal into DML).

use serde::{Deserialize, Serialize};
use sigma_value::{Batch, ColumnBuilder, DataType, Field, Schema, Value};
use std::sync::Arc;

use crate::error::CoreError;

/// One pending edit, journaled for warehouse propagation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Edit {
    SetCell {
        row: u64,
        column: String,
        value: Value,
    },
    InsertRow {
        row_id: u64,
    },
    DeleteRow {
        row_id: u64,
    },
}

/// An editable table: a schema, rows addressed by stable row ids, and a
/// journal of edits not yet propagated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputTableSpec {
    pub columns: Vec<(String, DataType)>,
    /// (row id, values) — ids are stable across edits so the journal can
    /// target warehouse rows.
    pub rows: Vec<(u64, Vec<Value>)>,
    next_row_id: u64,
    /// Warehouse table backing this element once projected.
    pub warehouse_table: Option<String>,
    /// Edits made since the last propagation.
    pub journal: Vec<Edit>,
}

impl InputTableSpec {
    pub fn new(columns: Vec<(String, DataType)>) -> InputTableSpec {
        InputTableSpec {
            columns,
            rows: Vec::new(),
            next_row_id: 1,
            warehouse_table: None,
            journal: Vec::new(),
        }
    }

    /// Build from pasted CSV-ish rows (used by Scenario 3's copy-paste).
    pub fn from_batch(batch: &Batch) -> InputTableSpec {
        let columns = batch
            .schema()
            .fields()
            .iter()
            .map(|f| (f.name.clone(), f.dtype))
            .collect();
        let mut t = InputTableSpec::new(columns);
        for r in 0..batch.num_rows() {
            t.insert_row(batch.row(r)).expect("schema-shaped row");
        }
        t.journal.clear(); // initial load is not an edit
        t
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(name))
    }

    /// Append a row; returns its stable id.
    pub fn insert_row(&mut self, values: Vec<Value>) -> Result<u64, CoreError> {
        if values.len() != self.columns.len() {
            return Err(CoreError::Document(format!(
                "row has {} values, table has {} columns",
                values.len(),
                self.columns.len()
            )));
        }
        let id = self.next_row_id;
        self.next_row_id += 1;
        self.rows.push((id, values));
        self.journal.push(Edit::InsertRow { row_id: id });
        Ok(id)
    }

    /// Edit one cell ("e.g., by editing in values or copy-and-pasting from
    /// a spreadsheet" — §3.4).
    pub fn set_cell(&mut self, row_id: u64, column: &str, value: Value) -> Result<(), CoreError> {
        let col = self
            .column_index(column)
            .ok_or_else(|| CoreError::Unresolved(format!("column {column}")))?;
        let row = self
            .rows
            .iter_mut()
            .find(|(id, _)| *id == row_id)
            .ok_or_else(|| CoreError::Unresolved(format!("row {row_id}")))?;
        row.1[col] = value.clone();
        self.journal.push(Edit::SetCell {
            row: row_id,
            column: self.columns[col].0.clone(),
            value,
        });
        Ok(())
    }

    pub fn delete_row(&mut self, row_id: u64) -> Result<(), CoreError> {
        let pos = self
            .rows
            .iter()
            .position(|(id, _)| *id == row_id)
            .ok_or_else(|| CoreError::Unresolved(format!("row {row_id}")))?;
        self.rows.remove(pos);
        self.journal.push(Edit::DeleteRow { row_id });
        Ok(())
    }

    /// Materialize current contents as a batch, with a leading `_row_id`
    /// column (the warehouse projection's key).
    pub fn to_batch(&self) -> Result<Batch, CoreError> {
        let mut fields = vec![Field::new("_row_id", DataType::Int)];
        for (n, t) in &self.columns {
            fields.push(Field::new(n.clone(), *t));
        }
        let schema = Arc::new(Schema::new(fields));
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, self.rows.len()))
            .collect();
        for (id, values) in &self.rows {
            builders[0]
                .push(Value::Int(*id as i64))
                .map_err(|e| CoreError::Document(e.to_string()))?;
            for (i, v) in values.iter().enumerate() {
                // Dirty cells degrade to NULL rather than failing the whole
                // projection — the paper's Scenario 3 pastes dirty data and
                // fixes it by direct editing afterwards.
                let coerced = sigma_value::column::cast_value(v.clone(), self.columns[i].1)
                    .unwrap_or(Value::Null);
                builders[i + 1]
                    .push(coerced)
                    .map_err(|e| CoreError::Document(e.to_string()))?;
            }
        }
        Batch::new(schema, builders.into_iter().map(|b| b.finish()).collect())
            .map_err(|e| CoreError::Document(e.to_string()))
    }

    /// Drain the journal (called by the service after propagating edits).
    pub fn take_journal(&mut self) -> Vec<Edit> {
        std::mem::take(&mut self.journal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> InputTableSpec {
        InputTableSpec::new(vec![
            ("Code".into(), DataType::Text),
            ("City".into(), DataType::Text),
            ("Elevation".into(), DataType::Int),
        ])
    }

    #[test]
    fn insert_edit_delete_journal() {
        let mut t = t();
        let r1 = t
            .insert_row(vec!["ORD".into(), "Chicago".into(), Value::Int(672)])
            .unwrap();
        let r2 = t
            .insert_row(vec!["SFO".into(), "SF".into(), Value::Int(13)])
            .unwrap();
        t.set_cell(r2, "City", "San Francisco".into()).unwrap();
        t.delete_row(r1).unwrap();
        assert_eq!(t.rows.len(), 1);
        let journal = t.take_journal();
        assert_eq!(journal.len(), 4);
        assert!(t.take_journal().is_empty());
        assert!(matches!(journal[2], Edit::SetCell { .. }));
    }

    #[test]
    fn dirty_values_nulled_in_projection() {
        let mut t = t();
        t.insert_row(vec![
            "ORD".into(),
            "Chicago".into(),
            Value::Text("not a number".into()),
        ])
        .unwrap();
        let b = t.to_batch().unwrap();
        assert_eq!(b.num_columns(), 4); // _row_id + 3
        assert!(b.column_by_name("Elevation").unwrap().is_null(0));
        assert_eq!(b.column_by_name("_row_id").unwrap().value(0), Value::Int(1));
    }

    #[test]
    fn row_ids_stable_after_delete() {
        let mut t = t();
        let _r1 = t
            .insert_row(vec!["A".into(), "a".into(), Value::Int(1)])
            .unwrap();
        let r2 = t
            .insert_row(vec!["B".into(), "b".into(), Value::Int(2)])
            .unwrap();
        t.delete_row(r2).unwrap();
        let r3 = t
            .insert_row(vec!["C".into(), "c".into(), Value::Int(3)])
            .unwrap();
        assert_eq!(r3, 3); // ids never reused
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut t = t();
        assert!(t.insert_row(vec!["X".into()]).is_err());
        assert!(t.set_cell(99, "Code", "Y".into()).is_err());
    }
}
