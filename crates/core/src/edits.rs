//! Edit operations over workbook documents: the "easy refactoring"
//! affordance (§1) — renames rewrite every dependent formula — plus an
//! undo/redo history of document snapshots (the browser result cache makes
//! undo cheap to re-display, §4).

use sigma_expr::{analyze, parse_formula};

use crate::document::{ElementKind, Workbook};
use crate::error::CoreError;
use crate::table::ColumnExpr;

/// Rename a column of a table element, rewriting every formula in the
/// workbook that references it (same element: local refs; other elements:
/// qualified refs). Returns how many formulas changed.
pub fn rename_column(
    wb: &mut Workbook,
    element: &str,
    old: &str,
    new: &str,
) -> Result<usize, CoreError> {
    let el_name = wb
        .element(element)
        .ok_or_else(|| CoreError::Unresolved(format!("element {element}")))?
        .name
        .clone();
    {
        let table = wb
            .table_mut(&el_name)
            .ok_or_else(|| CoreError::Document(format!("{element} is not a table")))?;
        if table.column(old).is_none() {
            return Err(CoreError::Unresolved(format!("column {old}")));
        }
        if table.column(new).is_some() && !old.eq_ignore_ascii_case(new) {
            return Err(CoreError::Document(format!("column {new} already exists")));
        }
    }
    let mut rewritten = 0;

    // Pass 1: the owning table — rename the column, its key/order/filter
    // references, and local formula refs.
    {
        let table = wb.table_mut(&el_name).expect("checked above");
        for level in &mut table.levels {
            for k in &mut level.keys {
                if k.eq_ignore_ascii_case(old) {
                    *k = new.to_string();
                }
            }
            for o in &mut level.ordering {
                if o.column.eq_ignore_ascii_case(old) {
                    o.column = new.to_string();
                }
            }
        }
        for f in &mut table.filters {
            if f.column.eq_ignore_ascii_case(old) {
                f.column = new.to_string();
            }
        }
        for col in &mut table.columns {
            if col.name.eq_ignore_ascii_case(old) {
                col.name = new.to_string();
            }
            if let ColumnExpr::Formula(text) = &mut col.expr {
                let mut parsed = parse_formula(text)?;
                let n = analyze::rename_ref(&mut parsed, old, new);
                if n > 0 {
                    *text = parsed.to_string();
                    rewritten += 1;
                }
            }
        }
    }

    // Pass 2: qualified references from other elements.
    for page in &mut wb.pages {
        for el in &mut page.elements {
            if el.name.eq_ignore_ascii_case(&el_name) {
                continue;
            }
            if let ElementKind::Table(t) = &mut el.kind {
                for col in &mut t.columns {
                    if let ColumnExpr::Formula(text) = &mut col.expr {
                        let mut parsed = parse_formula(text)?;
                        let mut n = 0;
                        analyze::walk_mut(&mut parsed, &mut |node| {
                            if let sigma_expr::Formula::Ref(r) = node {
                                if r.element
                                    .as_deref()
                                    .is_some_and(|e| e.eq_ignore_ascii_case(&el_name))
                                    && r.name.eq_ignore_ascii_case(old)
                                {
                                    r.name = new.to_string();
                                    n += 1;
                                }
                            }
                        });
                        if n > 0 {
                            *text = parsed.to_string();
                            rewritten += 1;
                        }
                    }
                }
                // Element-sourced tables pass columns through by name.
                if matches!(&t.source, crate::table::DataSource::Element { name } if name.eq_ignore_ascii_case(&el_name))
                {
                    for col in &mut t.columns {
                        if let ColumnExpr::Source(raw) = &mut col.expr {
                            if raw.eq_ignore_ascii_case(old) {
                                *raw = new.to_string();
                                rewritten += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(rewritten)
}

/// Rename an element, rewriting qualified `[Element/...]` references and
/// `DataSource::Element` pointers.
pub fn rename_element(wb: &mut Workbook, old: &str, new: &str) -> Result<usize, CoreError> {
    if wb.element(old).is_none() {
        return Err(CoreError::Unresolved(format!("element {old}")));
    }
    if wb.element(new).is_some() && !old.eq_ignore_ascii_case(new) {
        return Err(CoreError::Document(format!("element {new} already exists")));
    }
    if new.contains('/') || new.trim().is_empty() {
        return Err(CoreError::Document("invalid element name".into()));
    }
    let mut rewritten = 0;
    for page in &mut wb.pages {
        for el in &mut page.elements {
            if el.name.eq_ignore_ascii_case(old) {
                el.name = new.to_string();
                continue;
            }
            let sources: Vec<&mut crate::table::DataSource> = match &mut el.kind {
                ElementKind::Table(t) => {
                    for col in &mut t.columns {
                        if let ColumnExpr::Formula(text) = &mut col.expr {
                            let mut parsed = parse_formula(text)?;
                            let n = analyze::rename_element(&mut parsed, old, new);
                            if n > 0 {
                                *text = parsed.to_string();
                                rewritten += 1;
                            }
                        }
                    }
                    let mut v = vec![&mut t.source];
                    for link in &mut t.links {
                        match link {
                            crate::table::SourceLink::Join { source, .. }
                            | crate::table::SourceLink::Union { source } => v.push(source),
                        }
                    }
                    v
                }
                ElementKind::Viz(v) => vec![&mut v.source],
                ElementKind::Pivot(p) => vec![&mut p.source],
                _ => vec![],
            };
            for s in sources {
                if let crate::table::DataSource::Element { name } = s {
                    if name.eq_ignore_ascii_case(old) {
                        *name = new.to_string();
                        rewritten += 1;
                    }
                }
            }
        }
    }
    Ok(rewritten)
}

/// Undo/redo history over document snapshots. Cloning a workbook is cheap
/// relative to query execution, and snapshots pair naturally with the
/// browser's result cache (undoing re-displays a cached result, §4).
#[derive(Debug, Default)]
pub struct History {
    undo: Vec<Workbook>,
    redo: Vec<Workbook>,
}

/// Cap on retained snapshots.
const MAX_HISTORY: usize = 128;

impl History {
    pub fn new() -> History {
        History::default()
    }

    /// Record the state *before* an edit.
    pub fn checkpoint(&mut self, wb: &Workbook) {
        self.undo.push(wb.clone());
        if self.undo.len() > MAX_HISTORY {
            self.undo.remove(0);
        }
        self.redo.clear();
    }

    pub fn can_undo(&self) -> bool {
        !self.undo.is_empty()
    }

    pub fn can_redo(&self) -> bool {
        !self.redo.is_empty()
    }

    /// Swap the current state for the previous snapshot.
    pub fn undo(&mut self, current: &mut Workbook) -> bool {
        match self.undo.pop() {
            Some(prev) => {
                self.redo.push(std::mem::replace(current, prev));
                true
            }
            None => false,
        }
    }

    pub fn redo(&mut self, current: &mut Workbook) -> bool {
        match self.redo.pop() {
            Some(next) => {
                self.undo.push(std::mem::replace(current, next));
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::ElementKind;
    use crate::table::{ColumnDef, DataSource, TableSpec};

    fn wb() -> Workbook {
        let mut wb = Workbook::new(Some("edit-me"));
        let mut flights = TableSpec::new(DataSource::WarehouseTable {
            table: "flights".into(),
        });
        flights
            .add_column(ColumnDef::source("Dep Delay", "dep_delay"))
            .unwrap();
        flights
            .add_column(ColumnDef::formula("Is Late", "[Dep Delay] > 15", 0))
            .unwrap();
        wb.add_element(0, "Flights", ElementKind::Table(flights))
            .unwrap();

        let mut other = TableSpec::new(DataSource::WarehouseTable { table: "x".into() });
        other.add_column(ColumnDef::source("k", "k")).unwrap();
        other
            .add_column(ColumnDef::formula(
                "Avg Delay",
                "Rollup(Avg([Flights/Dep Delay]), [k], [Flights/Dep Delay])",
                0,
            ))
            .unwrap();
        wb.add_element(0, "Other", ElementKind::Table(other))
            .unwrap();
        wb
    }

    #[test]
    fn rename_column_rewrites_local_and_qualified() {
        let mut wb = wb();
        let n = rename_column(&mut wb, "Flights", "Dep Delay", "Departure Delay").unwrap();
        assert_eq!(n, 2); // "Is Late" + Other's rollup
        let flights = wb.table("Flights").unwrap();
        assert!(flights.column("Departure Delay").is_some());
        let is_late = flights.column("Is Late").unwrap();
        assert_eq!(
            match &is_late.expr {
                crate::table::ColumnExpr::Formula(t) => t.as_str(),
                _ => panic!(),
            },
            "[Departure Delay] > 15"
        );
        let other = wb.table("Other").unwrap();
        let rollup = other.column("Avg Delay").unwrap();
        if let crate::table::ColumnExpr::Formula(t) = &rollup.expr {
            assert!(t.contains("[Flights/Departure Delay]"), "{t}");
        }
    }

    #[test]
    fn rename_column_conflicts_rejected() {
        let mut wb = wb();
        assert!(rename_column(&mut wb, "Flights", "Dep Delay", "Is Late").is_err());
        assert!(rename_column(&mut wb, "Flights", "missing", "X").is_err());
    }

    #[test]
    fn rename_element_rewrites_refs() {
        let mut wb = wb();
        let n = rename_element(&mut wb, "Flights", "All Flights").unwrap();
        assert_eq!(n, 1);
        assert!(wb.element("All Flights").is_some());
        let other = wb.table("Other").unwrap();
        if let crate::table::ColumnExpr::Formula(t) = &other.column("Avg Delay").unwrap().expr {
            assert!(t.contains("[All Flights/Dep Delay]"), "{t}");
        }
        assert!(rename_element(&mut wb, "Other", "All Flights").is_err());
        assert!(rename_element(&mut wb, "All Flights", "a/b").is_err());
    }

    #[test]
    fn undo_redo_round_trip() {
        let mut wb = wb();
        let mut history = History::new();
        let original = wb.clone();
        history.checkpoint(&wb);
        rename_element(&mut wb, "Flights", "Renamed").unwrap();
        assert!(wb.element("Renamed").is_some());
        assert!(history.undo(&mut wb));
        assert_eq!(wb, original);
        assert!(history.can_redo());
        assert!(history.redo(&mut wb));
        assert!(wb.element("Renamed").is_some());
        // Undoing the redone edit restores the original state once more.
        assert!(history.undo(&mut wb));
        assert_eq!(wb, original);
    }
}
