//! The paper's primary contribution: the Sigma Workbook document model and
//! the spreadsheet-formula-to-SQL compiler.
//!
//! A workbook (paper §3) is a canvas of pages holding *elements*: data
//! elements (tables, visualizations, pivot tables, editable input tables),
//! UI elements (text, images, spacers), and interactive controls (sliders,
//! lists, text inputs, date pickers). Workbook state is a JSON-serializable
//! document ("Interactive data operations expressed by a user are sent to
//! the Sigma service as a JSON-encoding of the Workbook state", §2).
//!
//! The table element (§3.1, Figure 3) is a query defined by three
//! constructs: hierarchical **grouping levels**, **columns** whose formulas
//! are written in the spreadsheet expression language of `sigma-expr`, and
//! **filters** applied greedily as soon as their dependencies are met.
//! `Lookup`/`Rollup` formulas (§3.2) express ad-hoc joins against other
//! elements without changing cardinality.
//!
//! [`compile`] dynamically constructs matching SQL: one CTE pipeline per
//! element — source (with lookup joins) → base → grouping levels → summary
//! — with cross-level references lowered to joins between level CTEs, and
//! materialized-view substitution when the service has a fresh
//! materialization of a referenced element.

pub mod compile;
pub mod controls;
pub mod document;
pub mod editable;
pub mod edits;
pub mod error;
pub mod graph;
pub mod pivot;
pub mod schema;
pub mod table;
pub mod viz;

pub use compile::{
    classify_plan_delta, CompileOptions, CompiledQuery, Compiler, Fingerprint, PlanDelta,
    StageEdit, StageEditKind, StageNode, StagePlan,
};
pub use document::{Element, ElementKind, Page, Workbook};
pub use error::CoreError;
pub use schema::SchemaProvider;
pub use table::{ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec};
