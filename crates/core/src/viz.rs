//! Visualization elements (paper §3.3). "Workbook visualization elements
//! use Vega and support common visualization types. … Like tables,
//! visualization and pivot table elements include columns and filters.
//! Similarly, both elements have a data source and may be a source for
//! other elements."
//!
//! The DB-relevant half is the backing query: a viz compiles exactly like a
//! table whose detail level groups by the non-aggregated encodings. The
//! rendering half is emitted as a Vega-lite-flavored JSON spec.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::table::{ColumnDef, ColumnExpr, DataSource, FilterSpec, Level, TableSpec};

/// Mark types, matching Vega-lite's common set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mark {
    Bar,
    Line,
    Area,
    Point,
    Scatter,
}

impl Mark {
    fn vega_name(self) -> &'static str {
        match self {
            Mark::Bar => "bar",
            Mark::Line => "line",
            Mark::Area => "area",
            Mark::Point | Mark::Scatter => "point",
        }
    }
}

/// Encoding channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Channel {
    X,
    Y,
    Color,
    Size,
    Tooltip,
}

impl Channel {
    fn vega_name(self) -> &'static str {
        match self {
            Channel::X => "x",
            Channel::Y => "y",
            Channel::Color => "color",
            Channel::Size => "size",
            Channel::Tooltip => "tooltip",
        }
    }
}

/// One encoding: a named column (formula) bound to a channel. Aggregate
/// formulas become measures; scalar formulas become grouping dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Encoding {
    pub channel: Channel,
    pub name: String,
    pub formula: String,
}

/// A visualization element specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VizSpec {
    pub source: DataSource,
    pub mark: Mark,
    pub encodings: Vec<Encoding>,
    pub filters: Vec<FilterSpec>,
    pub title: Option<String>,
}

impl VizSpec {
    pub fn new(source: DataSource, mark: Mark) -> VizSpec {
        VizSpec {
            source,
            mark,
            encodings: Vec::new(),
            filters: Vec::new(),
            title: None,
        }
    }

    pub fn encode(
        mut self,
        channel: Channel,
        name: impl Into<String>,
        formula: impl Into<String>,
    ) -> VizSpec {
        self.encodings.push(Encoding {
            channel,
            name: name.into(),
            formula: formula.into(),
        });
        self
    }

    /// Lower to an equivalent table spec: dimensions key an intermediate
    /// level, measures reside at it, and the detail level is that level.
    pub fn to_table_spec(&self) -> Result<TableSpec, CoreError> {
        let mut spec = TableSpec::new(self.source.clone());
        let mut dims: Vec<String> = Vec::new();
        let mut measures: Vec<&Encoding> = Vec::new();
        for e in &self.encodings {
            let parsed = sigma_expr::parse_formula(&e.formula)?;
            if sigma_expr::analyze::has_aggregate(&parsed) {
                measures.push(e);
            } else {
                dims.push(e.name.clone());
                spec.add_column(ColumnDef {
                    name: e.name.clone(),
                    expr: ColumnExpr::Formula(e.formula.clone()),
                    level: 0,
                    visible: true,
                    format: None,
                })?;
            }
        }
        if dims.is_empty() {
            // Pure-measure viz: everything lives at the summary.
            for m in &measures {
                spec.add_column(ColumnDef {
                    name: m.name.clone(),
                    expr: ColumnExpr::Formula(m.formula.clone()),
                    level: 1, // summary when only the base exists
                    visible: true,
                    format: None,
                })?;
            }
            spec.detail_level = 1;
        } else {
            spec.add_level(1, Level::keyed("Marks", dims))?;
            for m in &measures {
                spec.add_column(ColumnDef {
                    name: m.name.clone(),
                    expr: ColumnExpr::Formula(m.formula.clone()),
                    level: 1,
                    visible: true,
                    format: None,
                })?;
            }
            spec.detail_level = 1;
        }
        spec.filters = self.filters.clone();
        spec.validate()?;
        Ok(spec)
    }

    /// Emit a Vega-lite-flavored spec describing the rendering; `data_url`
    /// is where the client serves the backing query's result.
    pub fn to_vega_spec(&self, data_url: &str) -> serde_json::Value {
        let mut encoding = serde_json::Map::new();
        for e in &self.encodings {
            let parsed = sigma_expr::parse_formula(&e.formula).ok();
            let is_measure = parsed
                .as_ref()
                .map(sigma_expr::analyze::has_aggregate)
                .unwrap_or(false);
            encoding.insert(
                e.channel.vega_name().to_string(),
                serde_json::json!({
                    "field": e.name,
                    "type": if is_measure { "quantitative" } else { "nominal" },
                }),
            );
        }
        serde_json::json!({
            "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
            "title": self.title,
            "mark": self.mark.vega_name(),
            "data": {"url": data_url},
            "encoding": encoding,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viz() -> VizSpec {
        VizSpec::new(
            DataSource::WarehouseTable {
                table: "flights".into(),
            },
            Mark::Scatter,
        )
        .encode(
            Channel::X,
            "Quarter",
            "DateTrunc(\"quarter\", [flight_date])",
        )
        .encode(Channel::Y, "Flights", "Count()")
        .encode(Channel::Color, "Carrier", "[carrier]")
    }

    #[test]
    fn lowering_splits_dims_and_measures() {
        let spec = viz().to_table_spec().unwrap();
        assert_eq!(spec.levels.len(), 2); // base + Marks
        assert_eq!(
            spec.levels[1].keys,
            vec!["Quarter".to_string(), "Carrier".to_string()]
        );
        let measure = spec.column("Flights").unwrap();
        assert_eq!(measure.level, 1);
        assert_eq!(spec.detail_level, 1);
    }

    #[test]
    fn pure_measure_viz_uses_summary() {
        let v = VizSpec::new(DataSource::WarehouseTable { table: "t".into() }, Mark::Bar).encode(
            Channel::Y,
            "Total",
            "Sum([x])",
        );
        let spec = v.to_table_spec().unwrap();
        assert_eq!(spec.levels.len(), 1);
        assert_eq!(spec.column("Total").unwrap().level, 1);
    }

    #[test]
    fn vega_spec_shape() {
        let spec = viz().to_vega_spec("/results/q-1.json");
        assert_eq!(spec["mark"], "point");
        assert_eq!(spec["encoding"]["y"]["type"], "quantitative");
        assert_eq!(spec["encoding"]["color"]["type"], "nominal");
        assert_eq!(spec["data"]["url"], "/results/q-1.json");
    }

    #[test]
    fn bad_formula_is_an_error() {
        let v = VizSpec::new(DataSource::WarehouseTable { table: "t".into() }, Mark::Bar).encode(
            Channel::X,
            "Bad",
            "Sum((",
        );
        assert!(v.to_table_spec().is_err());
    }
}
