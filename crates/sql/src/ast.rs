//! The SQL abstract syntax tree.

use serde::{Deserialize, Serialize};
use sigma_value::{DataType, Value};

/// A possibly schema-qualified object name (`sales.flights`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectName(pub Vec<String>);

impl ObjectName {
    pub fn bare(name: impl Into<String>) -> ObjectName {
        ObjectName(vec![name.into()])
    }

    /// Unqualified trailing segment.
    pub fn base(&self) -> &str {
        self.0.last().map(String::as_str).unwrap_or("")
    }

    pub fn to_dotted(&self) -> String {
        self.0.join(".")
    }
}

/// Binary operators in SQL expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SqlBinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    /// `||` — string concatenation.
    Concat,
}

impl SqlBinaryOp {
    pub fn symbol(self) -> &'static str {
        use SqlBinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Eq => "=",
            NotEq => "<>",
            Lt => "<",
            LtEq => "<=",
            Gt => ">",
            GtEq => ">=",
            And => "AND",
            Or => "OR",
            Concat => "||",
        }
    }

    pub fn precedence(self) -> u8 {
        use SqlBinaryOp::*;
        match self {
            Or => 1,
            And => 2,
            Eq | NotEq | Lt | LtEq | Gt | GtEq => 4,
            Concat => 5,
            Add | Sub => 6,
            Mul | Div | Mod => 7,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SqlUnaryOp {
    Neg,
    Not,
}

/// An ORDER BY term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderExpr {
    pub expr: SqlExpr,
    pub descending: bool,
    /// `None` follows the engine default (nulls first for ASC, mirroring
    /// nulls-first total order).
    pub nulls_last: Option<bool>,
}

impl OrderExpr {
    pub fn asc(expr: SqlExpr) -> OrderExpr {
        OrderExpr {
            expr,
            descending: false,
            nulls_last: None,
        }
    }
    pub fn desc(expr: SqlExpr) -> OrderExpr {
        OrderExpr {
            expr,
            descending: true,
            nulls_last: None,
        }
    }
}

/// Window frame bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameBound {
    UnboundedPreceding,
    Preceding(u64),
    CurrentRow,
    Following(u64),
    UnboundedFollowing,
}

/// `ROWS BETWEEN <start> AND <end>` (only ROWS frames are modeled; the
/// compiler never emits RANGE frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowFrame {
    pub start: FrameBound,
    pub end: FrameBound,
}

/// The OVER clause of a window function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WindowSpec {
    pub partition_by: Vec<SqlExpr>,
    pub order_by: Vec<OrderExpr>,
    pub frame: Option<WindowFrame>,
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SqlExpr {
    Literal(Value),
    /// Optionally table-qualified column reference.
    Column {
        table: Option<String>,
        name: String,
    },
    /// `*` (only valid inside COUNT(*) and SELECT lists).
    Star,
    Unary {
        op: SqlUnaryOp,
        expr: Box<SqlExpr>,
    },
    Binary {
        op: SqlBinaryOp,
        left: Box<SqlExpr>,
        right: Box<SqlExpr>,
    },
    /// Scalar or aggregate function call.
    Func {
        name: String,
        args: Vec<SqlExpr>,
        distinct: bool,
    },
    /// Window function call with OVER clause.
    WindowFunc {
        name: String,
        args: Vec<SqlExpr>,
        ignore_nulls: bool,
        spec: WindowSpec,
    },
    /// Searched or simple CASE.
    Case {
        operand: Option<Box<SqlExpr>>,
        whens: Vec<(SqlExpr, SqlExpr)>,
        else_: Option<Box<SqlExpr>>,
    },
    Cast {
        expr: Box<SqlExpr>,
        dtype: DataType,
    },
    InList {
        expr: Box<SqlExpr>,
        list: Vec<SqlExpr>,
        negated: bool,
    },
    Between {
        expr: Box<SqlExpr>,
        low: Box<SqlExpr>,
        high: Box<SqlExpr>,
        negated: bool,
    },
    IsNull {
        expr: Box<SqlExpr>,
        negated: bool,
    },
    Like {
        expr: Box<SqlExpr>,
        pattern: Box<SqlExpr>,
        negated: bool,
    },
}

impl SqlExpr {
    pub fn col(name: impl Into<String>) -> SqlExpr {
        SqlExpr::Column {
            table: None,
            name: name.into(),
        }
    }

    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> SqlExpr {
        SqlExpr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> SqlExpr {
        SqlExpr::Literal(v.into())
    }

    pub fn null() -> SqlExpr {
        SqlExpr::Literal(Value::Null)
    }

    pub fn func(name: impl Into<String>, args: Vec<SqlExpr>) -> SqlExpr {
        SqlExpr::Func {
            name: name.into(),
            args,
            distinct: false,
        }
    }

    pub fn binary(op: SqlBinaryOp, left: SqlExpr, right: SqlExpr) -> SqlExpr {
        SqlExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: SqlExpr, right: SqlExpr) -> SqlExpr {
        SqlExpr::binary(SqlBinaryOp::Eq, left, right)
    }

    pub fn and(left: SqlExpr, right: SqlExpr) -> SqlExpr {
        SqlExpr::binary(SqlBinaryOp::And, left, right)
    }

    /// Fold a list of predicates into a conjunction (`None` for empty).
    pub fn conjunction(preds: impl IntoIterator<Item = SqlExpr>) -> Option<SqlExpr> {
        preds.into_iter().reduce(SqlExpr::and)
    }
}

/// One item in a SELECT projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    Expr {
        expr: SqlExpr,
        alias: Option<String>,
    },
    Wildcard,
}

impl SelectItem {
    pub fn aliased(expr: SqlExpr, alias: impl Into<String>) -> SelectItem {
        SelectItem::Expr {
            expr,
            alias: Some(alias.into()),
        }
    }

    pub fn bare(expr: SqlExpr) -> SelectItem {
        SelectItem::Expr { expr, alias: None }
    }
}

/// Join flavors the engine executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinKind {
    Inner,
    Left,
    Full,
    Cross,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    pub kind: JoinKind,
    pub relation: TableRef,
    /// `None` only for CROSS joins.
    pub on: Option<SqlExpr>,
}

/// A FROM-clause relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableRef {
    Table {
        name: ObjectName,
        alias: Option<String>,
    },
    Subquery {
        query: Box<Query>,
        alias: String,
    },
    /// Table function call, e.g. `RESULT_SCAN('q-42')` — the Snowflake-style
    /// mechanism the query directory uses to re-fetch persisted result sets.
    Function {
        name: String,
        args: Vec<SqlExpr>,
        alias: Option<String>,
    },
}

impl TableRef {
    /// The name this relation binds in scope, if any.
    pub fn binding(&self) -> Option<&str> {
        match self {
            TableRef::Table { alias: Some(a), .. } => Some(a),
            TableRef::Table { name, alias: None } => Some(name.base()),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Function { alias, .. } => alias.as_deref(),
        }
    }
}

/// A SELECT block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub joins: Vec<Join>,
    pub selection: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
    pub having: Option<SqlExpr>,
    /// Post-window filter (Snowflake QUALIFY). Dialects without QUALIFY
    /// print it via a wrapping subquery.
    pub qualify: Option<SqlExpr>,
}

impl Select {
    pub fn new() -> Select {
        Select {
            distinct: false,
            projection: Vec::new(),
            from: None,
            joins: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
            qualify: None,
        }
    }
}

impl Default for Select {
    fn default() -> Self {
        Select::new()
    }
}

/// Set-operation tree under a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SetExpr {
    Select(Box<Select>),
    UnionAll(Box<SetExpr>, Box<SetExpr>),
    /// `VALUES (..), (..)` — used for editable tables and CSV marshaling.
    Values(Vec<Vec<SqlExpr>>),
}

/// A full query: CTEs + body + final ordering/limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub ctes: Vec<(String, Query)>,
    pub body: SetExpr,
    pub order_by: Vec<OrderExpr>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

impl Query {
    pub fn from_select(select: Select) -> Query {
        Query {
            ctes: Vec::new(),
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// Top-level statements the warehouse accepts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    Query(Query),
    CreateTable {
        name: ObjectName,
        columns: Vec<(String, DataType)>,
        if_not_exists: bool,
    },
    CreateTableAs {
        name: ObjectName,
        query: Query,
        or_replace: bool,
    },
    Insert {
        table: ObjectName,
        /// `None` means positional, all columns.
        columns: Option<Vec<String>>,
        source: Query,
    },
    Update {
        table: ObjectName,
        assignments: Vec<(String, SqlExpr)>,
        selection: Option<SqlExpr>,
    },
    Delete {
        table: ObjectName,
        selection: Option<SqlExpr>,
    },
    DropTable {
        name: ObjectName,
        if_exists: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_folds() {
        assert_eq!(SqlExpr::conjunction(vec![]), None);
        let one = SqlExpr::conjunction(vec![SqlExpr::lit(true)]).unwrap();
        assert_eq!(one, SqlExpr::lit(true));
        let two = SqlExpr::conjunction(vec![SqlExpr::col("a"), SqlExpr::col("b")]).unwrap();
        assert!(matches!(
            two,
            SqlExpr::Binary {
                op: SqlBinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef::Table {
            name: ObjectName(vec!["s".into(), "f".into()]),
            alias: None,
        };
        assert_eq!(t.binding(), Some("f"));
        let t2 = TableRef::Table {
            name: ObjectName::bare("x"),
            alias: Some("y".into()),
        };
        assert_eq!(t2.binding(), Some("y"));
    }
}
