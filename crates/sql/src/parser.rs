//! Recursive-descent SQL parser producing the [`crate::ast`] types.
//!
//! Parses the superset dialect (`DialectKind::Generic`): everything the
//! printer can emit in any dialect, including `QUALIFY`, `IGNORE NULLS`
//! (both placements), and `TABLE(RESULT_SCAN(...))`.

use std::fmt;

use sigma_value::{calendar, DataType, Value};

use crate::ast::*;
use crate::lexer::{lex_sql, SqlLexError, SqlToken, SqlTokenKind};

/// Parse failure with offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for SqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error: {} at offset {}",
            self.message, self.offset
        )
    }
}

impl std::error::Error for SqlParseError {}

impl From<SqlLexError> for SqlParseError {
    fn from(e: SqlLexError) -> Self {
        SqlParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parse a single SQL statement.
pub fn parse_statement(input: &str) -> Result<Statement, SqlParseError> {
    let tokens = lex_sql(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a query (SELECT / WITH / VALUES).
pub fn parse_query(input: &str) -> Result<Query, SqlParseError> {
    let tokens = lex_sql(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<SqlToken>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&SqlTokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, n: usize) -> Option<&SqlTokenKind> {
        self.tokens.get(self.pos + n).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.input_len, |t| t.offset)
    }

    fn advance(&mut self) -> Option<SqlTokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> SqlParseError {
        SqlParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn expect_end(&self) -> Result<(), SqlParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err(format!("unexpected trailing token {t}"))),
        }
    }

    /// True when the next token is the given bare word (case-insensitive).
    fn at_word(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(SqlTokenKind::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn at_word_n(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_at(n), Some(SqlTokenKind::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_word(&mut self, kw: &str) -> bool {
        if self.at_word(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, kw: &str) -> Result<(), SqlParseError> {
        if self.eat_word(kw) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {kw}, found {}",
                self.peek()
                    .map_or("end of input".to_string(), |t| t.to_string())
            )))
        }
    }

    fn eat(&mut self, kind: &SqlTokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &SqlTokenKind) -> Result<(), SqlParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {kind}, found {}",
                self.peek()
                    .map_or("end of input".to_string(), |t| t.to_string())
            )))
        }
    }

    /// An identifier: quoted, or any bare word.
    fn ident(&mut self) -> Result<String, SqlParseError> {
        match self.advance() {
            Some(SqlTokenKind::Word(w)) => Ok(w),
            Some(SqlTokenKind::QuotedIdent(s)) => Ok(s),
            other => Err(SqlParseError {
                message: format!(
                    "expected identifier, found {}",
                    other.map_or("end of input".to_string(), |t| t.to_string())
                ),
                offset: self
                    .tokens
                    .get(self.pos - 1)
                    .map_or(self.input_len, |t| t.offset),
            }),
        }
    }

    fn object_name(&mut self) -> Result<ObjectName, SqlParseError> {
        let mut parts = vec![self.ident()?];
        while self.eat(&SqlTokenKind::Dot) {
            parts.push(self.ident()?);
        }
        Ok(ObjectName(parts))
    }

    // ------------------------------------------------------------------
    // statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, SqlParseError> {
        if self.at_word("SELECT") || self.at_word("WITH") || self.at_word("VALUES") {
            return Ok(Statement::Query(self.query()?));
        }
        if self.at_word("CREATE") {
            return self.create();
        }
        if self.eat_word("INSERT") {
            self.expect_word("INTO")?;
            let table = self.object_name()?;
            // Optional column list: a '(' followed by an identifier then
            // ',' or ')' — otherwise the '(' starts a subquery source.
            let columns =
                if self.peek() == Some(&SqlTokenKind::LParen) && self.looks_like_column_list() {
                    self.expect(&SqlTokenKind::LParen)?;
                    let mut cols = vec![self.ident()?];
                    while self.eat(&SqlTokenKind::Comma) {
                        cols.push(self.ident()?);
                    }
                    self.expect(&SqlTokenKind::RParen)?;
                    Some(cols)
                } else {
                    None
                };
            let source = self.query()?;
            return Ok(Statement::Insert {
                table,
                columns,
                source,
            });
        }
        if self.eat_word("UPDATE") {
            let table = self.object_name()?;
            self.expect_word("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect(&SqlTokenKind::Eq)?;
                let val = self.expr(0)?;
                assignments.push((col, val));
                if !self.eat(&SqlTokenKind::Comma) {
                    break;
                }
            }
            let selection = if self.eat_word("WHERE") {
                Some(self.expr(0)?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                assignments,
                selection,
            });
        }
        if self.eat_word("DELETE") {
            self.expect_word("FROM")?;
            let table = self.object_name()?;
            let selection = if self.eat_word("WHERE") {
                Some(self.expr(0)?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, selection });
        }
        if self.eat_word("DROP") {
            self.expect_word("TABLE")?;
            let if_exists = if self.eat_word("IF") {
                self.expect_word("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.object_name()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        Err(self.err("expected a statement"))
    }

    /// Heuristic: after INSERT INTO t, does '(' open a column list?
    fn looks_like_column_list(&self) -> bool {
        // '(' ident (',' | ')')
        let id_ok = matches!(
            self.peek_at(1),
            Some(SqlTokenKind::Word(_) | SqlTokenKind::QuotedIdent(_))
        );
        // "(select ...)" is a subquery, not a column list.
        if self.at_word_n(1, "SELECT") || self.at_word_n(1, "WITH") || self.at_word_n(1, "VALUES") {
            return false;
        }
        id_ok
            && matches!(
                self.peek_at(2),
                Some(SqlTokenKind::Comma | SqlTokenKind::RParen)
            )
    }

    fn create(&mut self) -> Result<Statement, SqlParseError> {
        self.expect_word("CREATE")?;
        let or_replace = if self.eat_word("OR") {
            self.expect_word("REPLACE")?;
            true
        } else {
            false
        };
        self.expect_word("TABLE")?;
        let if_not_exists = if self.eat_word("IF") {
            self.expect_word("NOT")?;
            self.expect_word("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.object_name()?;
        if self.eat_word("AS") {
            let query = self.query()?;
            return Ok(Statement::CreateTableAs {
                name,
                query,
                or_replace,
            });
        }
        self.expect(&SqlTokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_word = self.ident()?;
            let dtype = DataType::parse_sql(&ty_word)
                .ok_or_else(|| self.err(format!("unknown type {ty_word}")))?;
            columns.push((col, dtype));
            if !self.eat(&SqlTokenKind::Comma) {
                break;
            }
        }
        self.expect(&SqlTokenKind::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    // ------------------------------------------------------------------
    // queries
    // ------------------------------------------------------------------

    fn query(&mut self) -> Result<Query, SqlParseError> {
        let mut ctes = Vec::new();
        if self.eat_word("WITH") {
            loop {
                let name = self.ident()?;
                self.expect_word("AS")?;
                self.expect(&SqlTokenKind::LParen)?;
                let cte = self.query()?;
                self.expect(&SqlTokenKind::RParen)?;
                ctes.push((name, cte));
                if !self.eat(&SqlTokenKind::Comma) {
                    break;
                }
            }
        }
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_word("ORDER") {
            self.expect_word("BY")?;
            order_by = self.order_list()?;
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_word("LIMIT") {
            limit = Some(self.unsigned_number()?);
        }
        if self.eat_word("OFFSET") {
            offset = Some(self.unsigned_number()?);
        }
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn unsigned_number(&mut self) -> Result<u64, SqlParseError> {
        match self.advance() {
            Some(SqlTokenKind::Number(n)) => n
                .parse::<u64>()
                .map_err(|_| self.err(format!("expected an unsigned integer, found {n}"))),
            other => Err(self.err(format!(
                "expected a number, found {}",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn order_list(&mut self) -> Result<Vec<OrderExpr>, SqlParseError> {
        let mut out = Vec::new();
        loop {
            let expr = self.expr(0)?;
            let mut descending = false;
            if self.eat_word("ASC") {
            } else if self.eat_word("DESC") {
                descending = true;
            }
            let nulls_last = if self.eat_word("NULLS") {
                if self.eat_word("LAST") {
                    Some(true)
                } else {
                    self.expect_word("FIRST")?;
                    Some(false)
                }
            } else {
                None
            };
            out.push(OrderExpr {
                expr,
                descending,
                nulls_last,
            });
            if !self.eat(&SqlTokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn set_expr(&mut self) -> Result<SetExpr, SqlParseError> {
        let mut left = self.set_primary()?;
        while self.at_word("UNION") {
            self.expect_word("UNION")?;
            self.expect_word("ALL")?;
            let right = self.set_primary()?;
            left = SetExpr::UnionAll(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn set_primary(&mut self) -> Result<SetExpr, SqlParseError> {
        if self.eat(&SqlTokenKind::LParen) {
            let inner = self.set_expr()?;
            self.expect(&SqlTokenKind::RParen)?;
            return Ok(inner);
        }
        if self.eat_word("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&SqlTokenKind::LParen)?;
                let mut row = Vec::new();
                if self.peek() != Some(&SqlTokenKind::RParen) {
                    loop {
                        row.push(self.expr(0)?);
                        if !self.eat(&SqlTokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&SqlTokenKind::RParen)?;
                rows.push(row);
                if !self.eat(&SqlTokenKind::Comma) {
                    break;
                }
            }
            return Ok(SetExpr::Values(rows));
        }
        Ok(SetExpr::Select(Box::new(self.select()?)))
    }

    fn select(&mut self) -> Result<Select, SqlParseError> {
        self.expect_word("SELECT")?;
        let mut s = Select::new();
        s.distinct = self.eat_word("DISTINCT");
        loop {
            if self.eat(&SqlTokenKind::Star) {
                s.projection.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr(0)?;
                let alias = self.optional_alias()?;
                s.projection.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&SqlTokenKind::Comma) {
                break;
            }
        }
        if self.eat_word("FROM") {
            s.from = Some(self.table_ref()?);
            loop {
                let kind = if self.at_word("JOIN") || self.at_word("INNER") {
                    self.eat_word("INNER");
                    self.expect_word("JOIN")?;
                    JoinKind::Inner
                } else if self.at_word("LEFT") {
                    self.expect_word("LEFT")?;
                    self.eat_word("OUTER");
                    self.expect_word("JOIN")?;
                    JoinKind::Left
                } else if self.at_word("FULL") {
                    self.expect_word("FULL")?;
                    self.eat_word("OUTER");
                    self.expect_word("JOIN")?;
                    JoinKind::Full
                } else if self.at_word("CROSS") {
                    self.expect_word("CROSS")?;
                    self.expect_word("JOIN")?;
                    JoinKind::Cross
                } else {
                    break;
                };
                let relation = self.table_ref()?;
                let on = if kind == JoinKind::Cross {
                    None
                } else {
                    self.expect_word("ON")?;
                    Some(self.expr(0)?)
                };
                s.joins.push(Join { kind, relation, on });
            }
        }
        if self.eat_word("WHERE") {
            s.selection = Some(self.expr(0)?);
        }
        if self.eat_word("GROUP") {
            self.expect_word("BY")?;
            loop {
                s.group_by.push(self.expr(0)?);
                if !self.eat(&SqlTokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_word("HAVING") {
            s.having = Some(self.expr(0)?);
        }
        if self.eat_word("QUALIFY") {
            s.qualify = Some(self.expr(0)?);
        }
        Ok(s)
    }

    /// `AS ident`, a quoted identifier, or a bare non-keyword word.
    fn optional_alias(&mut self) -> Result<Option<String>, SqlParseError> {
        if self.eat_word("AS") {
            return Ok(Some(self.ident()?));
        }
        match self.peek() {
            Some(SqlTokenKind::QuotedIdent(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Some(s))
            }
            Some(SqlTokenKind::Word(w)) if !crate::dialect::is_reserved(w) => {
                let w = w.clone();
                self.pos += 1;
                Ok(Some(w))
            }
            _ => Ok(None),
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlParseError> {
        if self.eat_word("TABLE") {
            // TABLE(fn(args)) [AS alias]
            self.expect(&SqlTokenKind::LParen)?;
            let name = self.ident()?;
            self.expect(&SqlTokenKind::LParen)?;
            let mut args = Vec::new();
            if self.peek() != Some(&SqlTokenKind::RParen) {
                loop {
                    args.push(self.expr(0)?);
                    if !self.eat(&SqlTokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&SqlTokenKind::RParen)?;
            self.expect(&SqlTokenKind::RParen)?;
            let alias = self.optional_alias()?;
            return Ok(TableRef::Function { name, args, alias });
        }
        if self.eat(&SqlTokenKind::LParen) {
            let query = self.query()?;
            self.expect(&SqlTokenKind::RParen)?;
            let alias = self
                .optional_alias()?
                .ok_or_else(|| self.err("derived table requires an alias"))?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.object_name()?;
        let alias = self.optional_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    // ------------------------------------------------------------------
    // expressions
    // ------------------------------------------------------------------

    fn expr(&mut self, min_prec: u8) -> Result<SqlExpr, SqlParseError> {
        let mut left = self.prefix()?;
        loop {
            // Postfix predicates at comparison precedence.
            if min_prec <= 4 {
                if self.at_word("IS") {
                    self.expect_word("IS")?;
                    let negated = self.eat_word("NOT");
                    self.expect_word("NULL")?;
                    left = SqlExpr::IsNull {
                        expr: Box::new(left),
                        negated,
                    };
                    continue;
                }
                let negated_ahead = self.at_word("NOT")
                    && (self.at_word_n(1, "IN")
                        || self.at_word_n(1, "BETWEEN")
                        || self.at_word_n(1, "LIKE"));
                if self.at_word("IN")
                    || self.at_word("BETWEEN")
                    || self.at_word("LIKE")
                    || negated_ahead
                {
                    let negated = self.eat_word("NOT");
                    if self.eat_word("IN") {
                        self.expect(&SqlTokenKind::LParen)?;
                        let mut list = Vec::new();
                        loop {
                            list.push(self.expr(0)?);
                            if !self.eat(&SqlTokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&SqlTokenKind::RParen)?;
                        left = SqlExpr::InList {
                            expr: Box::new(left),
                            list,
                            negated,
                        };
                    } else if self.eat_word("BETWEEN") {
                        let low = self.expr(5)?;
                        self.expect_word("AND")?;
                        let high = self.expr(5)?;
                        left = SqlExpr::Between {
                            expr: Box::new(left),
                            low: Box::new(low),
                            high: Box::new(high),
                            negated,
                        };
                    } else {
                        self.expect_word("LIKE")?;
                        let pattern = self.expr(5)?;
                        left = SqlExpr::Like {
                            expr: Box::new(left),
                            pattern: Box::new(pattern),
                            negated,
                        };
                    }
                    continue;
                }
            }
            let Some(op) = self.peek_binop() else { break };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.advance();
            let right = self.expr(prec + 1)?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn peek_binop(&self) -> Option<SqlBinaryOp> {
        Some(match self.peek()? {
            SqlTokenKind::Plus => SqlBinaryOp::Add,
            SqlTokenKind::Minus => SqlBinaryOp::Sub,
            SqlTokenKind::Star => SqlBinaryOp::Mul,
            SqlTokenKind::Slash => SqlBinaryOp::Div,
            SqlTokenKind::Percent => SqlBinaryOp::Mod,
            SqlTokenKind::Eq => SqlBinaryOp::Eq,
            SqlTokenKind::NotEq => SqlBinaryOp::NotEq,
            SqlTokenKind::Lt => SqlBinaryOp::Lt,
            SqlTokenKind::LtEq => SqlBinaryOp::LtEq,
            SqlTokenKind::Gt => SqlBinaryOp::Gt,
            SqlTokenKind::GtEq => SqlBinaryOp::GtEq,
            SqlTokenKind::ConcatOp => SqlBinaryOp::Concat,
            SqlTokenKind::Word(w) if w.eq_ignore_ascii_case("AND") => SqlBinaryOp::And,
            SqlTokenKind::Word(w) if w.eq_ignore_ascii_case("OR") => SqlBinaryOp::Or,
            _ => return None,
        })
    }

    fn prefix(&mut self) -> Result<SqlExpr, SqlParseError> {
        match self.peek().cloned() {
            Some(SqlTokenKind::Number(_)) => {
                let Some(SqlTokenKind::Number(n)) = self.advance() else {
                    unreachable!()
                };
                self.number_literal(&n, false)
            }
            Some(SqlTokenKind::Str(_)) => {
                let Some(SqlTokenKind::Str(s)) = self.advance() else {
                    unreachable!()
                };
                Ok(SqlExpr::Literal(Value::Text(s)))
            }
            Some(SqlTokenKind::Minus) => {
                self.advance();
                // Fold into numeric literals so -3 round-trips.
                if let Some(SqlTokenKind::Number(n)) = self.peek().cloned() {
                    self.advance();
                    return self.number_literal(&n, true);
                }
                let expr = self.expr(8)?;
                Ok(SqlExpr::Unary {
                    op: SqlUnaryOp::Neg,
                    expr: Box::new(expr),
                })
            }
            Some(SqlTokenKind::Plus) => {
                self.advance();
                self.expr(8)
            }
            Some(SqlTokenKind::Star) => {
                self.advance();
                Ok(SqlExpr::Star)
            }
            Some(SqlTokenKind::LParen) => {
                self.advance();
                let inner = self.expr(0)?;
                self.expect(&SqlTokenKind::RParen)?;
                Ok(inner)
            }
            Some(SqlTokenKind::QuotedIdent(_)) => self.column_or_call(),
            Some(SqlTokenKind::Word(w)) => {
                let upper = w.to_ascii_uppercase();
                match upper.as_str() {
                    "TRUE" => {
                        self.advance();
                        Ok(SqlExpr::Literal(Value::Bool(true)))
                    }
                    "FALSE" => {
                        self.advance();
                        Ok(SqlExpr::Literal(Value::Bool(false)))
                    }
                    "NULL" => {
                        self.advance();
                        Ok(SqlExpr::Literal(Value::Null))
                    }
                    "NOT" => {
                        self.advance();
                        let expr = self.expr(3)?;
                        Ok(SqlExpr::Unary {
                            op: SqlUnaryOp::Not,
                            expr: Box::new(expr),
                        })
                    }
                    "CASE" => self.case_expr(),
                    "CAST" => {
                        self.advance();
                        self.expect(&SqlTokenKind::LParen)?;
                        let expr = self.expr(0)?;
                        self.expect_word("AS")?;
                        let ty_word = self.ident()?;
                        let dtype = DataType::parse_sql(&ty_word)
                            .ok_or_else(|| self.err(format!("unknown type {ty_word}")))?;
                        self.expect(&SqlTokenKind::RParen)?;
                        Ok(SqlExpr::Cast {
                            expr: Box::new(expr),
                            dtype,
                        })
                    }
                    "DATE" if matches!(self.peek_at(1), Some(SqlTokenKind::Str(_))) => {
                        self.advance();
                        let Some(SqlTokenKind::Str(s)) = self.advance() else {
                            unreachable!()
                        };
                        let days = calendar::parse_date(&s)
                            .ok_or_else(|| self.err(format!("bad date literal {s:?}")))?;
                        Ok(SqlExpr::Literal(Value::Date(days)))
                    }
                    "TIMESTAMP" if matches!(self.peek_at(1), Some(SqlTokenKind::Str(_))) => {
                        self.advance();
                        let Some(SqlTokenKind::Str(s)) = self.advance() else {
                            unreachable!()
                        };
                        let micros = calendar::parse_timestamp(&s)
                            .ok_or_else(|| self.err(format!("bad timestamp literal {s:?}")))?;
                        Ok(SqlExpr::Literal(Value::Timestamp(micros)))
                    }
                    _ => {
                        // Reserved words are only valid here as function
                        // names (`LEFT(x, 2)`); identifiers spelled like
                        // keywords arrive quoted.
                        if crate::dialect::is_reserved(&w)
                            && self.peek_at(1) != Some(&SqlTokenKind::LParen)
                        {
                            return Err(self.err(format!("unexpected keyword {w}")));
                        }
                        self.column_or_call()
                    }
                }
            }
            other => Err(self.err(format!(
                "unexpected {} in expression",
                other.map_or("end of input".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn number_literal(&self, text: &str, negate: bool) -> Result<SqlExpr, SqlParseError> {
        if !text.contains('.') && !text.contains(['e', 'E']) {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(SqlExpr::Literal(Value::Int(if negate { -v } else { v })));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number {text:?}")))?;
        Ok(SqlExpr::Literal(Value::Float(if negate { -v } else { v })))
    }

    fn case_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        self.expect_word("CASE")?;
        let operand = if self.at_word("WHEN") {
            None
        } else {
            Some(Box::new(self.expr(0)?))
        };
        let mut whens = Vec::new();
        while self.eat_word("WHEN") {
            let w = self.expr(0)?;
            self.expect_word("THEN")?;
            let t = self.expr(0)?;
            whens.push((w, t));
        }
        if whens.is_empty() {
            return Err(self.err("CASE requires at least one WHEN"));
        }
        let else_ = if self.eat_word("ELSE") {
            Some(Box::new(self.expr(0)?))
        } else {
            None
        };
        self.expect_word("END")?;
        Ok(SqlExpr::Case {
            operand,
            whens,
            else_,
        })
    }

    /// Column reference (possibly qualified) or function call (possibly a
    /// window function).
    fn column_or_call(&mut self) -> Result<SqlExpr, SqlParseError> {
        let first = self.ident()?;
        if self.peek() == Some(&SqlTokenKind::LParen) {
            self.advance();
            let mut distinct = false;
            let mut args = Vec::new();
            if self.peek() != Some(&SqlTokenKind::RParen) {
                distinct = self.eat_word("DISTINCT");
                loop {
                    if self.eat(&SqlTokenKind::Star) {
                        args.push(SqlExpr::Star);
                    } else {
                        args.push(self.expr(0)?);
                    }
                    if !self.eat(&SqlTokenKind::Comma) {
                        break;
                    }
                }
            }
            // BigQuery-style `fn(x IGNORE NULLS)`.
            let mut ignore_nulls = false;
            if self.at_word("IGNORE") {
                self.expect_word("IGNORE")?;
                self.expect_word("NULLS")?;
                ignore_nulls = true;
            }
            self.expect(&SqlTokenKind::RParen)?;
            // Standard `fn(x) IGNORE NULLS`.
            if self.at_word("IGNORE") {
                self.expect_word("IGNORE")?;
                self.expect_word("NULLS")?;
                ignore_nulls = true;
            }
            if self.at_word("OVER") {
                self.expect_word("OVER")?;
                let spec = self.window_spec()?;
                return Ok(SqlExpr::WindowFunc {
                    name: first.to_ascii_uppercase(),
                    args,
                    ignore_nulls,
                    spec,
                });
            }
            if ignore_nulls {
                return Err(self.err("IGNORE NULLS requires an OVER clause"));
            }
            return Ok(SqlExpr::Func {
                name: first.to_ascii_uppercase(),
                args,
                distinct,
            });
        }
        if self.peek() == Some(&SqlTokenKind::Dot) {
            self.advance();
            let name = self.ident()?;
            return Ok(SqlExpr::Column {
                table: Some(first),
                name,
            });
        }
        Ok(SqlExpr::Column {
            table: None,
            name: first,
        })
    }

    fn window_spec(&mut self) -> Result<WindowSpec, SqlParseError> {
        self.expect(&SqlTokenKind::LParen)?;
        let mut spec = WindowSpec::default();
        if self.eat_word("PARTITION") {
            self.expect_word("BY")?;
            loop {
                spec.partition_by.push(self.expr(0)?);
                if !self.eat(&SqlTokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_word("ORDER") {
            self.expect_word("BY")?;
            spec.order_by = self.order_list()?;
        }
        if self.eat_word("ROWS") {
            self.expect_word("BETWEEN")?;
            let start = self.frame_bound()?;
            self.expect_word("AND")?;
            let end = self.frame_bound()?;
            spec.frame = Some(WindowFrame { start, end });
        }
        self.expect(&SqlTokenKind::RParen)?;
        Ok(spec)
    }

    fn frame_bound(&mut self) -> Result<FrameBound, SqlParseError> {
        if self.eat_word("UNBOUNDED") {
            if self.eat_word("PRECEDING") {
                return Ok(FrameBound::UnboundedPreceding);
            }
            self.expect_word("FOLLOWING")?;
            return Ok(FrameBound::UnboundedFollowing);
        }
        if self.eat_word("CURRENT") {
            self.expect_word("ROW")?;
            return Ok(FrameBound::CurrentRow);
        }
        let n = self.unsigned_number()?;
        if self.eat_word("PRECEDING") {
            Ok(FrameBound::Preceding(n))
        } else {
            self.expect_word("FOLLOWING")?;
            Ok(FrameBound::Following(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;
    use crate::printer::{print_query, print_statement};

    fn round_trip_query(sql: &str) {
        let q1 = parse_query(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        let printed = print_query(&q1, &Dialect::generic());
        let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        assert_eq!(q1, q2, "round trip failed:\n{sql}\n->\n{printed}");
    }

    #[test]
    fn select_basics() {
        let q = parse_query("SELECT a, b AS c FROM t WHERE a > 1").unwrap();
        if let SetExpr::Select(s) = &q.body {
            assert_eq!(s.projection.len(), 2);
            assert!(s.selection.is_some());
        } else {
            panic!("expected select");
        }
    }

    #[test]
    fn round_trips() {
        for sql in [
            "SELECT 1",
            "SELECT * FROM flights",
            "SELECT DISTINCT carrier FROM flights LIMIT 5 OFFSET 2",
            "SELECT a.x, b.y FROM a JOIN b ON a.k = b.k LEFT JOIN c ON b.k2 = c.k2",
            "SELECT x FROM t WHERE x BETWEEN 1 AND 10 AND y IN (1, 2, 3) AND z IS NOT NULL",
            "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t",
            "SELECT CASE a WHEN 1 THEN 'one' END FROM t",
            "SELECT CAST(x AS DOUBLE) FROM t",
            "SELECT COUNT(*), COUNT(DISTINCT x), SUM(y) FROM t GROUP BY z HAVING SUM(y) > 0",
            "WITH base AS (SELECT 1 AS one) SELECT one FROM base",
            "SELECT x FROM t QUALIFY ROW_NUMBER() OVER (PARTITION BY g ORDER BY o) = 1",
            "SELECT LAST_VALUE(x) IGNORE NULLS OVER (PARTITION BY g ORDER BY o ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM t",
            "SELECT SUM(x) OVER (ORDER BY o ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) FROM t",
            "SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3",
            "VALUES (1, 'a'), (2, 'b')",
            "SELECT * FROM (SELECT 1 AS x) AS sub",
            "SELECT * FROM TABLE(RESULT_SCAN('q-7')) AS r",
            "SELECT NOT a AND b, -x + 2, 'it''s' FROM t",
            "SELECT x FROM t ORDER BY x DESC NULLS LAST, y",
            "SELECT \"Mixed Case\" FROM \"Weird Table\"",
            "SELECT x LIKE 'a%' FROM t",
            "SELECT DATE '2020-01-01', TIMESTAMP '2020-01-01 12:30:00' FROM t",
            "SELECT x FROM t WHERE a NOT IN (1) AND b NOT BETWEEN 1 AND 2 AND c NOT LIKE 'x%'",
        ] {
            round_trip_query(sql);
        }
    }

    #[test]
    fn statement_round_trips() {
        for sql in [
            "CREATE TABLE t (a BIGINT, b VARCHAR)",
            "CREATE TABLE IF NOT EXISTS t (a DOUBLE)",
            "CREATE OR REPLACE TABLE m AS SELECT 1 AS x",
            "INSERT INTO t VALUES (1, 'x')",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
            "INSERT INTO t SELECT * FROM s",
            "UPDATE t SET a = 1, b = 'x' WHERE c = 2",
            "DELETE FROM t WHERE a IS NULL",
            "DROP TABLE IF EXISTS t",
        ] {
            let s1 = parse_statement(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
            let printed = print_statement(&s1, &Dialect::generic());
            let s2 =
                parse_statement(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
            assert_eq!(s1, s2, "round trip failed:\n{sql}\n->\n{printed}");
        }
    }

    #[test]
    fn precedence_matches_printer() {
        let q = parse_query("SELECT a OR b AND c = d + e * f FROM t").unwrap();
        let printed = print_query(&q, &Dialect::generic());
        // No parens needed: precedence already groups this way.
        assert!(printed.contains("a OR b AND c = d + e * f"), "{printed}");
    }

    #[test]
    fn negative_numbers_fold() {
        let q = parse_query("SELECT -3, -2.5, -x FROM t").unwrap();
        if let SetExpr::Select(s) = &q.body {
            assert!(matches!(
                &s.projection[0],
                SelectItem::Expr {
                    expr: SqlExpr::Literal(Value::Int(-3)),
                    ..
                }
            ));
            assert!(matches!(
                &s.projection[2],
                SelectItem::Expr {
                    expr: SqlExpr::Unary { .. },
                    ..
                }
            ));
        } else {
            panic!()
        }
    }

    #[test]
    fn errors_have_offsets() {
        let e = parse_query("SELECT FROM").unwrap_err();
        assert!(e.offset > 0);
        assert!(parse_query("SELECT 1 WHERE").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_statement("TRUNCATE t").is_err());
    }

    #[test]
    fn bigquery_ignore_nulls_placement_parses() {
        let q = parse_query("SELECT LAST_VALUE(x IGNORE NULLS) OVER (ORDER BY o) FROM t").unwrap();
        if let SetExpr::Select(s) = &q.body {
            assert!(matches!(
                &s.projection[0],
                SelectItem::Expr {
                    expr: SqlExpr::WindowFunc {
                        ignore_nulls: true,
                        ..
                    },
                    ..
                }
            ));
        } else {
            panic!()
        }
    }

    #[test]
    fn qualify_wrap_output_reparses() {
        // Print a QUALIFY select for Postgres and ensure the wrapped form
        // parses back (not equal structurally, but valid SQL).
        let q = parse_query("SELECT x FROM t QUALIFY ROW_NUMBER() OVER (ORDER BY x) = 1").unwrap();
        let pg = print_query(&q, &Dialect::new(crate::dialect::DialectKind::Postgres));
        parse_query(&pg).unwrap_or_else(|e| panic!("wrapped qualify reparse: {e}\n{pg}"));
    }
}
