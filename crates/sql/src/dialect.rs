//! SQL dialects.
//!
//! The paper (§2) lists the warehouses Sigma supports: "currently
//! supporting Databricks, BigQuery, PostgreSQL, Redshift and Snowflake".
//! This module captures the printer-visible differences between them for
//! the SQL subset the compiler emits. `Generic` is the dialect the bundled
//! warehouse simulator parses (a superset of the common subset: it accepts
//! QUALIFY and IGNORE NULLS directly).

/// The supported dialect family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DialectKind {
    /// The bundled CDW simulator (accepts everything the printer emits).
    Generic,
    Snowflake,
    BigQuery,
    Postgres,
    Redshift,
    Databricks,
}

impl DialectKind {
    pub fn name(self) -> &'static str {
        match self {
            DialectKind::Generic => "generic",
            DialectKind::Snowflake => "snowflake",
            DialectKind::BigQuery => "bigquery",
            DialectKind::Postgres => "postgres",
            DialectKind::Redshift => "redshift",
            DialectKind::Databricks => "databricks",
        }
    }

    pub fn parse(name: &str) -> Option<DialectKind> {
        match name.to_ascii_lowercase().as_str() {
            "generic" | "cdw" => Some(DialectKind::Generic),
            "snowflake" => Some(DialectKind::Snowflake),
            "bigquery" => Some(DialectKind::BigQuery),
            "postgres" | "postgresql" => Some(DialectKind::Postgres),
            "redshift" => Some(DialectKind::Redshift),
            "databricks" => Some(DialectKind::Databricks),
            _ => None,
        }
    }
}

/// Printer-visible dialect behaviour.
#[derive(Debug, Clone, Copy)]
pub struct Dialect {
    pub kind: DialectKind,
}

impl Dialect {
    pub fn new(kind: DialectKind) -> Dialect {
        Dialect { kind }
    }

    pub fn generic() -> Dialect {
        Dialect {
            kind: DialectKind::Generic,
        }
    }

    /// Quote an identifier. BigQuery and Databricks use backticks; the
    /// rest use double quotes. Identifiers that are safe bare are not
    /// quoted, keeping emitted SQL readable.
    pub fn quote_ident(&self, ident: &str) -> String {
        let safe = !ident.is_empty()
            && ident
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
            && ident
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            && !is_reserved(ident);
        if safe {
            return ident.to_string();
        }
        match self.kind {
            DialectKind::BigQuery | DialectKind::Databricks => {
                format!("`{}`", ident.replace('`', "``"))
            }
            _ => format!("\"{}\"", ident.replace('"', "\"\"")),
        }
    }

    /// Whether the dialect executes QUALIFY natively. Postgres lacks it;
    /// Redshift gained it only for some node types, so we treat it as
    /// unsupported there too and print a wrapping subquery instead.
    pub fn supports_qualify(&self) -> bool {
        matches!(
            self.kind,
            DialectKind::Generic
                | DialectKind::Snowflake
                | DialectKind::BigQuery
                | DialectKind::Databricks
        )
    }

    /// Whether `IGNORE NULLS` is written inside the function parens
    /// (BigQuery: `LAST_VALUE(x IGNORE NULLS)`) or after them (standard:
    /// `LAST_VALUE(x) IGNORE NULLS`).
    pub fn ignore_nulls_inside_parens(&self) -> bool {
        matches!(self.kind, DialectKind::BigQuery)
    }

    /// Whether date arithmetic uses `DATEADD(unit, n, d)` (Snowflake,
    /// Redshift, the simulator) or `DATE_ADD(d, INTERVAL n unit)`-style
    /// functions. The printer only needs the boolean because the compiler
    /// emits `DATEADD`/`DATEDIFF` in the Snowflake spelling and rewrites
    /// argument order for the other family.
    pub fn dateadd_unit_first(&self) -> bool {
        !matches!(self.kind, DialectKind::BigQuery)
    }
}

/// Keywords that must be quoted when used as identifiers.
pub fn is_reserved(ident: &str) -> bool {
    const RESERVED: &[&str] = &[
        "all",
        "and",
        "as",
        "asc",
        "between",
        "by",
        "case",
        "cast",
        "create",
        "cross",
        "delete",
        "desc",
        "distinct",
        "drop",
        "else",
        "end",
        "exists",
        "false",
        "from",
        "full",
        "group",
        "having",
        "if",
        "ignore",
        "in",
        "inner",
        "insert",
        "into",
        "is",
        "join",
        "last",
        "left",
        "like",
        "limit",
        "not",
        "null",
        "nulls",
        "offset",
        "on",
        "or",
        "order",
        "outer",
        "over",
        "partition",
        "qualify",
        "replace",
        "right",
        "rows",
        "select",
        "set",
        "table",
        "then",
        "true",
        "union",
        "update",
        "values",
        "when",
        "where",
        "with",
        "first",
        "preceding",
        "following",
        "unbounded",
        "current",
        "row",
        "range",
        "date",
        "timestamp",
        "interval",
    ];
    RESERVED.contains(&ident.to_ascii_lowercase().as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_rules() {
        let d = Dialect::generic();
        assert_eq!(d.quote_ident("flights"), "flights");
        assert_eq!(d.quote_ident("Flight Date"), "\"Flight Date\"");
        assert_eq!(d.quote_ident("select"), "\"select\"");
        assert_eq!(d.quote_ident("tail_number"), "tail_number");
        assert_eq!(d.quote_ident("Mixed"), "\"Mixed\"");
        let bq = Dialect::new(DialectKind::BigQuery);
        assert_eq!(bq.quote_ident("Flight Date"), "`Flight Date`");
    }

    #[test]
    fn qualify_support() {
        assert!(Dialect::generic().supports_qualify());
        assert!(Dialect::new(DialectKind::Snowflake).supports_qualify());
        assert!(!Dialect::new(DialectKind::Postgres).supports_qualify());
        assert!(!Dialect::new(DialectKind::Redshift).supports_qualify());
    }

    #[test]
    fn dialect_kind_parse() {
        assert_eq!(
            DialectKind::parse("PostgreSQL"),
            Some(DialectKind::Postgres)
        );
        assert_eq!(
            DialectKind::parse("snowflake"),
            Some(DialectKind::Snowflake)
        );
        assert_eq!(DialectKind::parse("oracle"), None);
    }
}
