//! SQL tokenizer.

use std::fmt;

/// One SQL token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlToken {
    pub kind: SqlTokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SqlTokenKind {
    /// Bare word: keyword, identifier, or function name.
    Word(String),
    /// `"..."` or `` `...` `` quoted identifier.
    QuotedIdent(String),
    /// Numeric literal, verbatim text.
    Number(String),
    /// `'...'` string literal ('' escapes).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    ConcatOp,
}

impl fmt::Display for SqlTokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use SqlTokenKind::*;
        match self {
            Word(s) => write!(f, "{s}"),
            QuotedIdent(s) => write!(f, "\"{s}\""),
            Number(s) => write!(f, "{s}"),
            Str(s) => write!(f, "'{s}'"),
            LParen => f.write_str("("),
            RParen => f.write_str(")"),
            Comma => f.write_str(","),
            Dot => f.write_str("."),
            Plus => f.write_str("+"),
            Minus => f.write_str("-"),
            Star => f.write_str("*"),
            Slash => f.write_str("/"),
            Percent => f.write_str("%"),
            Eq => f.write_str("="),
            NotEq => f.write_str("<>"),
            Lt => f.write_str("<"),
            LtEq => f.write_str("<="),
            Gt => f.write_str(">"),
            GtEq => f.write_str(">="),
            ConcatOp => f.write_str("||"),
        }
    }
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlLexError {
    pub message: String,
    pub offset: usize,
}

/// Tokenize SQL text. Handles `--` line comments and `/* */` blocks.
pub fn lex_sql(input: &str) -> Result<Vec<SqlToken>, SqlLexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(SqlLexError {
                            message: "unterminated block comment".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' if !bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '%' => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Percent,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::NotEq,
                    offset: start,
                });
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(SqlToken {
                        kind: SqlTokenKind::LtEq,
                        offset: start,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(SqlToken {
                        kind: SqlTokenKind::NotEq,
                        offset: start,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(SqlToken {
                        kind: SqlTokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(SqlToken {
                        kind: SqlTokenKind::GtEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(SqlToken {
                        kind: SqlTokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                tokens.push(SqlToken {
                    kind: SqlTokenKind::ConcatOp,
                    offset: start,
                });
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlLexError {
                                message: "unterminated string".into(),
                                offset: start,
                            })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            let ch = input[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Str(s),
                    offset: start,
                });
            }
            '"' | '`' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlLexError {
                                message: "unterminated quoted identifier".into(),
                                offset: start,
                            })
                        }
                        Some(&b) if b as char == quote => {
                            if bytes.get(i + 1) == Some(&(quote as u8)) {
                                s.push(quote);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            let ch = input[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(SqlToken {
                    kind: SqlTokenKind::QuotedIdent(s),
                    offset: start,
                });
            }
            _ if c.is_ascii_digit() || c == '.' => {
                let mut end = i;
                let mut saw_dot = false;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_ascii_digit() {
                        end += 1;
                    } else if b == '.' && !saw_dot {
                        saw_dot = true;
                        end += 1;
                    } else if (b == 'e' || b == 'E')
                        && end + 1 < bytes.len()
                        && (bytes[end + 1].is_ascii_digit()
                            || ((bytes[end + 1] == b'+' || bytes[end + 1] == b'-')
                                && end + 2 < bytes.len()
                                && bytes[end + 2].is_ascii_digit()))
                    {
                        end += 2;
                        while end < bytes.len() && bytes[end].is_ascii_digit() {
                            end += 1;
                        }
                        break;
                    } else {
                        break;
                    }
                }
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Number(input[i..end].to_string()),
                    offset: start,
                });
                i = end;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                tokens.push(SqlToken {
                    kind: SqlTokenKind::Word(input[i..end].to_string()),
                    offset: start,
                });
                i = end;
            }
            other => {
                return Err(SqlLexError {
                    message: format!("unexpected character {other:?}"),
                    offset: start,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<SqlTokenKind> {
        lex_sql(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_and_symbols() {
        assert_eq!(
            kinds("SELECT a.b, 1.5 FROM t"),
            vec![
                SqlTokenKind::Word("SELECT".into()),
                SqlTokenKind::Word("a".into()),
                SqlTokenKind::Dot,
                SqlTokenKind::Word("b".into()),
                SqlTokenKind::Comma,
                SqlTokenKind::Number("1.5".into()),
                SqlTokenKind::Word("FROM".into()),
                SqlTokenKind::Word("t".into()),
            ]
        );
    }

    #[test]
    fn strings_and_quoted_idents() {
        assert_eq!(
            kinds("'o''hare' \"Flight Date\" `bq col`"),
            vec![
                SqlTokenKind::Str("o'hare".into()),
                SqlTokenKind::QuotedIdent("Flight Date".into()),
                SqlTokenKind::QuotedIdent("bq col".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT -- comment\n 1 /* block\nstill */ + 2"),
            vec![
                SqlTokenKind::Word("SELECT".into()),
                SqlTokenKind::Number("1".into()),
                SqlTokenKind::Plus,
                SqlTokenKind::Number("2".into()),
            ]
        );
        assert!(lex_sql("/* unterminated").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<> != <= >= || ="),
            vec![
                SqlTokenKind::NotEq,
                SqlTokenKind::NotEq,
                SqlTokenKind::LtEq,
                SqlTokenKind::GtEq,
                SqlTokenKind::ConcatOp,
                SqlTokenKind::Eq,
            ]
        );
    }
}
