//! Query rewrites used by the service's stage-level cache: replacing
//! references to already-computed stages with `TABLE(RESULT_SCAN('<id>'))`
//! so the warehouse re-serves the persisted result set instead of
//! recomputing the stage.

use std::collections::HashMap;

use crate::ast::{Query, SetExpr, SqlExpr, TableRef};

/// Replace every single-part table reference whose (lower-cased) name is a
/// key of `scans` with a `TABLE(RESULT_SCAN('<query-id>'))` call. The
/// original binding is preserved: an aliased reference keeps its alias, an
/// unaliased one is aliased to the replaced name so qualified column
/// references still resolve. Returns how many references were rewritten.
pub fn substitute_result_scans(query: &mut Query, scans: &HashMap<String, String>) -> usize {
    let mut n = 0;
    for (_, cte) in &mut query.ctes {
        n += substitute_result_scans(cte, scans);
    }
    n += substitute_in_set(&mut query.body, scans);
    n
}

fn substitute_in_set(body: &mut SetExpr, scans: &HashMap<String, String>) -> usize {
    match body {
        SetExpr::Select(s) => {
            let mut n = 0;
            if let Some(from) = &mut s.from {
                n += substitute_table_ref(from, scans);
            }
            for j in &mut s.joins {
                n += substitute_table_ref(&mut j.relation, scans);
            }
            n
        }
        SetExpr::UnionAll(l, r) => substitute_in_set(l, scans) + substitute_in_set(r, scans),
        SetExpr::Values(_) => 0,
    }
}

fn substitute_table_ref(t: &mut TableRef, scans: &HashMap<String, String>) -> usize {
    match t {
        TableRef::Table { name, alias } => {
            if name.0.len() != 1 {
                return 0;
            }
            let key = name.0[0].to_ascii_lowercase();
            let Some(query_id) = scans.get(&key) else {
                return 0;
            };
            let binding = alias.clone().unwrap_or_else(|| name.0[0].clone());
            *t = TableRef::Function {
                name: "RESULT_SCAN".into(),
                args: vec![SqlExpr::lit(query_id.clone())],
                alias: Some(binding),
            };
            1
        }
        TableRef::Subquery { query, .. } => substitute_result_scans(query, scans),
        TableRef::Function { .. } => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;
    use crate::parser::parse_query;
    use crate::printer::print_query;

    fn scans(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn rewrites_from_and_joins_preserving_bindings() {
        let mut q = parse_query(
            "SELECT b.x, lvl1_0.y FROM base_0 AS b \
             JOIN lvl1_0 ON b.k = lvl1_0.k",
        )
        .unwrap();
        let n = substitute_result_scans(&mut q, &scans(&[("base_0", "q-1"), ("lvl1_0", "q-2")]));
        assert_eq!(n, 2);
        let sql = print_query(&q, &Dialect::generic());
        assert!(sql.contains("TABLE(RESULT_SCAN('q-1')) AS b"), "{sql}");
        assert!(sql.contains("TABLE(RESULT_SCAN('q-2')) AS lvl1_0"), "{sql}");
    }

    #[test]
    fn leaves_unmapped_and_dotted_names_alone() {
        let mut q = parse_query("SELECT x FROM db.schema.t JOIN other ON t.k = other.k").unwrap();
        let n = substitute_result_scans(&mut q, &scans(&[("t", "q-9")]));
        assert_eq!(n, 0);
        let sql = print_query(&q, &Dialect::generic());
        assert!(!sql.contains("RESULT_SCAN"), "{sql}");
    }

    #[test]
    fn reaches_subqueries() {
        let mut q =
            parse_query("SELECT x FROM (SELECT x FROM summary_0 AS s) AS sub WHERE x > 1").unwrap();
        let n = substitute_result_scans(&mut q, &scans(&[("summary_0", "q-3")]));
        assert_eq!(n, 1);
        let sql = print_query(&q, &Dialect::generic());
        assert!(sql.contains("TABLE(RESULT_SCAN('q-3')) AS s"), "{sql}");
    }
}
