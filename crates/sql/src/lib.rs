//! SQL representation shared by the workbook compiler (which emits it) and
//! the warehouse simulator (which consumes it).
//!
//! The crate deliberately models the *common subset* of the five dialects
//! the paper supports (Snowflake, BigQuery, Redshift, PostgreSQL,
//! Databricks): `WITH` pipelines of `SELECT` blocks with joins, grouping,
//! window functions (including `IGNORE NULLS`), `QUALIFY`, set operations,
//! `VALUES`, and the DDL/DML the service needs for materialization, CSV
//! upload, and edit propagation.
//!
//! Round-trip guarantee: `parse(print(ast)) == ast` for every statement the
//! printer can emit (property-tested).

pub mod ast;
pub mod dialect;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod rewrite;

pub use ast::*;
pub use dialect::{Dialect, DialectKind};
pub use parser::{parse_query, parse_statement, SqlParseError};
pub use printer::print_statement;
pub use rewrite::substitute_result_scans;
