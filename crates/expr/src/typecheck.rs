//! Type inference for formulas.
//!
//! Types are `Option<DataType>`: `None` is the type of a bare `Null`
//! literal, which unifies with anything (spreadsheets are forgiving about
//! nulls; so are the warehouses Sigma targets).

use std::fmt;

use sigma_value::{DataType, Value};

use crate::ast::{BinaryOp, ColumnRef, Formula, UnaryOp};
use crate::functions::{registry, FunctionKind};

/// Resolves column/control references to their types.
pub trait TypeEnv {
    /// Type of a reference, or `None` when the name is unknown.
    fn ref_type(&self, r: &ColumnRef) -> Option<DataType>;
}

/// A `TypeEnv` over a closure, convenient for tests and small callers.
impl<F> TypeEnv for F
where
    F: Fn(&ColumnRef) -> Option<DataType>,
{
    fn ref_type(&self, r: &ColumnRef) -> Option<DataType> {
        self(r)
    }
}

/// A type error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TypeError {}

fn err(msg: impl Into<String>) -> TypeError {
    TypeError(msg.into())
}

type Ty = Option<DataType>;

fn expect_numeric(t: Ty, ctx: &str) -> Result<(), TypeError> {
    match t {
        None => Ok(()),
        Some(d) if d.is_numeric() => Ok(()),
        Some(d) => Err(err(format!("{ctx} expects a number, found {d}"))),
    }
}

fn expect_text(t: Ty, ctx: &str) -> Result<(), TypeError> {
    match t {
        None | Some(DataType::Text) => Ok(()),
        Some(d) => Err(err(format!("{ctx} expects text, found {d}"))),
    }
}

fn expect_bool(t: Ty, ctx: &str) -> Result<(), TypeError> {
    match t {
        None | Some(DataType::Bool) => Ok(()),
        Some(d) => Err(err(format!("{ctx} expects a condition, found {d}"))),
    }
}

fn expect_temporal(t: Ty, ctx: &str) -> Result<(), TypeError> {
    match t {
        None => Ok(()),
        Some(d) if d.is_temporal() => Ok(()),
        Some(d) => Err(err(format!("{ctx} expects a date or timestamp, found {d}"))),
    }
}

/// Unify two optional types, or fail with context.
fn unify(a: Ty, b: Ty, ctx: &str) -> Result<Ty, TypeError> {
    match (a, b) {
        (None, t) | (t, None) => Ok(t),
        (Some(x), Some(y)) => x
            .unify(y)
            .map(Some)
            .ok_or_else(|| err(format!("{ctx}: incompatible types {x} and {y}"))),
    }
}

/// Infer the result type of a formula under the environment.
pub fn infer_type(formula: &Formula, env: &dyn TypeEnv) -> Result<Ty, TypeError> {
    match formula {
        Formula::Literal(v) => Ok(match v {
            Value::Null => None,
            other => other.dtype(),
        }),
        Formula::Ref(r) => env
            .ref_type(r)
            .map(Some)
            .ok_or_else(|| err(format!("unknown column {r:?}", r = display_ref(r)))),
        Formula::Unary { op, expr } => {
            let t = infer_type(expr, env)?;
            match op {
                UnaryOp::Neg => {
                    expect_numeric(t, "unary '-'")?;
                    Ok(t.or(Some(DataType::Float)))
                }
                UnaryOp::Not => {
                    expect_bool(t, "'not'")?;
                    Ok(Some(DataType::Bool))
                }
            }
        }
        Formula::Binary { op, left, right } => {
            let lt = infer_type(left, env)?;
            let rt = infer_type(right, env)?;
            infer_binary(*op, lt, rt)
        }
        Formula::Call { func, args } => {
            let def = registry(func).ok_or_else(|| err(format!("unknown function {func}")))?;
            let tys: Vec<Ty> = args
                .iter()
                .map(|a| infer_type(a, env))
                .collect::<Result<_, _>>()?;
            infer_call(def.name, def.kind, &tys, args)
        }
    }
}

fn display_ref(r: &ColumnRef) -> String {
    match &r.element {
        Some(el) => format!("[{el}/{}]", r.name),
        None => format!("[{}]", r.name),
    }
}

fn infer_binary(op: BinaryOp, lt: Ty, rt: Ty) -> Result<Ty, TypeError> {
    use BinaryOp::*;
    match op {
        Add | Sub => {
            // Date arithmetic: date +/- int, date - date.
            match (lt, rt) {
                (Some(d), Some(DataType::Int)) if d.is_temporal() => return Ok(Some(d)),
                (Some(DataType::Int), Some(d)) if d.is_temporal() && op == Add => {
                    return Ok(Some(d))
                }
                (Some(a), Some(b)) if a.is_temporal() && b.is_temporal() && op == Sub => {
                    return Ok(Some(DataType::Int))
                }
                _ => {}
            }
            expect_numeric(lt, op.symbol())?;
            expect_numeric(rt, op.symbol())?;
            match (lt, rt) {
                (Some(DataType::Int), Some(DataType::Int)) => Ok(Some(DataType::Int)),
                _ => Ok(Some(DataType::Float)),
            }
        }
        Mul | Mod => {
            expect_numeric(lt, op.symbol())?;
            expect_numeric(rt, op.symbol())?;
            match (lt, rt) {
                (Some(DataType::Int), Some(DataType::Int)) => Ok(Some(DataType::Int)),
                _ => Ok(Some(DataType::Float)),
            }
        }
        Div | Pow => {
            expect_numeric(lt, op.symbol())?;
            expect_numeric(rt, op.symbol())?;
            Ok(Some(DataType::Float))
        }
        Concat => Ok(Some(DataType::Text)),
        Eq | Ne | Lt | Le | Gt | Ge => {
            unify(lt, rt, "comparison")?;
            Ok(Some(DataType::Bool))
        }
        And | Or => {
            expect_bool(lt, op.symbol())?;
            expect_bool(rt, op.symbol())?;
            Ok(Some(DataType::Bool))
        }
    }
}

fn infer_call(
    name: &str,
    kind: FunctionKind,
    tys: &[Ty],
    args: &[Formula],
) -> Result<Ty, TypeError> {
    let numeric_ret = |t: Ty| t.or(Some(DataType::Float));
    match name {
        // math
        "Abs" | "Round" | "Floor" | "Ceiling" | "Int" | "Sign" => {
            expect_numeric(tys[0], name)?;
            if name == "Round" && tys.len() > 1 {
                expect_numeric(tys[1], name)?;
            }
            match name {
                "Floor" | "Ceiling" | "Int" | "Sign" => Ok(Some(DataType::Int)),
                _ => Ok(numeric_ret(tys[0])),
            }
        }
        "Sqrt" | "Exp" | "Ln" | "Log" | "Power" => {
            for &t in tys {
                expect_numeric(t, name)?;
            }
            Ok(Some(DataType::Float))
        }
        "Mod" => {
            expect_numeric(tys[0], name)?;
            expect_numeric(tys[1], name)?;
            match (tys[0], tys[1]) {
                (Some(DataType::Int), Some(DataType::Int)) => Ok(Some(DataType::Int)),
                _ => Ok(Some(DataType::Float)),
            }
        }
        "Greatest" | "Least" => {
            let mut acc = None;
            for &t in tys {
                acc = unify(acc, t, name)?;
            }
            Ok(acc)
        }
        // text
        "Concat" => Ok(Some(DataType::Text)),
        "Upper" | "Lower" | "Trim" | "LTrim" | "RTrim" => {
            expect_text(tys[0], name)?;
            Ok(Some(DataType::Text))
        }
        "Len" => {
            expect_text(tys[0], name)?;
            Ok(Some(DataType::Int))
        }
        "Left" | "Right" | "Repeat" => {
            expect_text(tys[0], name)?;
            expect_numeric(tys[1], name)?;
            Ok(Some(DataType::Text))
        }
        "Mid" => {
            expect_text(tys[0], name)?;
            expect_numeric(tys[1], name)?;
            expect_numeric(tys[2], name)?;
            Ok(Some(DataType::Text))
        }
        "Contains" | "StartsWith" | "EndsWith" => {
            expect_text(tys[0], name)?;
            expect_text(tys[1], name)?;
            Ok(Some(DataType::Bool))
        }
        "Replace" => {
            for &t in &tys[..3] {
                expect_text(t, name)?;
            }
            Ok(Some(DataType::Text))
        }
        "SplitPart" => {
            expect_text(tys[0], name)?;
            expect_text(tys[1], name)?;
            expect_numeric(tys[2], name)?;
            Ok(Some(DataType::Text))
        }
        "Lpad" | "Rpad" => {
            expect_text(tys[0], name)?;
            expect_numeric(tys[1], name)?;
            if tys.len() > 2 {
                expect_text(tys[2], name)?;
            }
            Ok(Some(DataType::Text))
        }
        // logical
        "If" => {
            // If(c1, v1, [c2, v2, ...], [else]): conditions at even slots.
            let mut result = None;
            let mut i = 0;
            while i + 1 < tys.len() {
                expect_bool(tys[i], "If condition")?;
                result = unify(result, tys[i + 1], "If branches")?;
                i += 2;
            }
            if i < tys.len() {
                result = unify(result, tys[i], "If branches")?;
            }
            Ok(result)
        }
        "Switch" => {
            // Switch(expr, case, value, ..., [default]).
            let subject = tys[0];
            let mut result = None;
            let mut i = 1;
            while i + 1 < tys.len() {
                unify(subject, tys[i], "Switch case")?;
                result = unify(result, tys[i + 1], "Switch values")?;
                i += 2;
            }
            if i < tys.len() {
                result = unify(result, tys[i], "Switch values")?;
            }
            Ok(result)
        }
        "IsNull" | "IsNotNull" => Ok(Some(DataType::Bool)),
        "Coalesce" => {
            let mut acc = None;
            for &t in tys {
                acc = unify(acc, t, name)?;
            }
            Ok(acc)
        }
        "IfNull" | "Nullif" => unify(tys[0], tys[1], name),
        "OneOf" => {
            for &t in &tys[1..] {
                unify(tys[0], t, name)?;
            }
            Ok(Some(DataType::Bool))
        }
        "Between" => {
            unify(unify(tys[0], tys[1], name)?, tys[2], name)?;
            Ok(Some(DataType::Bool))
        }
        // conversion
        "Number" => Ok(Some(DataType::Float)),
        "Text" => Ok(Some(DataType::Text)),
        "Date" => Ok(Some(DataType::Date)),
        "DateTime" => Ok(Some(DataType::Timestamp)),
        // date & time
        "Today" => Ok(Some(DataType::Date)),
        "Now" => Ok(Some(DataType::Timestamp)),
        "DateTrunc" => {
            expect_unit_literal(&args[0], name)?;
            expect_temporal(tys[1], name)?;
            Ok(tys[1].or(Some(DataType::Date)))
        }
        "DatePart" => {
            expect_unit_literal(&args[0], name)?;
            expect_temporal(tys[1], name)?;
            Ok(Some(DataType::Int))
        }
        "DateAdd" => {
            expect_unit_literal(&args[0], name)?;
            expect_numeric(tys[1], name)?;
            expect_temporal(tys[2], name)?;
            Ok(tys[2].or(Some(DataType::Date)))
        }
        "DateDiff" => {
            expect_unit_literal(&args[0], name)?;
            expect_temporal(tys[1], name)?;
            expect_temporal(tys[2], name)?;
            Ok(Some(DataType::Int))
        }
        "Year" | "Quarter" | "Month" | "Week" | "Day" | "Weekday" | "Hour" | "Minute"
        | "Second" => {
            expect_temporal(tys[0], name)?;
            Ok(Some(DataType::Int))
        }
        "MakeDate" => {
            for &t in tys {
                expect_numeric(t, name)?;
            }
            Ok(Some(DataType::Date))
        }
        // aggregates
        "Sum" | "Avg" | "Median" | "StdDev" | "Variance" => {
            expect_numeric(tys[0], name)?;
            match (name, tys[0]) {
                ("Sum", Some(DataType::Int)) => Ok(Some(DataType::Int)),
                _ => Ok(Some(DataType::Float)),
            }
        }
        "Percentile" => {
            expect_numeric(tys[0], name)?;
            expect_numeric(tys[1], name)?;
            Ok(Some(DataType::Float))
        }
        "Min" | "Max" | "ATTR" => Ok(tys[0]),
        "Count" | "CountDistinct" | "CountIf" => {
            if name == "CountIf" {
                expect_bool(tys[0], name)?;
            }
            Ok(Some(DataType::Int))
        }
        "SumIf" | "AvgIf" | "MinIf" | "MaxIf" => {
            expect_bool(tys[0], name)?;
            match name {
                "SumIf" => {
                    expect_numeric(tys[1], name)?;
                    match tys[1] {
                        Some(DataType::Int) => Ok(Some(DataType::Int)),
                        _ => Ok(Some(DataType::Float)),
                    }
                }
                "AvgIf" => {
                    expect_numeric(tys[1], name)?;
                    Ok(Some(DataType::Float))
                }
                _ => Ok(tys[1]),
            }
        }
        // window
        "RowNumber" | "Rank" | "DenseRank" | "RunningCount" => Ok(Some(DataType::Int)),
        "Ntile" => {
            expect_numeric(tys[0], name)?;
            Ok(Some(DataType::Int))
        }
        "Lag" | "Lead" => {
            if tys.len() > 1 {
                expect_numeric(tys[1], name)?;
            }
            let mut t = tys[0];
            if tys.len() > 2 {
                t = unify(t, tys[2], name)?;
            }
            Ok(t)
        }
        "First" | "Last" | "FillDown" | "FillUp" => Ok(tys[0]),
        "Nth" => {
            expect_numeric(tys[1], name)?;
            Ok(tys[0])
        }
        "RunningSum" | "RunningAvg" | "MovingAvg" | "MovingSum" => {
            expect_numeric(tys[0], name)?;
            for &t in &tys[1..] {
                expect_numeric(t, name)?;
            }
            match (name, tys[0]) {
                ("RunningSum" | "MovingSum", Some(DataType::Int)) => Ok(Some(DataType::Int)),
                _ => Ok(Some(DataType::Float)),
            }
        }
        "RunningMin" | "RunningMax" => Ok(tys[0]),
        "MovingMin" | "MovingMax" => {
            for &t in &tys[1..] {
                expect_numeric(t, name)?;
            }
            Ok(tys[0])
        }
        // special: Lookup(expr, localKey, targetKey, ...) pairs after arg 0.
        "Lookup" | "Rollup" => {
            if !(tys.len() - 1).is_multiple_of(2) {
                return Err(err(format!(
                    "{name} expects key pairs after the first argument"
                )));
            }
            let mut i = 1;
            while i < tys.len() {
                unify(tys[i], tys[i + 1], &format!("{name} join key"))?;
                i += 2;
            }
            Ok(tys[0])
        }
        other => {
            debug_assert!(false, "registry function {other} missing a type rule");
            let _ = kind;
            Err(err(format!("no type rule for {other}")))
        }
    }
}

/// Date unit arguments must be string literals naming a valid unit, so the
/// compiler can resolve them statically.
fn expect_unit_literal(arg: &Formula, ctx: &str) -> Result<(), TypeError> {
    match arg {
        Formula::Literal(Value::Text(s)) => {
            if sigma_value::calendar::DateUnit::parse(s).is_some() {
                Ok(())
            } else {
                Err(err(format!("{ctx}: unknown date unit {s:?}")))
            }
        }
        _ => Err(err(format!(
            "{ctx}: the unit must be a string literal like \"quarter\""
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn env(r: &ColumnRef) -> Option<DataType> {
        match r.name.as_str() {
            "Revenue" | "Dep Delay" => Some(DataType::Float),
            "Flights" | "Seats" => Some(DataType::Int),
            "Carrier" | "Origin" => Some(DataType::Text),
            "Flight Date" => Some(DataType::Date),
            "Cancelled" => Some(DataType::Bool),
            _ => None,
        }
    }

    fn t(src: &str) -> Result<Ty, TypeError> {
        infer_type(&parse_formula(src).unwrap(), &env)
    }

    #[test]
    fn arithmetic_types() {
        assert_eq!(t("Flights + Seats").unwrap(), Some(DataType::Int));
        assert_eq!(t("Flights + Revenue").unwrap(), Some(DataType::Float));
        assert_eq!(t("Flights / Seats").unwrap(), Some(DataType::Float));
        assert!(t("Carrier + 1").is_err());
    }

    #[test]
    fn date_arithmetic() {
        assert_eq!(t("[Flight Date] + 1").unwrap(), Some(DataType::Date));
        assert_eq!(
            t("[Flight Date] - [Flight Date]").unwrap(),
            Some(DataType::Int)
        );
        assert!(t("[Flight Date] * 2").is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(t("Revenue > 100").unwrap(), Some(DataType::Bool));
        assert_eq!(
            t("Cancelled and Revenue > 0").unwrap(),
            Some(DataType::Bool)
        );
        assert!(t("Revenue and Cancelled").is_err());
        assert!(t("Carrier > 5").is_err());
        assert_eq!(t("Carrier = \"AA\"").unwrap(), Some(DataType::Bool));
    }

    #[test]
    fn if_branches_unify() {
        assert_eq!(t("If(Cancelled, 1, 0)").unwrap(), Some(DataType::Int));
        assert_eq!(t("If(Cancelled, 1, 0.5)").unwrap(), Some(DataType::Float));
        assert_eq!(t("If(Cancelled, Null, 3)").unwrap(), Some(DataType::Int));
        assert!(t("If(Cancelled, 1, \"x\")").is_err());
        assert!(t("If(Revenue, 1, 2)").is_err());
        // Multi-branch.
        assert_eq!(
            t("If(Revenue > 10, \"hi\", Revenue > 5, \"mid\", \"lo\")").unwrap(),
            Some(DataType::Text)
        );
    }

    #[test]
    fn aggregates() {
        assert_eq!(t("Sum(Flights)").unwrap(), Some(DataType::Int));
        assert_eq!(t("Sum(Revenue)").unwrap(), Some(DataType::Float));
        assert_eq!(t("Avg(Flights)").unwrap(), Some(DataType::Float));
        assert_eq!(t("Count()").unwrap(), Some(DataType::Int));
        assert_eq!(t("CountDistinct(Carrier)").unwrap(), Some(DataType::Int));
        assert_eq!(t("Min([Flight Date])").unwrap(), Some(DataType::Date));
        assert!(t("Sum(Carrier)").is_err());
        assert_eq!(t("SumIf(Cancelled, Flights)").unwrap(), Some(DataType::Int));
    }

    #[test]
    fn window_types() {
        assert_eq!(t("Lag([Flight Date], 1)").unwrap(), Some(DataType::Date));
        assert_eq!(t("FillDown(Carrier)").unwrap(), Some(DataType::Text));
        assert_eq!(t("RowNumber()").unwrap(), Some(DataType::Int));
        assert_eq!(t("MovingAvg(Revenue, 3)").unwrap(), Some(DataType::Float));
        assert!(t("MovingAvg(Carrier, 3)").is_err());
    }

    #[test]
    fn date_units_must_be_literal() {
        assert_eq!(
            t("DateTrunc(\"quarter\", [Flight Date])").unwrap(),
            Some(DataType::Date)
        );
        assert!(t("DateTrunc(Carrier, [Flight Date])").is_err());
        assert!(t("DateTrunc(\"fortnight\", [Flight Date])").is_err());
    }

    #[test]
    fn unknown_column_is_error() {
        assert!(t("[No Such Column] + 1").is_err());
    }

    #[test]
    fn lookup_pairs_checked() {
        let env2 = |r: &ColumnRef| match (r.element.as_deref(), r.name.as_str()) {
            (Some("Airports"), "Code") => Some(DataType::Text),
            (Some("Airports"), "Name") => Some(DataType::Text),
            (None, "Origin") => Some(DataType::Text),
            _ => None,
        };
        let f = parse_formula("Lookup([Airports/Name], Origin, [Airports/Code])").unwrap();
        assert_eq!(infer_type(&f, &env2).unwrap(), Some(DataType::Text));
        // Odd number of key args.
        let g = parse_formula("Lookup([Airports/Name], Origin, [Airports/Code], Origin)").unwrap();
        assert!(infer_type(&g, &env2).is_err());
    }
}
