//! Tokenizer for the formula language.

use std::fmt;

/// A lexical token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal (no decimal point or exponent).
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// `"..."` string; doubled quotes escape.
    Str(String),
    /// Bare identifier (function name, column ref, or keyword).
    Ident(String),
    /// `[...]` bracketed reference, verbatim interior.
    Bracket(String),
    LParen,
    RParen,
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Caret,
    Amp,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Bracket(s) => write!(f, "[{s}]"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Caret => f.write_str("^"),
            TokenKind::Amp => f.write_str("&"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::Ne => f.write_str("!="),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::AndAnd => f.write_str("&&"),
            TokenKind::OrOr => f.write_str("||"),
            TokenKind::Bang => f.write_str("!"),
        }
    }
}

/// A lexing failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

/// Tokenize a formula.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    offset: start,
                });
                i += 1;
            }
            '^' => {
                tokens.push(Token {
                    kind: TokenKind::Caret,
                    offset: start,
                });
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token {
                        kind: TokenKind::AndAnd,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Amp,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token {
                        kind: TokenKind::OrOr,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "unexpected '|'".into(),
                        offset: start,
                    });
                }
            }
            '=' => {
                // Accept both `=` and `==`.
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Bang,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                message: "unterminated string".into(),
                                offset: start,
                            })
                        }
                        Some(&b'"') => {
                            if bytes.get(i + 1) == Some(&b'"') {
                                s.push('"');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar.
                            let rest = &input[i..];
                            let ch = rest.chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            '[' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                message: "unterminated [reference]".into(),
                                offset: start,
                            })
                        }
                        Some(&b']') => {
                            i += 1;
                            break;
                        }
                        Some(&b'[') => {
                            return Err(LexError {
                                message: "nested '[' in reference".into(),
                                offset: i,
                            })
                        }
                        Some(_) => {
                            let rest = &input[i..];
                            let ch = rest.chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                if s.trim().is_empty() {
                    return Err(LexError {
                        message: "empty [reference]".into(),
                        offset: start,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Bracket(s.trim().to_string()),
                    offset: start,
                });
            }
            _ if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let mut end = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_ascii_digit() {
                        end += 1;
                    } else if b == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        end += 1;
                    } else if (b == 'e' || b == 'E')
                        && !saw_exp
                        && end + 1 < bytes.len()
                        && (bytes[end + 1].is_ascii_digit()
                            || ((bytes[end + 1] == b'+' || bytes[end + 1] == b'-')
                                && end + 2 < bytes.len()
                                && bytes[end + 2].is_ascii_digit()))
                    {
                        saw_exp = true;
                        end += 2; // consume 'e' and sign/first digit
                        while end < bytes.len() && bytes[end].is_ascii_digit() {
                            end += 1;
                        }
                        break;
                    } else {
                        break;
                    }
                }
                let text = &input[i..end];
                let kind = if saw_dot || saw_exp {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad number {text:?}"),
                        offset: start,
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => TokenKind::Int(v),
                        // Overflowing integers degrade to floats.
                        Err(_) => TokenKind::Float(text.parse().map_err(|_| LexError {
                            message: format!("bad number {text:?}"),
                            offset: start,
                        })?),
                    }
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = end;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[i..end].to_string()),
                    offset: start,
                });
                i = end;
            }
            _ => {
                return Err(LexError {
                    message: format!("unexpected character {c:?}"),
                    offset: start,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42)]);
        assert_eq!(kinds("4.5"), vec![TokenKind::Float(4.5)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        assert_eq!(kinds("2.5e-1"), vec![TokenKind::Float(0.25)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Float(0.5)]);
        // Overflow degrades to float.
        assert!(matches!(
            kinds("99999999999999999999")[0],
            TokenKind::Float(_)
        ));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("\"he said \"\"hi\"\"\""),
            vec![TokenKind::Str("he said \"hi\"".into())]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn brackets() {
        assert_eq!(
            kinds("[Flight Date]"),
            vec![TokenKind::Bracket("Flight Date".into())]
        );
        assert_eq!(
            kinds("[Flights/Tail Number]"),
            vec![TokenKind::Bracket("Flights/Tail Number".into())]
        );
        assert!(lex("[oops").is_err());
        assert!(lex("[]").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a <= b != c <> d == e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::Ne,
                TokenKind::Ident("c".into()),
                TokenKind::Ne,
                TokenKind::Ident("d".into()),
                TokenKind::Eq,
                TokenKind::Ident("e".into()),
            ]
        );
        assert_eq!(
            kinds("&& || &"),
            vec![TokenKind::AndAnd, TokenKind::OrOr, TokenKind::Amp]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("#").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn unicode_in_strings_and_brackets() {
        assert_eq!(kinds("\"héllo\""), vec![TokenKind::Str("héllo".into())]);
        assert_eq!(kinds("[Ça va]"), vec![TokenKind::Bracket("Ça va".into())]);
    }
}
