//! Formula AST and its canonical, round-trippable textual form.

use std::fmt;

use serde::{Deserialize, Serialize};
use sigma_value::Value;

/// A reference to a column — `[Name]`, a bare identifier, or a qualified
/// `[Element/Name]` reference to another workbook element (only meaningful
/// inside `Lookup`/`Rollup` arguments). Controls are referenced with the
/// same syntax and resolved against the control namespace when no column
/// matches.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Target element name for qualified refs (`[Flights/Tail Number]`).
    pub element: Option<String>,
    pub name: String,
}

impl ColumnRef {
    pub fn local(name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            element: None,
            name: name.into(),
        }
    }

    pub fn qualified(element: impl Into<String>, name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            element: Some(element.into()),
            name: name.into(),
        }
    }
}

/// Binary operators, in the order users write them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    /// `&` — text concatenation.
    Concat,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinaryOp {
    /// Parser/printer precedence; higher binds tighter.
    pub fn precedence(self) -> u8 {
        use BinaryOp::*;
        match self {
            Or => 1,
            And => 2,
            Eq | Ne | Lt | Le | Gt | Ge => 4,
            Concat => 5,
            Add | Sub => 6,
            Mul | Div | Mod => 7,
            Pow => 9,
        }
    }

    /// Pow is right-associative; all others are left-associative.
    pub fn right_assoc(self) -> bool {
        matches!(self, BinaryOp::Pow)
    }

    pub fn symbol(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Pow => "^",
            Concat => "&",
            Eq => "=",
            Ne => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            And => "and",
            Or => "or",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// A parsed formula.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Formula {
    Literal(Value),
    Ref(ColumnRef),
    Unary {
        op: UnaryOp,
        expr: Box<Formula>,
    },
    Binary {
        op: BinaryOp,
        left: Box<Formula>,
        right: Box<Formula>,
    },
    /// Function call; `func` holds the registry's canonical casing.
    Call {
        func: String,
        args: Vec<Formula>,
    },
}

impl Formula {
    pub fn lit(v: impl Into<Value>) -> Formula {
        Formula::Literal(v.into())
    }

    pub fn col(name: impl Into<String>) -> Formula {
        Formula::Ref(ColumnRef::local(name))
    }

    pub fn call(func: impl Into<String>, args: Vec<Formula>) -> Formula {
        Formula::Call {
            func: func.into(),
            args,
        }
    }

    pub fn binary(op: BinaryOp, left: Formula, right: Formula) -> Formula {
        Formula::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Printer precedence of this node (atoms are maximal). Negative
    /// numeric literals print with a leading `-`, so they carry unary-minus
    /// precedence — `(-2) ^ x` must keep its parentheses.
    fn precedence(&self) -> u8 {
        match self {
            Formula::Binary { op, .. } => op.precedence(),
            Formula::Unary {
                op: UnaryOp::Neg, ..
            } => 8,
            Formula::Unary {
                op: UnaryOp::Not, ..
            } => 3,
            Formula::Literal(Value::Int(i)) if *i < 0 => 8,
            Formula::Literal(Value::Float(f)) if *f < 0.0 => 8,
            _ => 10,
        }
    }
}

/// True when a name can be written bare (identifier) rather than `[..]`.
pub fn is_bare_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == '_') {
        return false;
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return false;
    }
    // Keywords must be bracketed to be treated as refs.
    !matches!(
        name.to_ascii_lowercase().as_str(),
        "and" | "or" | "not" | "true" | "false" | "null"
    )
}

fn write_ref(f: &mut fmt::Formatter<'_>, r: &ColumnRef) -> fmt::Result {
    match &r.element {
        Some(el) => write!(f, "[{}/{}]", el, r.name),
        None => {
            if is_bare_identifier(&r.name) {
                f.write_str(&r.name)
            } else {
                write!(f, "[{}]", r.name)
            }
        }
    }
}

fn write_literal(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    match v {
        Value::Null => f.write_str("Null"),
        Value::Bool(true) => f.write_str("True"),
        Value::Bool(false) => f.write_str("False"),
        Value::Int(i) => write!(f, "{i}"),
        Value::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                write!(f, "{x:.1}")
            } else {
                write!(f, "{x}")
            }
        }
        Value::Text(s) => write!(f, "\"{}\"", s.replace('"', "\"\"")),
        // Date/timestamp literals only arise from control binding; they
        // print as constructor calls so the text stays parseable.
        Value::Date(_) => write!(f, "Date(\"{}\")", v.render()),
        Value::Timestamp(_) => write!(f, "DateTime(\"{}\")", v.render()),
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Literal(v) => write_literal(f, v),
            Formula::Ref(r) => write_ref(f, r),
            Formula::Unary { op, expr } => {
                let sym = match op {
                    UnaryOp::Neg => "-",
                    UnaryOp::Not => "not ",
                };
                f.write_str(sym)?;
                if expr.precedence() < self.precedence() {
                    write!(f, "({expr})")
                } else {
                    write!(f, "{expr}")
                }
            }
            Formula::Binary { op, left, right } => {
                let p = op.precedence();
                // Parenthesize a child when it binds looser, or equally on
                // the side where associativity would regroup it.
                let left_needs =
                    left.precedence() < p || (left.precedence() == p && op.right_assoc());
                let right_needs =
                    right.precedence() < p || (right.precedence() == p && !op.right_assoc());
                if left_needs {
                    write!(f, "({left})")?;
                } else {
                    write!(f, "{left}")?;
                }
                write!(f, " {} ", op.symbol())?;
                if right_needs {
                    write!(f, "({right})")
                } else {
                    write!(f, "{right}")
                }
            }
            Formula::Call { func, args } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_brackets_when_needed() {
        assert_eq!(Formula::col("Revenue").to_string(), "Revenue");
        assert_eq!(Formula::col("Flight Date").to_string(), "[Flight Date]");
        assert_eq!(Formula::col("and").to_string(), "[and]");
        assert_eq!(
            Formula::Ref(ColumnRef::qualified("Flights", "Tail Number")).to_string(),
            "[Flights/Tail Number]"
        );
    }

    #[test]
    fn display_parenthesization() {
        // (a + b) * c needs parens; a + b * c does not.
        let sum = Formula::binary(BinaryOp::Add, Formula::col("a"), Formula::col("b"));
        let f = Formula::binary(BinaryOp::Mul, sum.clone(), Formula::col("c"));
        assert_eq!(f.to_string(), "(a + b) * c");
        let g = Formula::binary(
            BinaryOp::Add,
            Formula::col("a"),
            Formula::binary(BinaryOp::Mul, Formula::col("b"), Formula::col("c")),
        );
        assert_eq!(g.to_string(), "a + b * c");
        // Left-assoc: a - (b - c) keeps parens, (a - b) - c drops them.
        let h = Formula::binary(
            BinaryOp::Sub,
            Formula::col("a"),
            Formula::binary(BinaryOp::Sub, Formula::col("b"), Formula::col("c")),
        );
        assert_eq!(h.to_string(), "a - (b - c)");
    }

    #[test]
    fn display_literals() {
        assert_eq!(Formula::lit(3i64).to_string(), "3");
        assert_eq!(Formula::lit(2.5).to_string(), "2.5");
        assert_eq!(Formula::lit(2.0).to_string(), "2.0");
        assert_eq!(
            Formula::lit("he said \"hi\"").to_string(),
            "\"he said \"\"hi\"\"\""
        );
        assert_eq!(Formula::Literal(Value::Null).to_string(), "Null");
    }
}
