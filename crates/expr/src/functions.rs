//! The function registry: every function the formula language supports,
//! with its category (single-row, aggregate, window, special — paper §3.1)
//! and arity. Type rules live in [`crate::typecheck`].

/// Function category. The compiler keys lowering decisions on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionKind {
    /// Single-row (scalar) function.
    Scalar,
    /// Aggregate over the rows of the next finer grouping level.
    Aggregate,
    /// Window function over the rows of the enclosing partition.
    Window,
    /// `Lookup` / `Rollup`: ad-hoc joins against another element (§3.2).
    Special,
}

/// Registry entry for one function.
#[derive(Debug, Clone, Copy)]
pub struct FunctionDef {
    /// Canonical casing, as printed in formulas.
    pub name: &'static str,
    pub kind: FunctionKind,
    pub min_args: usize,
    /// `None` means variadic.
    pub max_args: Option<usize>,
    /// One-line description surfaced in docs and error messages.
    pub doc: &'static str,
}

const fn f(
    name: &'static str,
    kind: FunctionKind,
    min_args: usize,
    max_args: Option<usize>,
    doc: &'static str,
) -> FunctionDef {
    FunctionDef {
        name,
        kind,
        min_args,
        max_args,
        doc,
    }
}

use FunctionKind::{Aggregate, Scalar, Special, Window};

/// Every supported function. Kept sorted by category for readability.
pub static FUNCTIONS: &[FunctionDef] = &[
    // --- math ---
    f("Abs", Scalar, 1, Some(1), "Absolute value"),
    f("Round", Scalar, 1, Some(2), "Round to N digits (default 0)"),
    f("Floor", Scalar, 1, Some(1), "Round down to integer"),
    f("Ceiling", Scalar, 1, Some(1), "Round up to integer"),
    f(
        "Int",
        Scalar,
        1,
        Some(1),
        "Truncate toward negative infinity",
    ),
    f("Sqrt", Scalar, 1, Some(1), "Square root"),
    f("Exp", Scalar, 1, Some(1), "e raised to the argument"),
    f("Ln", Scalar, 1, Some(1), "Natural logarithm"),
    f("Log", Scalar, 1, Some(2), "Logarithm base 10, or base N"),
    f("Power", Scalar, 2, Some(2), "x raised to y"),
    f("Mod", Scalar, 2, Some(2), "Remainder of x / y"),
    f("Sign", Scalar, 1, Some(1), "-1, 0, or 1"),
    f("Greatest", Scalar, 1, None, "Largest of the arguments"),
    f("Least", Scalar, 1, None, "Smallest of the arguments"),
    // --- text ---
    f("Concat", Scalar, 1, None, "Concatenate as text"),
    f("Upper", Scalar, 1, Some(1), "Uppercase"),
    f("Lower", Scalar, 1, Some(1), "Lowercase"),
    f(
        "Trim",
        Scalar,
        1,
        Some(1),
        "Strip leading/trailing whitespace",
    ),
    f("LTrim", Scalar, 1, Some(1), "Strip leading whitespace"),
    f("RTrim", Scalar, 1, Some(1), "Strip trailing whitespace"),
    f("Len", Scalar, 1, Some(1), "Length in characters"),
    f("Left", Scalar, 2, Some(2), "First N characters"),
    f("Right", Scalar, 2, Some(2), "Last N characters"),
    f(
        "Mid",
        Scalar,
        3,
        Some(3),
        "Substring(start 1-based, length)",
    ),
    f(
        "Contains",
        Scalar,
        2,
        Some(2),
        "True if text contains the fragment",
    ),
    f(
        "StartsWith",
        Scalar,
        2,
        Some(2),
        "True if text starts with the fragment",
    ),
    f(
        "EndsWith",
        Scalar,
        2,
        Some(2),
        "True if text ends with the fragment",
    ),
    f("Replace", Scalar, 3, Some(3), "Replace every occurrence"),
    f(
        "SplitPart",
        Scalar,
        3,
        Some(3),
        "Nth field after splitting on a delimiter",
    ),
    f(
        "Lpad",
        Scalar,
        2,
        Some(3),
        "Left-pad to length (pad text defaults to space)",
    ),
    f("Rpad", Scalar, 2, Some(3), "Right-pad to length"),
    f("Repeat", Scalar, 2, Some(2), "Repeat text N times"),
    // --- logical / null handling ---
    f(
        "If",
        Scalar,
        2,
        None,
        "If(cond, value, [cond2, value2, ...], [else])",
    ),
    f(
        "Switch",
        Scalar,
        3,
        None,
        "Switch(expr, case, value, ..., [default])",
    ),
    f(
        "IsNull",
        Scalar,
        1,
        Some(1),
        "True when the argument is null",
    ),
    f(
        "IsNotNull",
        Scalar,
        1,
        Some(1),
        "True when the argument is not null",
    ),
    f("Coalesce", Scalar, 1, None, "First non-null argument"),
    f(
        "IfNull",
        Scalar,
        2,
        Some(2),
        "Second argument when the first is null",
    ),
    f(
        "Nullif",
        Scalar,
        2,
        Some(2),
        "Null when the arguments are equal",
    ),
    f(
        "OneOf",
        Scalar,
        2,
        None,
        "True when the first argument equals any other",
    ),
    f("Between", Scalar, 3, Some(3), "True when low <= x <= high"),
    // --- conversion ---
    f("Number", Scalar, 1, Some(1), "Convert to a number"),
    f("Text", Scalar, 1, Some(1), "Convert to text"),
    f(
        "Date",
        Scalar,
        1,
        Some(1),
        "Convert text/timestamp to a date",
    ),
    f(
        "DateTime",
        Scalar,
        1,
        Some(1),
        "Convert text/date to a timestamp",
    ),
    // --- date & time ---
    f("Today", Scalar, 0, Some(0), "Current date (session clock)"),
    f(
        "Now",
        Scalar,
        0,
        Some(0),
        "Current timestamp (session clock)",
    ),
    f(
        "DateTrunc",
        Scalar,
        2,
        Some(2),
        "Truncate to a unit: DateTrunc(\"quarter\", d)",
    ),
    f("DatePart", Scalar, 2, Some(2), "Extract a unit as a number"),
    f("DateAdd", Scalar, 3, Some(3), "DateAdd(\"month\", n, d)"),
    f(
        "DateDiff",
        Scalar,
        3,
        Some(3),
        "Unit boundaries crossed between two dates",
    ),
    f("Year", Scalar, 1, Some(1), "Year number"),
    f("Quarter", Scalar, 1, Some(1), "Quarter number (1-4)"),
    f("Month", Scalar, 1, Some(1), "Month number (1-12)"),
    f("Week", Scalar, 1, Some(1), "ISO week number"),
    f("Day", Scalar, 1, Some(1), "Day of month"),
    f("Weekday", Scalar, 1, Some(1), "Day of week (1 = Sunday)"),
    f("Hour", Scalar, 1, Some(1), "Hour of day"),
    f("Minute", Scalar, 1, Some(1), "Minute of hour"),
    f("Second", Scalar, 1, Some(1), "Second of minute"),
    f("MakeDate", Scalar, 3, Some(3), "Date from year, month, day"),
    // --- aggregates ---
    f("Sum", Aggregate, 1, Some(1), "Sum of non-null values"),
    f("Avg", Aggregate, 1, Some(1), "Mean of non-null values"),
    f("Min", Aggregate, 1, Some(1), "Smallest value"),
    f("Max", Aggregate, 1, Some(1), "Largest value"),
    f(
        "Count",
        Aggregate,
        0,
        Some(1),
        "Row count, or non-null count of the argument",
    ),
    f(
        "CountDistinct",
        Aggregate,
        1,
        Some(1),
        "Distinct non-null count",
    ),
    f(
        "CountIf",
        Aggregate,
        1,
        Some(1),
        "Rows where the condition holds",
    ),
    f("SumIf", Aggregate, 2, Some(2), "SumIf(cond, value)"),
    f("AvgIf", Aggregate, 2, Some(2), "AvgIf(cond, value)"),
    f("MinIf", Aggregate, 2, Some(2), "MinIf(cond, value)"),
    f("MaxIf", Aggregate, 2, Some(2), "MaxIf(cond, value)"),
    f("Median", Aggregate, 1, Some(1), "Median of non-null values"),
    f("StdDev", Aggregate, 1, Some(1), "Sample standard deviation"),
    f("Variance", Aggregate, 1, Some(1), "Sample variance"),
    f(
        "Percentile",
        Aggregate,
        2,
        Some(2),
        "Continuous percentile: Percentile(x, 0.9)",
    ),
    f(
        "ATTR",
        Aggregate,
        1,
        Some(1),
        "The single value if unique, else null",
    ),
    // --- window ---
    f(
        "RowNumber",
        Window,
        0,
        Some(0),
        "1-based position within the partition",
    ),
    f(
        "Rank",
        Window,
        0,
        Some(0),
        "Rank with gaps, by the level ordering",
    ),
    f("DenseRank", Window, 0, Some(0), "Rank without gaps"),
    f(
        "Ntile",
        Window,
        1,
        Some(1),
        "Bucket number of N equal-height buckets",
    ),
    f(
        "Lag",
        Window,
        1,
        Some(3),
        "Value from an earlier row: Lag(x, [offset], [default])",
    ),
    f("Lead", Window, 1, Some(3), "Value from a later row"),
    f("First", Window, 1, Some(1), "First value in the partition"),
    f("Last", Window, 1, Some(1), "Last value in the partition"),
    f(
        "Nth",
        Window,
        2,
        Some(2),
        "Nth value in the partition (1-based)",
    ),
    f("RunningSum", Window, 1, Some(1), "Cumulative sum"),
    f("RunningAvg", Window, 1, Some(1), "Cumulative mean"),
    f("RunningMin", Window, 1, Some(1), "Cumulative minimum"),
    f("RunningMax", Window, 1, Some(1), "Cumulative maximum"),
    f("RunningCount", Window, 0, Some(1), "Cumulative count"),
    f(
        "MovingAvg",
        Window,
        2,
        Some(3),
        "Mean over a row window: MovingAvg(x, back, [fwd])",
    ),
    f("MovingSum", Window, 2, Some(3), "Sum over a row window"),
    f("MovingMin", Window, 2, Some(3), "Min over a row window"),
    f("MovingMax", Window, 2, Some(3), "Max over a row window"),
    f(
        "FillDown",
        Window,
        1,
        Some(1),
        "Last non-null value at or before this row",
    ),
    f(
        "FillUp",
        Window,
        1,
        Some(1),
        "First non-null value at or after this row",
    ),
    // --- special (ad-hoc joins, §3.2) ---
    f(
        "Lookup",
        Special,
        3,
        None,
        "Lookup(targetExpr, localKey, targetKey, ...): foreign-key left join",
    ),
    f(
        "Rollup",
        Special,
        3,
        None,
        "Rollup(aggExpr, localKey, targetKey, ...): aggregate over the join target",
    ),
];

/// Look up a function by name (case-insensitive). Returns the registry
/// entry, whose `name` field carries the canonical casing.
pub fn registry(name: &str) -> Option<&'static FunctionDef> {
    FUNCTIONS.iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(registry("sum").unwrap().name, "Sum");
        assert_eq!(registry("COUNTDISTINCT").unwrap().name, "CountDistinct");
        assert!(registry("NoSuchFn").is_none());
    }

    #[test]
    fn no_duplicate_names() {
        for (i, a) in FUNCTIONS.iter().enumerate() {
            for b in &FUNCTIONS[i + 1..] {
                assert!(
                    !a.name.eq_ignore_ascii_case(b.name),
                    "duplicate function {}",
                    a.name
                );
            }
        }
    }

    #[test]
    fn arity_ranges_consistent() {
        for d in FUNCTIONS {
            if let Some(max) = d.max_args {
                assert!(d.min_args <= max, "{} has inverted arity", d.name);
            }
        }
    }

    #[test]
    fn kinds_cover_paper_categories() {
        assert!(FUNCTIONS.iter().any(|d| d.kind == FunctionKind::Scalar));
        assert!(FUNCTIONS.iter().any(|d| d.kind == FunctionKind::Aggregate));
        assert!(FUNCTIONS.iter().any(|d| d.kind == FunctionKind::Window));
        assert_eq!(
            FUNCTIONS
                .iter()
                .filter(|d| d.kind == FunctionKind::Special)
                .count(),
            2
        );
    }
}
