//! Recursive-descent (Pratt) parser for formulas.

use std::fmt;

use sigma_value::Value;

use crate::ast::{BinaryOp, ColumnRef, Formula, UnaryOp};
use crate::functions::registry;
use crate::lexer::{lex, LexError, Token, TokenKind};

/// A parse failure with offset information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parse a formula from text.
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let expr = p.parse_expr(0)?;
    if let Some(tok) = p.peek() {
        return Err(ParseError {
            message: format!("unexpected token {}", tok.kind),
            offset: tok.offset,
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        let offset = self.peek().map_or(self.input_len, |t| t.offset);
        ParseError {
            message: message.into(),
            offset,
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if &t.kind == kind => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(ParseError {
                message: format!("expected {kind}, found {}", t.kind),
                offset: t.offset,
            }),
            None => Err(self.err_here(format!("expected {kind}, found end of input"))),
        }
    }

    /// Binary operator at the cursor, if any (including keyword and/or).
    fn peek_binop(&self) -> Option<BinaryOp> {
        let t = self.peek()?;
        Some(match &t.kind {
            TokenKind::Plus => BinaryOp::Add,
            TokenKind::Minus => BinaryOp::Sub,
            TokenKind::Star => BinaryOp::Mul,
            TokenKind::Slash => BinaryOp::Div,
            TokenKind::Percent => BinaryOp::Mod,
            TokenKind::Caret => BinaryOp::Pow,
            TokenKind::Amp => BinaryOp::Concat,
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::Ne => BinaryOp::Ne,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::Le => BinaryOp::Le,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::Ge => BinaryOp::Ge,
            TokenKind::AndAnd => BinaryOp::And,
            TokenKind::OrOr => BinaryOp::Or,
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("and") => BinaryOp::And,
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("or") => BinaryOp::Or,
            _ => return None,
        })
    }

    fn parse_expr(&mut self, min_prec: u8) -> Result<Formula, ParseError> {
        let mut left = self.parse_prefix()?;
        while let Some(op) = self.peek_binop() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.next();
            let next_min = if op.right_assoc() { prec } else { prec + 1 };
            let right = self.parse_expr(next_min)?;
            left = Formula::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_prefix(&mut self) -> Result<Formula, ParseError> {
        let Some(tok) = self.next() else {
            return Err(self.err_here("unexpected end of input"));
        };
        match tok.kind {
            TokenKind::Int(v) => Ok(Formula::Literal(Value::Int(v))),
            TokenKind::Float(v) => Ok(Formula::Literal(Value::Float(v))),
            TokenKind::Str(s) => Ok(Formula::Literal(Value::Text(s))),
            TokenKind::Minus => {
                // Unary minus binds tighter than mul/div but looser than ^.
                let expr = self.parse_expr(8)?;
                // Fold -literal so "-3" round-trips as a literal.
                match expr {
                    Formula::Literal(Value::Int(v)) => Ok(Formula::Literal(Value::Int(-v))),
                    Formula::Literal(Value::Float(v)) => Ok(Formula::Literal(Value::Float(-v))),
                    other => Ok(Formula::Unary {
                        op: UnaryOp::Neg,
                        expr: Box::new(other),
                    }),
                }
            }
            TokenKind::Bang => {
                let expr = self.parse_expr(3)?;
                Ok(Formula::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(expr),
                })
            }
            TokenKind::LParen => {
                let inner = self.parse_expr(0)?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Bracket(text) => Ok(Formula::Ref(parse_bracket_ref(&text))),
            TokenKind::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "true" => return Ok(Formula::Literal(Value::Bool(true))),
                    "false" => return Ok(Formula::Literal(Value::Bool(false))),
                    "null" => return Ok(Formula::Literal(Value::Null)),
                    "not" => {
                        let expr = self.parse_expr(3)?;
                        return Ok(Formula::Unary {
                            op: UnaryOp::Not,
                            expr: Box::new(expr),
                        });
                    }
                    _ => {}
                }
                if self.peek().map(|t| &t.kind) == Some(&TokenKind::LParen) {
                    // Function call. Unknown names fail here so typos
                    // surface as "unknown function", not "unknown column".
                    let Some(def) = registry(&name) else {
                        return Err(ParseError {
                            message: format!("unknown function {name}"),
                            offset: tok.offset,
                        });
                    };
                    self.next(); // consume '('
                    let mut args = Vec::new();
                    if self.peek().map(|t| &t.kind) != Some(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr(0)?);
                            if self.peek().map(|t| &t.kind) == Some(&TokenKind::Comma) {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    if args.len() < def.min_args || def.max_args.is_some_and(|m| args.len() > m) {
                        let expected = match def.max_args {
                            Some(m) if m == def.min_args => format!("{m}"),
                            Some(m) => format!("{}..{m}", def.min_args),
                            None => format!("at least {}", def.min_args),
                        };
                        return Err(ParseError {
                            message: format!(
                                "{} expects {expected} argument(s), got {}",
                                def.name,
                                args.len()
                            ),
                            offset: tok.offset,
                        });
                    }
                    Ok(Formula::Call {
                        func: def.name.to_string(),
                        args,
                    })
                } else {
                    Ok(Formula::Ref(ColumnRef::local(name)))
                }
            }
            other => Err(ParseError {
                message: format!("unexpected token {other}"),
                offset: tok.offset,
            }),
        }
    }
}

/// Split a bracket reference into element/column at the first `/`.
fn parse_bracket_ref(text: &str) -> ColumnRef {
    match text.split_once('/') {
        Some((element, name)) if !element.trim().is_empty() && !name.trim().is_empty() => {
            ColumnRef::qualified(element.trim(), name.trim())
        }
        _ => ColumnRef::local(text.trim()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinaryOp;

    fn p(input: &str) -> Formula {
        parse_formula(input).unwrap()
    }

    #[test]
    fn precedence() {
        assert_eq!(p("1 + 2 * 3"), p("1 + (2 * 3)"));
        assert_ne!(p("(1 + 2) * 3"), p("1 + 2 * 3"));
        assert_eq!(
            p("1 < 2 and 3 < 4 or false"),
            p("((1 < 2) and (3 < 4)) or false")
        );
        // Pow is right-associative.
        assert_eq!(p("2 ^ 3 ^ 2"), p("2 ^ (3 ^ 2)"));
        // Concat binds looser than +.
        assert_eq!(p("\"a\" & 1 + 2"), p("\"a\" & (1 + 2)"));
    }

    #[test]
    fn keywords_and_symbols_equivalent() {
        assert_eq!(p("a and b"), p("a && b"));
        assert_eq!(p("a or b"), p("a || b"));
        assert_eq!(p("not a"), p("!a"));
        // "and" in prefix position is not a function.
        assert!(parse_formula("and(1, 1)").is_err());
    }

    #[test]
    fn calls_and_arity() {
        let f = p("Sum([Revenue]) / Count()");
        assert_eq!(f.to_string(), "Sum(Revenue) / Count()");
        assert!(parse_formula("Sum()").is_err());
        assert!(parse_formula("Abs(1, 2)").is_err());
        assert!(parse_formula("Bogus(1)").is_err());
    }

    #[test]
    fn case_insensitive_function_names_canonicalize() {
        assert_eq!(p("sum(x)").to_string(), "Sum(x)");
        assert_eq!(p("COUNTDISTINCT(x)").to_string(), "CountDistinct(x)");
    }

    #[test]
    fn qualified_refs() {
        let f = p("Lookup([Airports/Name], [Origin], [Airports/Code])");
        if let Formula::Call { func, args } = &f {
            assert_eq!(func, "Lookup");
            assert_eq!(
                args[0],
                Formula::Ref(ColumnRef::qualified("Airports", "Name"))
            );
            assert_eq!(args[1], Formula::Ref(ColumnRef::local("Origin")));
        } else {
            panic!("expected call");
        }
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(p("-3"), Formula::lit(-3i64));
        assert_eq!(p("-2.5"), Formula::lit(-2.5));
        // But negation of a ref stays unary.
        assert!(matches!(p("-x"), Formula::Unary { .. }));
        // And -2^2 parses as -(2^2) = unary over pow.
        assert!(matches!(p("-2 ^ 2"), Formula::Unary { .. }));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_formula("1 + 2 )").is_err());
        assert!(parse_formula("1 2").is_err());
        assert!(parse_formula("").is_err());
    }

    #[test]
    fn unary_not_precedence() {
        // not a and b == (not a) and b per precedence 3 > 2.
        let f = p("not a and b");
        if let Formula::Binary { op, .. } = &f {
            assert_eq!(*op, BinaryOp::And);
        } else {
            panic!("expected binary and at top: {f:?}");
        }
    }

    #[test]
    fn display_parse_round_trip() {
        for src in [
            "Sum(Revenue) / Count()",
            "If([Dep Delay] > 15, \"late\", \"on time\")",
            "(a + b) * c - d / e",
            "DateTrunc(\"quarter\", [Flight Date])",
            "Lag([Flight Date], 1) != [Flight Date]",
            "not (a and b) or c",
            "-x ^ 2",
            "a - (b - c)",
            "Rollup(Min([Flights/Flight Date]), [Tail Number], [Flights/Tail Number])",
        ] {
            let f1 = p(src);
            let printed = f1.to_string();
            let f2 =
                parse_formula(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
            assert_eq!(f1, f2, "round trip failed for {src:?} -> {printed:?}");
        }
    }
}
