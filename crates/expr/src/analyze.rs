//! Structural analyses over formulas: referenced columns, aggregate/window
//! usage, `Lookup`/`Rollup` extraction, and rename refactoring.
//!
//! The paper highlights "easy refactoring" as a spreadsheet affordance
//! Workbook keeps: renaming a column rewrites every formula that references
//! it ([`rename_ref`]).

use crate::ast::{ColumnRef, Formula};
use crate::functions::{registry, FunctionKind};

/// Collect every column reference (local and qualified), in evaluation
/// order, including duplicates.
pub fn column_refs(f: &Formula) -> Vec<&ColumnRef> {
    let mut out = Vec::new();
    walk(f, &mut |node| {
        if let Formula::Ref(r) = node {
            out.push(r);
        }
    });
    out
}

/// Distinct local (unqualified) reference names.
pub fn local_ref_names(f: &Formula) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in column_refs(f) {
        if r.element.is_none() && !out.iter().any(|n| n.eq_ignore_ascii_case(&r.name)) {
            out.push(r.name.clone());
        }
    }
    out
}

/// Pre-order walk.
pub fn walk<'a>(f: &'a Formula, visit: &mut impl FnMut(&'a Formula)) {
    visit(f);
    match f {
        Formula::Unary { expr, .. } => walk(expr, visit),
        Formula::Binary { left, right, .. } => {
            walk(left, visit);
            walk(right, visit);
        }
        Formula::Call { args, .. } => {
            for a in args {
                walk(a, visit);
            }
        }
        Formula::Literal(_) | Formula::Ref(_) => {}
    }
}

/// Mutable pre-order walk.
pub fn walk_mut(f: &mut Formula, visit: &mut impl FnMut(&mut Formula)) {
    visit(f);
    match f {
        Formula::Unary { expr, .. } => walk_mut(expr, visit),
        Formula::Binary { left, right, .. } => {
            walk_mut(left, visit);
            walk_mut(right, visit);
        }
        Formula::Call { args, .. } => {
            for a in args {
                walk_mut(a, visit);
            }
        }
        Formula::Literal(_) | Formula::Ref(_) => {}
    }
}

fn kind_of(func: &str) -> Option<FunctionKind> {
    registry(func).map(|d| d.kind)
}

/// True when the formula contains any aggregate call (at any depth).
pub fn has_aggregate(f: &Formula) -> bool {
    let mut found = false;
    walk(f, &mut |node| {
        if let Formula::Call { func, .. } = node {
            if kind_of(func) == Some(FunctionKind::Aggregate) {
                found = true;
            }
        }
    });
    found
}

/// True when the formula contains any window call (at any depth).
pub fn has_window(f: &Formula) -> bool {
    let mut found = false;
    walk(f, &mut |node| {
        if let Formula::Call { func, .. } = node {
            if kind_of(func) == Some(FunctionKind::Window) {
                found = true;
            }
        }
    });
    found
}

/// True when the formula contains `Lookup` or `Rollup`.
pub fn has_special(f: &Formula) -> bool {
    let mut found = false;
    walk(f, &mut |node| {
        if let Formula::Call { func, .. } = node {
            if kind_of(func) == Some(FunctionKind::Special) {
                found = true;
            }
        }
    });
    found
}

/// Maximum nesting depth of aggregate calls. `Sum(x)` is 1;
/// `Avg(Sum(x))` is 2; scalar-only formulas are 0. The compiler uses this
/// to know how many intermediate grouping stages a column needs.
pub fn agg_depth(f: &Formula) -> usize {
    match f {
        Formula::Literal(_) | Formula::Ref(_) => 0,
        Formula::Unary { expr, .. } => agg_depth(expr),
        Formula::Binary { left, right, .. } => agg_depth(left).max(agg_depth(right)),
        Formula::Call { func, args } => {
            let inner = args.iter().map(agg_depth).max().unwrap_or(0);
            if kind_of(func) == Some(FunctionKind::Aggregate) {
                inner + 1
            } else {
                inner
            }
        }
    }
}

/// The target elements named by qualified refs anywhere in the formula.
pub fn referenced_elements(f: &Formula) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in column_refs(f) {
        if let Some(el) = &r.element {
            if !out.iter().any(|n| n.eq_ignore_ascii_case(el)) {
                out.push(el.clone());
            }
        }
    }
    out
}

/// Rewrite every local reference to `old` into `new` (case-insensitive
/// match, the workbook's name semantics). Returns how many refs changed.
pub fn rename_ref(f: &mut Formula, old: &str, new: &str) -> usize {
    let mut count = 0;
    walk_mut(f, &mut |node| {
        if let Formula::Ref(r) = node {
            if r.element.is_none() && r.name.eq_ignore_ascii_case(old) {
                r.name = new.to_string();
                count += 1;
            }
        }
    });
    count
}

/// Rewrite qualified refs `[old_element/...]` to `[new_element/...]` (used
/// when an element is renamed).
pub fn rename_element(f: &mut Formula, old: &str, new: &str) -> usize {
    let mut count = 0;
    walk_mut(f, &mut |node| {
        if let Formula::Ref(r) = node {
            if r.element
                .as_deref()
                .is_some_and(|e| e.eq_ignore_ascii_case(old))
            {
                r.element = Some(new.to_string());
                count += 1;
            }
        }
    });
    count
}

/// Substitute every local reference to `name` with a copy of `replacement`
/// (used to inline one column's formula into another).
pub fn substitute_ref(f: &mut Formula, name: &str, replacement: &Formula) -> usize {
    let mut count = 0;
    walk_mut(f, &mut |node| {
        let is_match = matches!(
            node,
            Formula::Ref(r) if r.element.is_none() && r.name.eq_ignore_ascii_case(name)
        );
        if is_match {
            *node = replacement.clone();
            count += 1;
        }
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn p(src: &str) -> Formula {
        parse_formula(src).unwrap()
    }

    #[test]
    fn collects_refs() {
        let f = p("Sum([Dep Delay]) / Count() + [Dep Delay]");
        let names = local_ref_names(&f);
        assert_eq!(names, vec!["Dep Delay"]);
        assert_eq!(column_refs(&f).len(), 2);
    }

    #[test]
    fn detects_kinds() {
        assert!(has_aggregate(&p("Sum(x) + 1")));
        assert!(!has_aggregate(&p("x + 1")));
        assert!(has_window(&p("Lag(x, 1)")));
        assert!(has_special(&p("Lookup([E/c], k, [E/k2])")));
        assert!(!has_special(&p("Sum(x)")));
    }

    #[test]
    fn agg_depth_nesting() {
        assert_eq!(agg_depth(&p("x + 1")), 0);
        assert_eq!(agg_depth(&p("Sum(x)")), 1);
        assert_eq!(agg_depth(&p("Avg(Sum(x))")), 2);
        assert_eq!(agg_depth(&p("Sum(x) / Avg(Sum(y))")), 2);
        // Windows don't add aggregate depth.
        assert_eq!(agg_depth(&p("Lag(Sum(x), 1)")), 1);
    }

    #[test]
    fn rename_is_case_insensitive() {
        let mut f = p("[dep delay] + Sum([Dep Delay])");
        let n = rename_ref(&mut f, "Dep Delay", "Departure Delay");
        assert_eq!(n, 2);
        assert_eq!(f.to_string(), "[Departure Delay] + Sum([Departure Delay])");
    }

    #[test]
    fn rename_element_only_touches_qualified() {
        let mut f = p("Lookup([Airports/Name], Origin, [Airports/Code]) & Origin");
        let n = rename_element(&mut f, "airports", "US Airports");
        assert_eq!(n, 2);
        assert!(f.to_string().contains("[US Airports/Name]"));
        // Local refs unchanged.
        assert!(f.to_string().contains("Origin"));
    }

    #[test]
    fn substitution_inlines() {
        let mut f = p("margin * 100");
        let repl = p("(revenue - cost) / revenue");
        assert_eq!(substitute_ref(&mut f, "Margin", &repl), 1);
        assert_eq!(f.to_string(), "(revenue - cost) / revenue * 100");
    }

    #[test]
    fn referenced_elements_dedup() {
        let f = p("Lookup([A/x], k, [A/k]) + Rollup(Sum([B/y]), k, [B/k])");
        assert_eq!(referenced_elements(&f), vec!["A", "B"]);
    }
}
