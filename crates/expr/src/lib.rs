//! The Sigma Workbook spreadsheet formula language (paper §3.1).
//!
//! Column expressions, known as *formulas*, are written in an expression
//! language familiar to users of spreadsheet and BI tools. Like SQL,
//! supported functions fall into one of three categories: single row,
//! aggregate, and window — plus the two *special* functions `Lookup` and
//! `Rollup` (§3.2) that express ad-hoc joins against other workbook
//! elements. Unlike SQL, there are no restrictions on how these functions
//! are composed; the compiler in `sigma-core` lowers arbitrary compositions
//! onto grouping levels.
//!
//! This crate provides the textual language only: lexing, parsing, a
//! round-trippable printer, the function registry, type inference, and the
//! structural analyses (referenced columns, aggregate depth, lookup
//! extraction, rename refactoring) that the compiler builds on.

pub mod analyze;
pub mod ast;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod typecheck;

pub use ast::{BinaryOp, ColumnRef, Formula, UnaryOp};
pub use functions::{registry, FunctionDef, FunctionKind};
pub use parser::{parse_formula, ParseError};
pub use typecheck::{infer_type, TypeEnv, TypeError};
