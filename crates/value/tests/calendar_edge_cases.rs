//! Dedicated edge-case coverage for the proleptic-Gregorian calendar
//! module: leap-year rules across centuries, month-end arithmetic, epoch
//! and era boundaries, and full-range conversion properties.

use proptest::prelude::*;
use sigma_value::calendar::{
    add_months, civil_from_days, date_add, date_diff, date_part, days_from_civil, format_date,
    format_timestamp, is_leap, iso_week_of_year, iso_weekday, last_day_of_month, parse_date,
    parse_timestamp, timestamp_add, timestamp_diff, timestamp_part, trunc_date, trunc_timestamp,
    DateUnit, MICROS_PER_DAY, MICROS_PER_HOUR,
};

// ---------------------------------------------------------------------
// leap years
// ---------------------------------------------------------------------

#[test]
fn century_leap_rule() {
    // Divisible by 4: leap — unless by 100 — unless by 400.
    assert!(is_leap(1600));
    assert!(!is_leap(1700));
    assert!(!is_leap(1800));
    assert!(!is_leap(1900));
    assert!(is_leap(2000));
    assert!(!is_leap(2100));
    // The rule extends proleptically to year 0 (1 BCE) and negatives.
    assert!(is_leap(0));
    assert!(is_leap(-4));
    assert!(!is_leap(-100));
    assert!(is_leap(-400));
}

#[test]
fn feb_29_exists_only_in_leap_years() {
    assert_eq!(parse_date("2000-02-29"), Some(days_from_civil(2000, 2, 29)));
    assert_eq!(parse_date("1900-02-29"), None);
    assert_eq!(parse_date("2100-02-29"), None);
    // Feb 29 -> next day is Mar 1 in a leap year.
    let feb29 = days_from_civil(2024, 2, 29);
    assert_eq!(civil_from_days(feb29 + 1), (2024, 3, 1));
    assert_eq!(civil_from_days(feb29 - 1), (2024, 2, 28));
}

#[test]
fn leap_day_year_arithmetic_clamps() {
    let feb29 = days_from_civil(2024, 2, 29);
    // +1 year lands on Feb 28 (2025 is not leap); +4 years restores Feb 29.
    assert_eq!(
        civil_from_days(date_add(feb29, DateUnit::Year, 1)),
        (2025, 2, 28)
    );
    assert_eq!(
        civil_from_days(date_add(feb29, DateUnit::Year, 4)),
        (2028, 2, 29)
    );
    // Century boundary: 2096-02-29 + 4y must clamp (2100 is not leap).
    let feb29_2096 = days_from_civil(2096, 2, 29);
    assert_eq!(
        civil_from_days(date_add(feb29_2096, DateUnit::Year, 4)),
        (2100, 2, 28)
    );
}

#[test]
fn year_lengths() {
    for (year, expected) in [(2023, 365), (2024, 366), (1900, 365), (2000, 366)] {
        let length = days_from_civil(year + 1, 1, 1) - days_from_civil(year, 1, 1);
        assert_eq!(length, expected, "length of year {year}");
    }
}

// ---------------------------------------------------------------------
// month-end arithmetic
// ---------------------------------------------------------------------

#[test]
fn month_add_clamps_to_shorter_months() {
    let jan31 = days_from_civil(2023, 1, 31);
    let expectations = [
        (1, (2023, 2, 28)),
        (2, (2023, 3, 31)),
        (3, (2023, 4, 30)),
        (13, (2024, 2, 29)), // leap February keeps one more day
    ];
    for (months, expected) in expectations {
        assert_eq!(
            civil_from_days(add_months(jan31, months)),
            expected,
            "+{months} months"
        );
    }
}

#[test]
fn month_add_is_not_invertible_after_clamping() {
    // Mar 31 -> Feb 28 -> Mar 28: clamping loses the day-of-month.
    let mar31 = days_from_civil(2023, 3, 31);
    let there = add_months(mar31, -1);
    assert_eq!(civil_from_days(there), (2023, 2, 28));
    assert_eq!(civil_from_days(add_months(there, 1)), (2023, 3, 28));
}

#[test]
fn month_add_crosses_year_boundaries_both_ways() {
    let nov30 = days_from_civil(2020, 11, 30);
    assert_eq!(civil_from_days(add_months(nov30, 3)), (2021, 2, 28));
    assert_eq!(civil_from_days(add_months(nov30, -12)), (2019, 11, 30));
    assert_eq!(civil_from_days(add_months(nov30, -23)), (2018, 12, 30));
    // Large negative spans crossing year 0.
    let d = days_from_civil(1, 1, 31);
    assert_eq!(civil_from_days(add_months(d, -11)), (0, 2, 29));
}

#[test]
fn date_diff_counts_boundaries_not_elapsed_time() {
    // Adjacent days across a month boundary count as one month.
    let jan31 = days_from_civil(2023, 1, 31);
    let feb1 = days_from_civil(2023, 2, 1);
    assert_eq!(date_diff(jan31, feb1, DateUnit::Month), 1);
    // A full month minus a day counts as zero.
    let jan1 = days_from_civil(2023, 1, 1);
    let jan31b = days_from_civil(2023, 1, 31);
    assert_eq!(date_diff(jan1, jan31b, DateUnit::Month), 0);
    // Week boundaries are ISO Mondays: Sunday -> Monday is one week.
    let sunday = days_from_civil(2021, 3, 7);
    let monday = days_from_civil(2021, 3, 8);
    assert_eq!(iso_weekday(sunday), 7);
    assert_eq!(date_diff(sunday, monday, DateUnit::Week), 1);
    assert_eq!(date_diff(monday, monday + 6, DateUnit::Week), 0);
}

#[test]
fn last_days_of_all_months() {
    let expected = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    for (index, days) in expected.iter().enumerate() {
        assert_eq!(last_day_of_month(2023, index as u32 + 1), *days);
    }
}

// ---------------------------------------------------------------------
// epoch and era boundaries
// ---------------------------------------------------------------------

#[test]
fn epoch_neighborhood() {
    assert_eq!(civil_from_days(-1), (1969, 12, 31));
    assert_eq!(civil_from_days(0), (1970, 1, 1));
    assert_eq!(civil_from_days(1), (1970, 1, 2));
    assert_eq!(date_diff(-1, 0, DateUnit::Year), 1);
    assert_eq!(date_part(0, DateUnit::Year), 1970);
    assert_eq!(date_part(0, DateUnit::Quarter), 1);
}

#[test]
fn negative_timestamps_use_floor_division() {
    // 1969-12-31 23:00:00 is one hour before the epoch.
    let t = -MICROS_PER_HOUR;
    assert_eq!(format_timestamp(t), "1969-12-31 23:00:00");
    assert_eq!(timestamp_part(t, DateUnit::Hour), 23);
    assert_eq!(timestamp_part(t, DateUnit::Year), 1969);
    assert_eq!(trunc_timestamp(t, DateUnit::Day), -MICROS_PER_DAY);
    assert_eq!(trunc_timestamp(t, DateUnit::Hour), t);
    // Crossing the epoch hour boundary counts once.
    assert_eq!(timestamp_diff(-1, 0, DateUnit::Second), 1);
    assert_eq!(timestamp_diff(-1, 1, DateUnit::Hour), 1);
}

#[test]
fn year_zero_and_bce_dates() {
    // Year 0 exists in the proleptic calendar and is a leap year.
    let d = days_from_civil(0, 2, 29);
    assert_eq!(civil_from_days(d), (0, 2, 29));
    assert_eq!(format_date(days_from_civil(0, 1, 1)), "0000-01-01");
    // Negative years round-trip through conversion too.
    let bce = days_from_civil(-44, 3, 15);
    assert_eq!(civil_from_days(bce), (-44, 3, 15));
}

#[test]
fn four_century_cycle_is_exact() {
    // The Gregorian calendar repeats every 400 years = 146097 days.
    let a = days_from_civil(1600, 3, 1);
    let b = days_from_civil(2000, 3, 1);
    assert_eq!(b - a, 146_097);
    assert_eq!(iso_weekday(a), iso_weekday(b));
}

#[test]
fn iso_week_53_years() {
    // 2015 has 53 ISO weeks (starts on Thursday).
    assert_eq!(iso_week_of_year(days_from_civil(2015, 12, 31)), 53);
    // 2016-01-01 (Friday) still belongs to 2015's week 53.
    assert_eq!(iso_week_of_year(days_from_civil(2016, 1, 1)), 53);
    assert_eq!(iso_week_of_year(days_from_civil(2016, 1, 4)), 1);
}

#[test]
fn trunc_date_boundaries() {
    let d = days_from_civil(2023, 12, 31);
    assert_eq!(civil_from_days(trunc_date(d, DateUnit::Year)), (2023, 1, 1));
    assert_eq!(
        civil_from_days(trunc_date(d, DateUnit::Quarter)),
        (2023, 10, 1)
    );
    assert_eq!(
        civil_from_days(trunc_date(d, DateUnit::Month)),
        (2023, 12, 1)
    );
    // 2024-01-01 is a Monday: week-truncation of New Year's Day may cross
    // back into the old year only when Jan 1 isn't a Monday.
    let jan1_2024 = days_from_civil(2024, 1, 1);
    assert_eq!(trunc_date(jan1_2024, DateUnit::Week), jan1_2024);
    let jan1_2023 = days_from_civil(2023, 1, 1); // a Sunday
    assert_eq!(
        civil_from_days(trunc_date(jan1_2023, DateUnit::Week)),
        (2022, 12, 26)
    );
}

#[test]
fn timestamp_add_preserves_time_of_day_across_dst_free_calendar() {
    let t = parse_timestamp("2023-01-31 12:30:00").unwrap();
    let plus_month = timestamp_add(t, DateUnit::Month, 1);
    assert_eq!(format_timestamp(plus_month), "2023-02-28 12:30:00");
    let plus_hours = timestamp_add(t, DateUnit::Hour, 36);
    assert_eq!(format_timestamp(plus_hours), "2023-02-02 00:30:00");
}

// ---------------------------------------------------------------------
// properties over the full supported range
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn civil_bijection_and_component_ranges(days in -4_000_000i32..4_000_000) {
        let (y, m, d) = civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!(d >= 1 && d <= last_day_of_month(y, m));
        // Text round trip agrees with the numeric one. (parse_date reads
        // the fixed YYYY-MM-DD format only, so BCE years are out of scope.)
        if y >= 1 {
            prop_assert_eq!(parse_date(&format_date(days)), Some(days));
        }
    }

    #[test]
    fn successive_days_are_contiguous(days in -1_000_000i32..1_000_000) {
        let today = civil_from_days(days);
        let tomorrow = civil_from_days(days + 1);
        // Either same month with day+1, or a month/year rollover to day 1.
        if today.0 == tomorrow.0 && today.1 == tomorrow.1 {
            prop_assert_eq!(tomorrow.2, today.2 + 1);
        } else {
            prop_assert_eq!(tomorrow.2, 1);
            prop_assert_eq!(today.2, last_day_of_month(today.0, today.1));
        }
        // Weekdays advance cyclically.
        prop_assert_eq!(iso_weekday(days) % 7 + 1, iso_weekday(days + 1));
    }

    #[test]
    fn add_months_preserves_or_clamps_day(days in -500_000i32..500_000, months in -600i64..600) {
        let (_, _, d0) = civil_from_days(days);
        let moved = add_months(days, months);
        let (ny, nm, nd) = civil_from_days(moved);
        if nd == d0 {
            // Day preserved exactly.
        } else {
            // Otherwise it must have clamped to the target month's end.
            prop_assert_eq!(nd, last_day_of_month(ny, nm));
            prop_assert!(nd < d0);
        }
        // Month delta matches the request.
        let (y0, m0, _) = civil_from_days(days);
        let total0 = y0 as i64 * 12 + m0 as i64 - 1;
        let total1 = ny as i64 * 12 + nm as i64 - 1;
        prop_assert_eq!(total1 - total0, months);
    }
}
