//! Property pin for the spill-file codec: `decode(encode(b))` reproduces
//! `b` **bit-identically** for arbitrary schemas — every column type,
//! null patterns (including all-null and no-null columns), empty batches,
//! adversarial floats (NaN payloads, ±0.0, infinities, subnormals), and
//! non-ASCII text.
//!
//! Two complementary assertions per case:
//!
//! 1. **Byte fixpoint**: `encode(decode(encode(b))) == encode(b)`. The
//!    encoding serializes physical storage verbatim, so byte equality of
//!    re-encoded output proves the decoder reconstructed every payload
//!    word, null-slot default, and validity byte exactly.
//! 2. **Structural walk**: schemas equal, and per cell null-ness plus
//!    bitwise value equality (floats compared via `to_bits`, everything
//!    else via `Value` equality).

use std::sync::Arc;

use proptest::prelude::*;
use sigma_value::{codec, Batch, ColumnBuilder, DataType, Field, Schema, Value};

/// Tiny deterministic generator so one `u64` seed yields a full batch.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Constants from Knuth's MMIX; plenty for test-data variety.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn dtype_of(tag: u8) -> DataType {
    match tag % 6 {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Date,
        _ => DataType::Timestamp,
    }
}

/// Adversarial float pool: the values most likely to break a codec that
/// routes through comparison or text.
const FLOATS: &[f64] = &[
    0.0,
    -0.0,
    1.5,
    -1.0e300,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::MIN_POSITIVE,
    5e-324, // smallest subnormal
    f64::NAN,
];

fn value_for(dtype: DataType, rng: &mut Lcg) -> Value {
    match dtype {
        DataType::Bool => Value::Bool(rng.pick(2) == 0),
        DataType::Int => Value::Int(match rng.pick(4) {
            0 => i64::MIN,
            1 => i64::MAX,
            _ => rng.next() as i64 % 1000,
        }),
        DataType::Float => {
            let f = FLOATS[rng.pick(FLOATS.len() as u64) as usize];
            // Vary the NaN payload: codecs that canonicalize NaN bits fail.
            if f.is_nan() && rng.pick(2) == 0 {
                Value::Float(f64::from_bits(f.to_bits() ^ (1 + rng.pick(0xFFFF))))
            } else {
                Value::Float(f)
            }
        }
        DataType::Text => Value::Text(match rng.pick(4) {
            0 => String::new(),
            1 => "héllo wörld — ünïcodé ☃".to_string(),
            2 => "a".repeat(rng.pick(64) as usize),
            _ => format!("s{}", rng.next() % 10_000),
        }),
        DataType::Date => Value::Date(rng.next() as i32),
        DataType::Timestamp => Value::Timestamp(rng.next() as i64),
    }
}

fn build_batch(col_tags: &[(u8, u8)], rows: usize, seed: u64) -> Batch {
    let mut rng = Lcg(seed);
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for (i, &(tag, null_mode)) in col_tags.iter().enumerate() {
        let dtype = dtype_of(tag);
        fields.push(Field::new(format!("c{i}"), dtype));
        let mut b = ColumnBuilder::new(dtype, rows);
        for _ in 0..rows {
            // null_mode: 0 = never null, 1 = always null, else ~1/3 null.
            let is_null = match null_mode % 3 {
                0 => false,
                1 => true,
                _ => rng.pick(3) == 0,
            };
            if is_null {
                b.push_null();
            } else {
                b.push(value_for(dtype, &mut rng)).unwrap();
            }
        }
        columns.push(b.finish());
    }
    Batch::new(Arc::new(Schema::new(fields)), columns).unwrap()
}

fn assert_bit_identical(a: &Batch, b: &Batch) {
    assert_eq!(a.schema(), b.schema());
    assert_eq!(a.num_rows(), b.num_rows());
    for c in 0..a.num_columns() {
        let (ca, cb) = (a.column(c), b.column(c));
        assert_eq!(ca.dtype(), cb.dtype());
        for r in 0..a.num_rows() {
            assert_eq!(ca.is_null(r), cb.is_null(r), "null-ness at ({r}, {c})");
            match (ca.value(r), cb.value(r)) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "float bits at ({r}, {c})")
                }
                (x, y) => assert_eq!(x, y, "value at ({r}, {c})"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn decode_encode_is_bit_identity(
        col_tags in proptest::collection::vec((0u8..6, 0u8..3), 0..7),
        rows in 0usize..48,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let batch = build_batch(&col_tags, rows, seed);
        let bytes = codec::encode_batch(&batch);
        let decoded = codec::decode_batch(&bytes).expect("decode");
        // Byte fixpoint: re-encoding the decoded batch reproduces the
        // original byte stream exactly.
        prop_assert_eq!(codec::encode_batch(&decoded), bytes);
        assert_bit_identical(&batch, &decoded);
        // Derived equality also holds whenever no NaN is involved (NaN
        // breaks `==` by IEEE semantics, not by codec fault).
        let any_nan = (0..batch.num_columns()).any(|c| {
            batch.column(c).floats().is_some_and(|v| v.iter().any(|f| f.is_nan()))
        });
        if !any_nan {
            prop_assert_eq!(&decoded, &batch);
        }
    }
}
