//! Binary [`Batch`] serialization — the spill-file format.
//!
//! The out-of-core operators in `sigma-cdw` (spilling aggregation,
//! external merge sort, Grace hash join) write intermediate batches to
//! disk and must read back **exactly** what they wrote: equality down to
//! float bit patterns (NaN payloads, `-0.0`) and down to the arbitrary
//! default values stored in null slots, because batch equality compares
//! physical storage. The codec therefore serializes physical storage
//! verbatim:
//!
//! * floats as `to_bits` little-endian words (never through text or
//!   `f64` comparison semantics),
//! * the validity mask as-is (present or absent — an all-true mask is
//!   not normalized away),
//! * null slots' payload bytes included, so `decode(encode(b)) == b`
//!   under derived `PartialEq`.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "SGB1"
//! u32 field_count
//! per field:  u16 name_len, name bytes (UTF-8), u8 dtype
//! u64 row_count
//! per column:
//!   u8 has_validity; if 1: row_count bytes of 0/1
//!   payload: Bool = row_count bytes; Int/Timestamp = 8·rows; Float =
//!   8·rows (f64::to_bits); Date = 4·rows; Text = per string u32 len +
//!   bytes
//! ```
//!
//! Decoding validates every length against the remaining input and
//! returns [`ValueError`] on truncation or corruption — a half-written
//! spill file surfaces as an execution error, never a panic.

use std::sync::Arc;

use crate::batch::{Batch, Field, Schema};
use crate::column::{Column, ColumnData};
use crate::error::ValueError;
use crate::types::DataType;

const MAGIC: &[u8; 4] = b"SGB1";

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Date => 4,
        DataType::Timestamp => 5,
    }
}

fn tag_dtype(t: u8) -> Result<DataType, ValueError> {
    Ok(match t {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Date,
        5 => DataType::Timestamp,
        _ => return Err(ValueError::invalid(format!("codec: bad dtype tag {t}"))),
    })
}

/// Serialize a batch to the spill-file wire format.
pub fn encode_batch(batch: &Batch) -> Vec<u8> {
    // Rough pre-size: payload plus a little framing slack.
    let mut buf = Vec::with_capacity(batch.byte_size() + 64);
    buf.extend_from_slice(MAGIC);
    let schema = batch.schema();
    buf.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    for f in schema.fields() {
        buf.extend_from_slice(&(f.name.len() as u16).to_le_bytes());
        buf.extend_from_slice(f.name.as_bytes());
        buf.push(dtype_tag(f.dtype));
    }
    buf.extend_from_slice(&(batch.num_rows() as u64).to_le_bytes());
    for col in batch.columns() {
        let (data, validity) = col.raw_parts();
        match validity {
            Some(mask) => {
                buf.push(1);
                buf.extend(mask.iter().map(|&b| b as u8));
            }
            None => buf.push(0),
        }
        match data {
            ColumnData::Bool(v) => buf.extend(v.iter().map(|&b| b as u8)),
            ColumnData::Int(v) => {
                for x in v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Float(v) => {
                for x in v {
                    buf.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            ColumnData::Text(v) => {
                for s in v {
                    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    buf.extend_from_slice(s.as_bytes());
                }
            }
            ColumnData::Date(v) => {
                for x in v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Timestamp(v) => {
                for x in v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
    }
    buf
}

/// Bounds-checked cursor over the encoded bytes.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ValueError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ValueError::invalid("codec: truncated input"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ValueError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ValueError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ValueError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ValueError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// A corruption-safe element count: errors (instead of attempting a
    /// huge allocation, or overflowing a width multiply) when `count`
    /// elements of at least `min_width` bytes each cannot possibly fit in
    /// the remaining input.
    fn counted(&self, count: usize, min_width: usize) -> Result<usize, ValueError> {
        match count.checked_mul(min_width) {
            Some(need) if need <= self.remaining() => Ok(count),
            _ => Err(ValueError::invalid(format!(
                "codec: count {count} (x{min_width}B) exceeds remaining {}B",
                self.remaining()
            ))),
        }
    }
}

/// Deserialize one batch from bytes produced by [`encode_batch`].
pub fn decode_batch(bytes: &[u8]) -> Result<Batch, ValueError> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.bytes(4)? != MAGIC {
        return Err(ValueError::invalid("codec: bad magic"));
    }
    // Every count read from the wire is validated against the remaining
    // input *before* sizing an allocation or multiplying by a width: a
    // corrupted length word must surface as an error, never a huge
    // `Vec::with_capacity` abort or a wrapped `rows * width`.
    let nfields = c.u32()? as usize;
    let nfields = c.counted(nfields, 3)?; // name_len + name + dtype >= 3B
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let name_len = c.u16()? as usize;
        let name = std::str::from_utf8(c.bytes(name_len)?)
            .map_err(|_| ValueError::invalid("codec: field name not UTF-8"))?
            .to_string();
        let dtype = tag_dtype(c.u8()?)?;
        fields.push(Field::new(name, dtype));
    }
    let rows = c.u64()? as usize;
    let mut columns = Vec::with_capacity(nfields);
    for f in &fields {
        let validity = match c.u8()? {
            0 => None,
            1 => Some(c.bytes(rows)?.iter().map(|&b| b != 0).collect::<Vec<_>>()),
            t => return Err(ValueError::invalid(format!("codec: bad validity tag {t}"))),
        };
        let data = match f.dtype {
            DataType::Bool => ColumnData::Bool(c.bytes(rows)?.iter().map(|&b| b != 0).collect()),
            DataType::Int => ColumnData::Int(
                c.bytes(c.counted(rows, 8)? * 8)?
                    .chunks_exact(8)
                    .map(|w| i64::from_le_bytes(w.try_into().unwrap()))
                    .collect(),
            ),
            DataType::Float => ColumnData::Float(
                c.bytes(c.counted(rows, 8)? * 8)?
                    .chunks_exact(8)
                    .map(|w| f64::from_bits(u64::from_le_bytes(w.try_into().unwrap())))
                    .collect(),
            ),
            DataType::Text => {
                let mut v = Vec::with_capacity(c.counted(rows, 4)?); // u32 len each
                for _ in 0..rows {
                    let len = c.u32()? as usize;
                    let s = std::str::from_utf8(c.bytes(len)?)
                        .map_err(|_| ValueError::invalid("codec: text not UTF-8"))?;
                    v.push(s.to_string());
                }
                ColumnData::Text(v)
            }
            DataType::Date => ColumnData::Date(
                c.bytes(c.counted(rows, 4)? * 4)?
                    .chunks_exact(4)
                    .map(|w| i32::from_le_bytes(w.try_into().unwrap()))
                    .collect(),
            ),
            DataType::Timestamp => ColumnData::Timestamp(
                c.bytes(c.counted(rows, 8)? * 8)?
                    .chunks_exact(8)
                    .map(|w| i64::from_le_bytes(w.try_into().unwrap()))
                    .collect(),
            ),
        };
        columns.push(Column::from_raw(data, validity));
    }
    if c.pos != bytes.len() {
        return Err(ValueError::invalid("codec: trailing bytes"));
    }
    Batch::new(Arc::new(Schema::new(fields)), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn roundtrip(b: &Batch) -> Batch {
        decode_batch(&encode_batch(b)).expect("decode")
    }

    #[test]
    fn typical_batch_round_trips() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("t", DataType::Text),
            Field::new("b", DataType::Bool),
            Field::new("d", DataType::Date),
            Field::new("ts", DataType::Timestamp),
        ]));
        let b = Batch::new(
            schema,
            vec![
                Column::from_opt_ints(vec![Some(i64::MIN), None, Some(7)]),
                Column::from_opt_floats(vec![Some(-0.0), Some(f64::NAN), None]),
                Column::from_opt_texts(vec![Some("héllo".into()), Some(String::new()), None]),
                Column::from_bools(vec![true, false, true]),
                Column::from_dates(vec![-719_162, 0, 2_932_896]),
                Column::from_timestamps(vec![i64::MIN, 0, i64::MAX]),
            ],
        )
        .unwrap();
        let d = roundtrip(&b);
        assert_eq!(d.schema(), b.schema());
        assert_eq!(d.num_rows(), b.num_rows());
        // Bitwise float check (== would pass NaN↔anything and -0.0↔0.0).
        let (orig, dec) = (b.column(1).floats().unwrap(), d.column(1).floats().unwrap());
        for (x, y) in orig.iter().zip(dec) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(d.value(0, 2), Value::Text("héllo".into()));
        assert_eq!(d.value(2, 2), Value::Null);
    }

    #[test]
    fn empty_batch_round_trips() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let b = Batch::empty(schema);
        let d = roundtrip(&b);
        assert_eq!(d, b);
        // And a zero-column batch.
        let none = Batch::empty(Arc::new(Schema::empty()));
        assert_eq!(roundtrip(&none), none);
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let b = Batch::new(schema, vec![Column::from_ints(vec![1, 2, 3])]).unwrap();
        let bytes = encode_batch(&b);
        // Truncations at every prefix length must error cleanly.
        for cut in 0..bytes.len() {
            assert!(decode_batch(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode_batch(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_batch(&long).is_err());
        // A corrupted row-count word must error, not attempt a huge
        // allocation or overflow the width multiply. Layout for the
        // single field "x": magic(4) + nfields(4) + name_len(2) +
        // name(1) + dtype(1) = 12, so rows lives at [12..20).
        for huge in [u64::MAX, 1 << 60, 1 << 32] {
            let mut bad_rows = bytes.clone();
            bad_rows[12..20].copy_from_slice(&huge.to_le_bytes());
            assert!(decode_batch(&bad_rows).is_err(), "rows={huge}");
        }
        // Same for a corrupted field count.
        let mut bad_fields = bytes.clone();
        bad_fields[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_batch(&bad_fields).is_err());
        // And for a corrupted text-length word: huge string lengths must
        // error cleanly too.
        let tschema = Arc::new(Schema::new(vec![Field::new("t", DataType::Text)]));
        let tb = Batch::new(tschema, vec![Column::from_texts(vec!["abc".into()])]).unwrap();
        let tbytes = encode_batch(&tb);
        let text_len_at = tbytes.len() - 4 - 3; // last record: u32 len + "abc"
        let mut bad_text = tbytes.clone();
        bad_text[text_len_at..text_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_batch(&bad_text).is_err());
    }
}
