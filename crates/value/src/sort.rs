//! Sort-index computation for multi-key ordering.

use std::cmp::Ordering;

use crate::column::Column;

/// One ORDER BY key: the column to sort by and its direction/null placement.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    pub descending: bool,
    /// When true, nulls sort after all values regardless of direction.
    pub nulls_last: bool,
}

impl SortKey {
    pub fn asc() -> SortKey {
        SortKey {
            descending: false,
            nulls_last: false,
        }
    }
    pub fn desc() -> SortKey {
        SortKey {
            descending: true,
            nulls_last: false,
        }
    }
}

/// Compare row `a` vs row `b` under the given keys.
pub fn compare_rows(columns: &[&Column], keys: &[SortKey], a: usize, b: usize) -> Ordering {
    compare_rows_pair(columns, a, columns, b, keys)
}

/// Compare row `a` of one column set against row `b` of a *different*,
/// type-aligned column set under the given keys — the k-way merge
/// comparator of the external sort, where each run's keys live in that
/// run's own spilled page.
pub fn compare_rows_pair(
    a_cols: &[&Column],
    a: usize,
    b_cols: &[&Column],
    b: usize,
    keys: &[SortKey],
) -> Ordering {
    for ((acol, bcol), key) in a_cols.iter().zip(b_cols).zip(keys) {
        let an = acol.is_null(a);
        let bn = bcol.is_null(b);
        let ord = match (an, bn) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if key.nulls_last {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, true) => {
                if key.nulls_last {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, false) => {
                let ord = acol.value(a).total_cmp(&bcol.value(b));
                if key.descending {
                    ord.reverse()
                } else {
                    ord
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Stable sort: returns row indices in sorted order.
pub fn sort_indices(columns: &[&Column], keys: &[SortKey]) -> Vec<usize> {
    assert_eq!(columns.len(), keys.len());
    let rows = columns.first().map_or(0, |c| c.len());
    let mut idx: Vec<usize> = (0..rows).collect();
    idx.sort_by(|&a, &b| compare_rows(columns, keys, a, b));
    idx
}

/// Sort only a pre-selected set of row indices (used by window partitions).
pub fn sort_subset(columns: &[&Column], keys: &[SortKey], subset: &mut [usize]) {
    subset.sort_by(|&a, &b| compare_rows(columns, keys, a, b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    #[test]
    fn single_key_asc_nulls_first() {
        let col = Column::from_opt_ints(vec![Some(3), None, Some(1)]);
        let idx = sort_indices(&[&col], &[SortKey::asc()]);
        assert_eq!(idx, vec![1, 2, 0]);
    }

    #[test]
    fn desc_with_nulls_last() {
        let col = Column::from_opt_ints(vec![Some(3), None, Some(1)]);
        let key = SortKey {
            descending: true,
            nulls_last: true,
        };
        let idx = sort_indices(&[&col], &[key]);
        assert_eq!(idx, vec![0, 2, 1]);
    }

    #[test]
    fn multi_key_stability() {
        let a = Column::from_ints(vec![1, 1, 0, 0]);
        let b = Column::from_texts(vec!["z".into(), "a".into(), "z".into(), "a".into()]);
        let idx = sort_indices(&[&a, &b], &[SortKey::asc(), SortKey::asc()]);
        assert_eq!(idx, vec![3, 2, 1, 0]);
        // Stability: equal keys keep input order.
        let c = Column::from_ints(vec![7, 7, 7]);
        let idx = sort_indices(&[&c], &[SortKey::asc()]);
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn pairwise_compare_across_column_sets() {
        let a = Column::from_opt_ints(vec![Some(5), None]);
        let b = Column::from_opt_ints(vec![Some(7), None]);
        let keys = [SortKey::asc()];
        assert_eq!(compare_rows_pair(&[&a], 0, &[&b], 0, &keys), Ordering::Less);
        assert_eq!(
            compare_rows_pair(&[&b], 0, &[&a], 0, &keys),
            Ordering::Greater
        );
        // Nulls compare across sets under the same placement rule.
        assert_eq!(compare_rows_pair(&[&a], 1, &[&b], 0, &keys), Ordering::Less);
        assert_eq!(
            compare_rows_pair(&[&a], 1, &[&b], 1, &keys),
            Ordering::Equal
        );
    }

    #[test]
    fn mixed_numeric_ordering() {
        let col = Column::from_values(
            crate::types::DataType::Float,
            &[Value::Float(2.5), Value::Float(1.0), Value::Float(10.0)],
        )
        .unwrap();
        let idx = sort_indices(&[&col], &[SortKey::asc()]);
        assert_eq!(idx, vec![1, 0, 2]);
    }
}
