//! Order-preserving-enough group-key encoding.
//!
//! Group-by, distinct, and join operators key their hash tables on a byte
//! encoding of the key row. The encoding guarantees `encode(a) == encode(b)`
//! iff the rows are SQL-equal under [`crate::types::Value::total_cmp`]
//! semantics (so `Int(2)` and `Float(2.0)` encode identically, and all NaNs
//! collapse to one key).

use crate::column::Column;
use crate::types::Value;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_NUM: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_TEMPORAL: u8 = 4;

/// Append the canonical encoding of one scalar to `buf`.
pub fn encode_value(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(*b as u8);
        }
        // Ints that fit exactly in f64 share an encoding with the equal
        // float, so mixed-type keys group correctly.
        Value::Int(i) => {
            buf.push(TAG_NUM);
            encode_f64(*i as f64, buf);
        }
        Value::Float(f) => {
            buf.push(TAG_NUM);
            encode_f64(*f, buf);
        }
        Value::Text(s) => {
            buf.push(TAG_TEXT);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.push(TAG_TEMPORAL);
            buf.extend_from_slice(&(*d as i64 * crate::calendar::MICROS_PER_DAY).to_le_bytes());
        }
        Value::Timestamp(t) => {
            buf.push(TAG_TEMPORAL);
            buf.extend_from_slice(&t.to_le_bytes());
        }
    }
}

fn encode_f64(f: f64, buf: &mut Vec<u8>) {
    // Canonicalize -0.0 to +0.0 and all NaNs to one bit pattern.
    let canon = if f == 0.0 {
        0.0f64
    } else if f.is_nan() {
        f64::NAN
    } else {
        f
    };
    buf.extend_from_slice(&canon.to_bits().to_le_bytes());
}

/// Append the encoding of row `row` of each key column to `buf`.
pub fn encode_key(columns: &[&Column], row: usize, buf: &mut Vec<u8>) {
    for col in columns {
        // Fast paths avoid materializing a Value for common types.
        if col.is_null(row) {
            buf.push(TAG_NULL);
            continue;
        }
        if let Some(v) = col.ints() {
            buf.push(TAG_NUM);
            encode_f64(v[row] as f64, buf);
        } else if let Some(v) = col.floats() {
            buf.push(TAG_NUM);
            encode_f64(v[row], buf);
        } else if let Some(v) = col.texts() {
            buf.push(TAG_TEXT);
            buf.extend_from_slice(&(v[row].len() as u32).to_le_bytes());
            buf.extend_from_slice(v[row].as_bytes());
        } else {
            encode_value(&col.value(row), buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(v: &Value) -> Vec<u8> {
        let mut b = Vec::new();
        encode_value(v, &mut b);
        b
    }

    #[test]
    fn int_float_equal_values_share_encoding() {
        assert_eq!(enc(&Value::Int(2)), enc(&Value::Float(2.0)));
        assert_ne!(enc(&Value::Int(2)), enc(&Value::Float(2.5)));
    }

    #[test]
    fn zero_and_nan_canonicalized() {
        assert_eq!(enc(&Value::Float(0.0)), enc(&Value::Float(-0.0)));
        let nan1 = f64::NAN;
        let nan2 = f64::from_bits(nan1.to_bits() | 1);
        assert_eq!(enc(&Value::Float(nan1)), enc(&Value::Float(nan2)));
    }

    #[test]
    fn date_timestamp_same_instant_share_encoding() {
        assert_eq!(
            enc(&Value::Date(3)),
            enc(&Value::Timestamp(3 * crate::calendar::MICROS_PER_DAY))
        );
    }

    #[test]
    fn text_prefix_safety() {
        // ("ab", "c") must not collide with ("a", "bc").
        let mut k1 = Vec::new();
        encode_value(&Value::Text("ab".into()), &mut k1);
        encode_value(&Value::Text("c".into()), &mut k1);
        let mut k2 = Vec::new();
        encode_value(&Value::Text("a".into()), &mut k2);
        encode_value(&Value::Text("bc".into()), &mut k2);
        assert_ne!(k1, k2);
    }

    #[test]
    fn encode_key_matches_encode_value() {
        let col = Column::from_opt_ints(vec![Some(5), None]);
        let mut fast = Vec::new();
        encode_key(&[&col], 0, &mut fast);
        assert_eq!(fast, enc(&Value::Int(5)));
        let mut null_key = Vec::new();
        encode_key(&[&col], 1, &mut null_key);
        assert_eq!(null_key, enc(&Value::Null));
    }
}
