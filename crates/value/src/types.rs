//! Scalar types: [`DataType`] and [`Value`].
//!
//! Dates are stored as days since 1970-01-01 (proleptic Gregorian);
//! timestamps as microseconds since the epoch. Both match the encodings the
//! warehouses supported by Sigma expose to clients.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::calendar;

/// Logical type of a column or scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
    /// Days since 1970-01-01.
    Date,
    /// Microseconds since 1970-01-01T00:00:00.
    Timestamp,
}

impl DataType {
    /// Name used in SQL type syntax and error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "BIGINT",
            DataType::Float => "DOUBLE",
            DataType::Text => "VARCHAR",
            DataType::Date => "DATE",
            DataType::Timestamp => "TIMESTAMP",
        }
    }

    /// True for `Int` and `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// True for `Date` and `Timestamp`.
    pub fn is_temporal(self) -> bool {
        matches!(self, DataType::Date | DataType::Timestamp)
    }

    /// The common supertype used for arithmetic/comparison coercion, if any.
    ///
    /// Int and Float unify to Float; equal types unify to themselves; Date
    /// and Timestamp unify to Timestamp. Everything else is incompatible.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            (Date, Timestamp) | (Timestamp, Date) => Some(Timestamp),
            _ => None,
        }
    }

    /// Parse a SQL type name (case-insensitive), accepting the aliases the
    /// supported dialects use.
    pub fn parse_sql(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOLEAN" | "BOOL" => Some(DataType::Bool),
            "BIGINT" | "INT" | "INTEGER" | "SMALLINT" | "INT64" | "NUMBER" => Some(DataType::Int),
            "DOUBLE" | "FLOAT" | "FLOAT8" | "FLOAT64" | "REAL" | "DOUBLE PRECISION" => {
                Some(DataType::Float)
            }
            "VARCHAR" | "TEXT" | "STRING" | "CHAR" => Some(DataType::Text),
            "DATE" => Some(DataType::Date),
            "TIMESTAMP" | "DATETIME" | "TIMESTAMP_NTZ" => Some(DataType::Timestamp),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value. `Null` is typeless and coerces to any column type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    /// Days since 1970-01-01.
    Date(i32),
    /// Microseconds since the epoch.
    Timestamp(i64),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value's type, or `None` for `Null`.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Numeric view (Int or Float), if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Temporal view in microseconds since the epoch (dates at midnight).
    pub fn as_micros(&self) -> Option<i64> {
        match self {
            Value::Date(d) => Some(*d as i64 * calendar::MICROS_PER_DAY),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Render the value the way result grids and CSV exports do.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    v.to_string()
                }
            }
            Value::Text(s) => s.clone(),
            Value::Date(d) => calendar::format_date(*d),
            Value::Timestamp(t) => calendar::format_timestamp(*t),
        }
    }

    /// Total order over values used by ORDER BY and sort keys.
    ///
    /// Nulls sort first; mixed Int/Float compare numerically; mixed
    /// Date/Timestamp compare on the timeline; otherwise mismatched types
    /// order by type tag so the ordering is total (the planner prevents
    /// genuinely heterogeneous comparisons from reaching execution).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Date(_), Timestamp(_)) | (Timestamp(_), Date(_)) => {
                self.as_micros().unwrap().cmp(&other.as_micros().unwrap())
            }
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// SQL equality (null-unaware; callers handle three-valued logic).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Text(_) => 3,
        Value::Date(_) | Value::Timestamp(_) => 4,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            f.write_str("NULL")
        } else {
            f.write_str(&self.render())
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_rules() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Float.unify(DataType::Int), Some(DataType::Float));
        assert_eq!(DataType::Int.unify(DataType::Int), Some(DataType::Int));
        assert_eq!(
            DataType::Date.unify(DataType::Timestamp),
            Some(DataType::Timestamp)
        );
        assert_eq!(DataType::Text.unify(DataType::Int), None);
    }

    #[test]
    fn total_cmp_nulls_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(1)), Ordering::Less);
        assert_eq!(Value::Int(1).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn total_cmp_numeric_mixed() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn date_timestamp_on_timeline() {
        let d = Value::Date(1); // 1970-01-02
        let t = Value::Timestamp(calendar::MICROS_PER_DAY); // same instant
        assert_eq!(d.total_cmp(&t), Ordering::Equal);
        let later = Value::Timestamp(calendar::MICROS_PER_DAY + 1);
        assert_eq!(d.total_cmp(&later), Ordering::Less);
    }

    #[test]
    fn render_float_trailing() {
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::Float(2.5).render(), "2.5");
        assert_eq!(Value::Int(7).render(), "7");
    }

    #[test]
    fn parse_sql_aliases() {
        assert_eq!(DataType::parse_sql("int64"), Some(DataType::Int));
        assert_eq!(DataType::parse_sql("STRING"), Some(DataType::Text));
        assert_eq!(DataType::parse_sql("bogus"), None);
    }
}
