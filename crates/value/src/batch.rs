//! Record batches: a schema plus equal-length columns.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::error::ValueError;
use crate::types::{DataType, Value};

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of fields. Names are compared case-insensitively,
/// matching the behaviour of the warehouses Sigma connects to.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    pub fn empty() -> Schema {
        Schema { fields: Vec::new() }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index of the field with the given name (case-insensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    pub fn field_named(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Append a field, erroring on duplicate names.
    pub fn push(&mut self, field: Field) -> Result<(), ValueError> {
        if self.index_of(&field.name).is_some() {
            return Err(ValueError::invalid(format!(
                "duplicate column name: {}",
                field.name
            )));
        }
        self.fields.push(field);
        Ok(())
    }

    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

/// An immutable batch of rows: an `Arc<Schema>` plus one column per field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    /// Build a batch, validating column count, types, and lengths.
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Batch, ValueError> {
        if schema.len() != columns.len() {
            return Err(ValueError::LengthMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields().iter().zip(&columns) {
            if c.dtype() != f.dtype {
                return Err(ValueError::TypeMismatch {
                    expected: format!("{} for column {}", f.dtype, f.name),
                    found: c.dtype().name().to_string(),
                });
            }
            if c.len() != rows {
                return Err(ValueError::LengthMismatch {
                    expected: rows,
                    found: c.len(),
                });
            }
        }
        Ok(Batch {
            schema,
            columns,
            rows,
        })
    }

    /// A zero-row batch with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Batch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::nulls(f.dtype, 0))
            .collect();
        Batch {
            columns,
            rows: 0,
            schema,
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Scalar at (row, col).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// One full row as scalars.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Project to the given column indices (may repeat/reorder).
    pub fn project(&self, indices: &[usize], names: Option<Vec<String>>) -> Batch {
        let fields: Vec<Field> = indices
            .iter()
            .enumerate()
            .map(|(out, &i)| {
                let name = names
                    .as_ref()
                    .map(|n| n[out].clone())
                    .unwrap_or_else(|| self.schema.field(i).name.clone());
                Field::new(name, self.schema.field(i).dtype)
            })
            .collect();
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Batch {
            schema: Arc::new(Schema::new(fields)),
            columns,
            rows: self.rows,
        }
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Batch {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.filter(mask)).collect();
        let rows = columns
            .first()
            .map_or_else(|| mask.iter().filter(|&&b| b).count(), |c| c.len());
        Batch {
            schema: self.schema.clone(),
            columns,
            rows,
        }
    }

    /// Gather rows by index.
    pub fn take(&self, indices: &[usize]) -> Batch {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(indices)).collect();
        Batch {
            schema: self.schema.clone(),
            columns,
            rows: indices.len(),
        }
    }

    /// Contiguous sub-range.
    pub fn slice(&self, offset: usize, len: usize) -> Batch {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.slice(offset, len)).collect();
        Batch {
            schema: self.schema.clone(),
            columns,
            rows: len,
        }
    }

    /// Concatenate same-schema batches (schema taken from the first).
    pub fn concat(parts: &[&Batch]) -> Result<Batch, ValueError> {
        let Some(first) = parts.first() else {
            return Err(ValueError::invalid("concat of zero batches"));
        };
        let mut columns = Vec::with_capacity(first.num_columns());
        for c in 0..first.num_columns() {
            let cols: Vec<&Column> = parts.iter().map(|b| b.column(c)).collect();
            columns.push(Column::concat(&cols)?);
        }
        let rows = parts.iter().map(|b| b.num_rows()).sum();
        Ok(Batch {
            schema: first.schema.clone(),
            columns,
            rows,
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Build a batch from rows of scalars (used by VALUES and tests).
    pub fn from_rows(schema: Arc<Schema>, rows: &[Vec<Value>]) -> Result<Batch, ValueError> {
        let mut builders: Vec<crate::column::ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| crate::column::ColumnBuilder::new(f.dtype, rows.len()))
            .collect();
        for row in rows {
            if row.len() != schema.len() {
                return Err(ValueError::LengthMismatch {
                    expected: schema.len(),
                    found: row.len(),
                });
            }
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v.clone())?;
            }
        }
        Batch::new(schema, builders.into_iter().map(|b| b.finish()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Text),
        ]));
        Batch::new(
            schema,
            vec![
                Column::from_ints(vec![1, 2, 3]),
                Column::from_texts(vec!["a".into(), "b".into(), "c".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let schema = Arc::new(Schema::new(vec![Field::new("id", DataType::Int)]));
        // Wrong type.
        assert!(Batch::new(schema.clone(), vec![Column::from_texts(vec!["x".into()])]).is_err());
        // Wrong column count.
        assert!(Batch::new(schema, vec![]).is_err());
    }

    #[test]
    fn lookup_case_insensitive() {
        let b = sample();
        assert!(b.column_by_name("ID").is_some());
        assert!(b.column_by_name("Name").is_some());
        assert!(b.column_by_name("missing").is_none());
    }

    #[test]
    fn project_renames() {
        let b = sample();
        let p = b.project(&[1, 0], Some(vec!["n".into(), "i".into()]));
        assert_eq!(p.schema().names(), vec!["n", "i"]);
        assert_eq!(p.value(0, 0), Value::Text("a".into()));
        assert_eq!(p.value(0, 1), Value::Int(1));
    }

    #[test]
    fn filter_take_slice_concat() {
        let b = sample();
        let f = b.filter(&[true, false, true]);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(1, 0), Value::Int(3));
        let t = b.take(&[2, 2]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, 1), Value::Text("c".into()));
        let s = b.slice(1, 1);
        assert_eq!(s.value(0, 0), Value::Int(2));
        let c = Batch::concat(&[&b, &s]).unwrap();
        assert_eq!(c.num_rows(), 4);
    }

    #[test]
    fn from_rows_round_trip() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Text),
        ]));
        let rows = vec![
            vec![Value::Int(1), Value::Text("p".into())],
            vec![Value::Null, Value::Text("q".into())],
        ];
        let b = Batch::from_rows(schema, &rows).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.row(1), vec![Value::Null, Value::Text("q".into())]);
    }

    #[test]
    fn duplicate_field_rejected() {
        let mut s = Schema::empty();
        s.push(Field::new("a", DataType::Int)).unwrap();
        assert!(s.push(Field::new("A", DataType::Text)).is_err());
    }
}
