//! CSV parsing and serialization with type inference.
//!
//! Used by the ad-hoc data path of the paper (§3.4): "Users can also add
//! their own CSV data as sources to any workbook element. The parsed file is
//! transparently marshaled into the user's warehouse as a database table."

use std::sync::Arc;

use crate::batch::{Batch, Field, Schema};
use crate::calendar;
use crate::column::ColumnBuilder;
use crate::error::ValueError;
use crate::types::{DataType, Value};

/// Split raw CSV text into records of fields, honoring RFC-4180 quoting
/// (quoted fields may contain commas, newlines, and doubled quotes).
pub fn parse_records(text: &str) -> Result<Vec<Vec<String>>, ValueError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                any = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                any = true;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                any = false;
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                any = false;
            }
            _ => {
                field.push(c);
                any = true;
            }
        }
    }
    if in_quotes {
        return Err(ValueError::Csv("unterminated quoted field".into()));
    }
    if any || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Infer the narrowest type that parses every non-empty sample.
///
/// Order tried: Int -> Float -> Date -> Timestamp -> Bool -> Text.
pub fn infer_type<'a>(samples: impl Iterator<Item = &'a str>) -> DataType {
    let mut candidates = [true; 5]; // int, float, date, timestamp, bool
    let mut saw_any = false;
    for s in samples {
        let s = s.trim();
        if s.is_empty() {
            continue;
        }
        saw_any = true;
        if candidates[0] && s.parse::<i64>().is_err() {
            candidates[0] = false;
        }
        if candidates[1] && s.parse::<f64>().is_err() {
            candidates[1] = false;
        }
        if candidates[2] && calendar::parse_date(s).is_none() {
            candidates[2] = false;
        }
        if candidates[3] && calendar::parse_timestamp(s).is_none() {
            candidates[3] = false;
        }
        if candidates[4] && !matches!(s.to_ascii_lowercase().as_str(), "true" | "false") {
            candidates[4] = false;
        }
        if !candidates.iter().any(|&c| c) {
            return DataType::Text;
        }
    }
    if !saw_any {
        return DataType::Text;
    }
    if candidates[0] {
        DataType::Int
    } else if candidates[1] {
        DataType::Float
    } else if candidates[2] {
        DataType::Date
    } else if candidates[3] {
        DataType::Timestamp
    } else if candidates[4] {
        DataType::Bool
    } else {
        DataType::Text
    }
}

/// Options for [`read_csv`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// First record is a header row.
    pub has_header: bool,
    /// Rows sampled for type inference (all rows if None).
    pub infer_rows: Option<usize>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            has_header: true,
            infer_rows: Some(1000),
        }
    }
}

/// Parse CSV text into a [`Batch`], inferring column types.
///
/// Empty fields become NULL. Fields that fail to parse under the inferred
/// type fall back to NULL rather than failing the whole load — matching how
/// the paper's Scenario 3 tolerates "dirty" pasted data that users then fix
/// with direct editing.
pub fn read_csv(text: &str, options: &CsvOptions) -> Result<Batch, ValueError> {
    let records = parse_records(text)?;
    if records.is_empty() {
        return Err(ValueError::Csv("empty input".into()));
    }
    let (header, data) = if options.has_header {
        (records[0].clone(), &records[1..])
    } else {
        let cols = records[0].len();
        (
            (0..cols).map(|i| format!("column_{}", i + 1)).collect(),
            &records[..],
        )
    };
    let ncols = header.len();
    for (i, rec) in data.iter().enumerate() {
        if rec.len() != ncols {
            return Err(ValueError::Csv(format!(
                "row {} has {} fields, expected {ncols}",
                i + 1,
                rec.len()
            )));
        }
    }

    let sample_n = options.infer_rows.unwrap_or(data.len()).min(data.len());
    let mut fields = Vec::with_capacity(ncols);
    let mut schema = Schema::empty();
    for (c, raw_name) in header.iter().enumerate() {
        let dtype = infer_type(data[..sample_n].iter().map(|r| r[c].as_str()));
        // De-duplicate header names the way spreadsheets do.
        let mut name = if raw_name.trim().is_empty() {
            format!("column_{}", c + 1)
        } else {
            raw_name.trim().to_string()
        };
        let mut suffix = 2;
        while schema.index_of(&name).is_some() {
            name = format!("{} ({suffix})", raw_name.trim());
            suffix += 1;
        }
        schema.push(Field::new(name, dtype)).expect("deduped");
        fields.push(dtype);
    }

    let mut builders: Vec<ColumnBuilder> = fields
        .iter()
        .map(|&t| ColumnBuilder::new(t, data.len()))
        .collect();
    for rec in data {
        for (c, raw) in rec.iter().enumerate() {
            let v = parse_field(raw, fields[c]);
            builders[c].push(v).expect("type guaranteed by parse_field");
        }
    }
    Batch::new(
        Arc::new(schema),
        builders.into_iter().map(|b| b.finish()).collect(),
    )
}

/// Parse one field under a known type; empty or unparseable becomes NULL.
pub fn parse_field(raw: &str, dtype: DataType) -> Value {
    let s = raw.trim();
    if s.is_empty() {
        return Value::Null;
    }
    match dtype {
        DataType::Int => s.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        DataType::Float => s.parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
        DataType::Bool => match s.to_ascii_lowercase().as_str() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::Null,
        },
        DataType::Date => calendar::parse_date(s)
            .map(Value::Date)
            .unwrap_or(Value::Null),
        DataType::Timestamp => calendar::parse_timestamp(s)
            .map(Value::Timestamp)
            .unwrap_or(Value::Null),
        DataType::Text => Value::Text(raw.to_string()),
    }
}

/// Serialize a batch to CSV with a header row.
pub fn write_csv(batch: &Batch) -> String {
    let mut out = String::new();
    let names: Vec<String> = batch
        .schema()
        .fields()
        .iter()
        .map(|f| quote_field(&f.name))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for r in 0..batch.num_rows() {
        let row: Vec<String> = (0..batch.num_columns())
            .map(|c| quote_field(&batch.value(r, c).render()))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn quote_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_inference() {
        let csv = "id,name,score,joined\n1,alice,3.5,2020-01-01\n2,bob,4.0,2020-02-01\n";
        let b = read_csv(csv, &CsvOptions::default()).unwrap();
        assert_eq!(b.num_rows(), 2);
        let s = b.schema();
        assert_eq!(s.field_named("id").unwrap().dtype, DataType::Int);
        assert_eq!(s.field_named("name").unwrap().dtype, DataType::Text);
        assert_eq!(s.field_named("score").unwrap().dtype, DataType::Float);
        assert_eq!(s.field_named("joined").unwrap().dtype, DataType::Date);
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let csv = "a,b\n\"x,y\",\"line1\nline2\"\n\"he said \"\"hi\"\"\",plain\n";
        let b = read_csv(csv, &CsvOptions::default()).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.value(0, 0), Value::Text("x,y".into()));
        assert_eq!(b.value(0, 1), Value::Text("line1\nline2".into()));
        assert_eq!(b.value(1, 0), Value::Text("he said \"hi\"".into()));
    }

    #[test]
    fn empty_fields_are_null() {
        let csv = "a,b\n1,\n,2\n";
        let b = read_csv(csv, &CsvOptions::default()).unwrap();
        assert_eq!(b.value(0, 1), Value::Null);
        assert_eq!(b.value(1, 0), Value::Null);
    }

    #[test]
    fn dirty_values_fall_back_to_null() {
        // Inference sample says Int; a later dirty row becomes NULL.
        let rows: Vec<String> = (0..50).map(|i| format!("{i}")).collect();
        let csv = format!("n\n{}\nnot_a_number\n", rows.join("\n"));
        let opts = CsvOptions {
            has_header: true,
            infer_rows: Some(10),
        };
        let b = read_csv(&csv, &opts).unwrap();
        assert_eq!(b.schema().field(0).dtype, DataType::Int);
        assert_eq!(b.value(50, 0), Value::Null);
    }

    #[test]
    fn header_dedup_and_blank_names() {
        let csv = "x,x,\n1,2,3\n";
        let b = read_csv(csv, &CsvOptions::default()).unwrap();
        let names = b.schema().names().join("|");
        assert_eq!(names, "x|x (2)|column_3");
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "a,b\n1\n";
        assert!(read_csv(csv, &CsvOptions::default()).is_err());
    }

    #[test]
    fn round_trip_write_read() {
        let csv = "a,b\n1,\"x,y\"\n2,plain\n";
        let b = read_csv(csv, &CsvOptions::default()).unwrap();
        let out = write_csv(&b);
        let b2 = read_csv(&out, &CsvOptions::default()).unwrap();
        assert_eq!(b.num_rows(), b2.num_rows());
        assert_eq!(b.value(0, 1), b2.value(0, 1));
    }

    #[test]
    fn no_header_mode() {
        let csv = "1,hello\n2,world\n";
        let b = read_csv(
            csv,
            &CsvOptions {
                has_header: false,
                infer_rows: None,
            },
        )
        .unwrap();
        assert_eq!(b.schema().names(), vec!["column_1", "column_2"]);
        assert_eq!(b.num_rows(), 2);
    }

    #[test]
    fn crlf_endings() {
        let csv = "a,b\r\n1,2\r\n3,4\r\n";
        let b = read_csv(csv, &CsvOptions::default()).unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.value(1, 1), Value::Int(4));
    }

    #[test]
    fn bool_inference() {
        let csv = "flag\ntrue\nfalse\nTRUE\n";
        let b = read_csv(csv, &CsvOptions::default()).unwrap();
        assert_eq!(b.schema().field(0).dtype, DataType::Bool);
        assert_eq!(b.value(2, 0), Value::Bool(true));
    }
}
