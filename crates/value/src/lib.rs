//! Columnar value layer shared by every tier of the Sigma Workbook
//! reproduction: scalar [`Value`]s, typed [`Column`]s with validity tracking,
//! [`Batch`]es (schema + columns), proleptic-Gregorian calendar math, CSV
//! reading/writing with type inference, sort-index computation, group-key
//! encoding, and a bit-exact binary batch codec (the spill-file format of
//! the warehouse's out-of-core operators).
//!
//! The browser runtime, the formula compiler, and the warehouse executor all
//! exchange data through this crate, mirroring how the paper's tiers share a
//! single result-set representation.

pub mod batch;
pub mod calendar;
pub mod codec;
pub mod column;
pub mod csv;
pub mod error;
pub mod hash;
pub mod lru;
pub mod pretty;
pub mod sort;
pub mod types;

pub use batch::{Batch, Field, Schema};
pub use codec::{decode_batch, encode_batch};
pub use column::{Column, ColumnBuilder};
pub use error::ValueError;
pub use types::{DataType, Value};
