//! ASCII rendering of batches, used by examples to show the workbook grid.

use crate::batch::Batch;

/// Render a batch as an ASCII table (at most `max_rows` data rows; a
/// trailing ellipsis row indicates truncation).
pub fn render(batch: &Batch, max_rows: usize) -> String {
    let ncols = batch.num_columns();
    if ncols == 0 {
        return format!("({} rows, no columns)\n", batch.num_rows());
    }
    let shown = batch.num_rows().min(max_rows);
    let mut widths: Vec<usize> = batch
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.chars().count())
        .collect();
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
    for r in 0..shown {
        let row: Vec<String> = (0..ncols)
            .map(|c| {
                let v = batch.value(r, c);
                if v.is_null() {
                    "∅".to_string()
                } else {
                    v.render()
                }
            })
            .collect();
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.chars().count());
        }
        cells.push(row);
    }

    let mut out = String::new();
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    sep(&mut out);
    out.push('|');
    for (f, w) in batch.schema().fields().iter().zip(&widths) {
        let pad = w - f.name.chars().count();
        out.push(' ');
        out.push_str(&f.name);
        out.push_str(&" ".repeat(pad + 1));
        out.push('|');
    }
    out.push('\n');
    sep(&mut out);
    for row in &cells {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            let pad = w - cell.chars().count();
            out.push(' ');
            out.push_str(cell);
            out.push_str(&" ".repeat(pad + 1));
            out.push('|');
        }
        out.push('\n');
    }
    sep(&mut out);
    if batch.num_rows() > shown {
        out.push_str(&format!("({} of {} rows shown)\n", shown, batch.num_rows()));
    } else {
        out.push_str(&format!("({} rows)\n", batch.num_rows()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{Field, Schema};
    use crate::column::Column;
    use crate::types::DataType;
    use std::sync::Arc;

    #[test]
    fn renders_grid() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Text),
        ]));
        let b = Batch::new(
            schema,
            vec![
                Column::from_ints(vec![1, 22]),
                Column::from_opt_texts(vec![Some("alpha".into()), None]),
            ],
        )
        .unwrap();
        let s = render(&b, 10);
        assert!(s.contains("| id | name"));
        assert!(s.contains("| 22 | ∅"));
        assert!(s.contains("(2 rows)"));
    }

    #[test]
    fn truncates() {
        let schema = Arc::new(Schema::new(vec![Field::new("n", DataType::Int)]));
        let b = Batch::new(schema, vec![Column::from_ints((0..100).collect())]).unwrap();
        let s = render(&b, 5);
        assert!(s.contains("(5 of 100 rows shown)"));
    }
}
