//! A reusable LRU recency index: monotone sequence counter + `BTreeMap`,
//! giving O(log n) touch/insert/evict. Shared by the service's query
//! directory and the warehouse's persisted-result retention so the two
//! caches cannot drift apart in bookkeeping semantics.
//!
//! The index tracks *order only* — callers own the key→value storage and
//! must keep membership in sync (insert/remove mirrored on both sides).

use std::borrow::Borrow;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Recency index over keys of type `K`, least-recently-used first.
#[derive(Debug, Clone)]
pub struct LruIndex<K: Eq + Hash + Clone> {
    /// seq → key; the smallest sequence number is the eviction candidate.
    recency: BTreeMap<u64, K>,
    seq_of: HashMap<K, u64>,
    next_seq: u64,
}

impl<K: Eq + Hash + Clone> Default for LruIndex<K> {
    fn default() -> Self {
        LruIndex {
            recency: BTreeMap::new(),
            seq_of: HashMap::new(),
            next_seq: 0,
        }
    }
}

impl<K: Eq + Hash + Clone> LruIndex<K> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.seq_of.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seq_of.is_empty()
    }

    /// Promote `key` to most-recently-used. Returns false (and does
    /// nothing) if the key is not tracked.
    pub fn touch<Q>(&mut self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ToOwned<Owned = K> + ?Sized,
    {
        let Some(&old) = self.seq_of.get(key) else {
            return false;
        };
        let key = key.to_owned();
        self.recency.remove(&old);
        self.recency.insert(self.next_seq, key.clone());
        self.seq_of.insert(key, self.next_seq);
        self.next_seq += 1;
        true
    }

    /// Track `key` as most-recently-used (re-inserting promotes).
    pub fn insert(&mut self, key: K) {
        if let Some(&old) = self.seq_of.get(&key) {
            self.recency.remove(&old);
        }
        self.recency.insert(self.next_seq, key.clone());
        self.seq_of.insert(key, self.next_seq);
        self.next_seq += 1;
    }

    /// Stop tracking `key`. Returns whether it was tracked.
    pub fn remove<Q>(&mut self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        match self.seq_of.remove(key) {
            Some(seq) => {
                self.recency.remove(&seq);
                true
            }
            None => false,
        }
    }

    /// Pop the least-recently-used key.
    pub fn evict_oldest(&mut self) -> Option<K> {
        let (&seq, key) = self.recency.iter().next()?;
        let key = key.clone();
        self.recency.remove(&seq);
        self.seq_of.remove(&key);
        Some(key)
    }

    pub fn clear(&mut self) {
        self.recency.clear();
        self.seq_of.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_lru_order_with_touch_and_reinsert() {
        let mut lru = LruIndex::new();
        lru.insert("a");
        lru.insert("b");
        lru.insert("c");
        assert!(lru.touch(&"a")); // order now b, c, a
        lru.insert("b"); // re-insert promotes: c, a, b
        assert_eq!(lru.evict_oldest(), Some("c"));
        assert_eq!(lru.evict_oldest(), Some("a"));
        assert_eq!(lru.evict_oldest(), Some("b"));
        assert_eq!(lru.evict_oldest(), None);
    }

    #[test]
    fn remove_and_untracked_touch() {
        let mut lru = LruIndex::new();
        lru.insert(1);
        assert!(lru.remove(&1));
        assert!(!lru.remove(&1));
        assert!(!lru.touch(&1));
        assert!(lru.is_empty());
    }
}
