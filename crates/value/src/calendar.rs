//! Proleptic Gregorian calendar arithmetic.
//!
//! Dates are day counts since 1970-01-01; timestamps are microseconds since
//! the epoch. Conversions use Howard Hinnant's `days_from_civil` /
//! `civil_from_days` algorithms, which are exact over the full i32 range.

pub const MICROS_PER_SECOND: i64 = 1_000_000;
pub const MICROS_PER_MINUTE: i64 = 60 * MICROS_PER_SECOND;
pub const MICROS_PER_HOUR: i64 = 60 * MICROS_PER_MINUTE;
pub const MICROS_PER_DAY: i64 = 24 * MICROS_PER_HOUR;

/// Convert a civil date (year, month 1-12, day 1-31) to days since epoch.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era: i32 = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i32 - 719_468
}

/// Convert days since epoch back to a civil (year, month, day).
pub fn civil_from_days(days: i32) -> (i32, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Gregorian leap-year test.
pub fn is_leap(y: i32) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

/// Last day (28-31) of the given month.
pub fn last_day_of_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {m}"),
    }
}

/// ISO weekday: 1 = Monday ... 7 = Sunday.
pub fn iso_weekday(days: i32) -> u32 {
    // 1970-01-01 was a Thursday (ISO 4).
    (((days % 7) + 7 + 3) % 7 + 1) as u32
}

/// Spreadsheet weekday convention: 1 = Sunday ... 7 = Saturday.
pub fn spreadsheet_weekday(days: i32) -> u32 {
    iso_weekday(days) % 7 + 1
}

/// Units understood by `DateTrunc`, `DatePart`, `DateAdd`, and `DateDiff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DateUnit {
    Year,
    Quarter,
    Month,
    Week,
    Day,
    Hour,
    Minute,
    Second,
}

impl DateUnit {
    /// Parse the unit names accepted by the formula language and SQL.
    pub fn parse(s: &str) -> Option<DateUnit> {
        match s.to_ascii_lowercase().as_str() {
            "year" | "years" | "y" | "yy" => Some(DateUnit::Year),
            "quarter" | "quarters" | "q" => Some(DateUnit::Quarter),
            "month" | "months" | "mon" => Some(DateUnit::Month),
            "week" | "weeks" | "w" => Some(DateUnit::Week),
            "day" | "days" | "d" => Some(DateUnit::Day),
            "hour" | "hours" | "h" => Some(DateUnit::Hour),
            "minute" | "minutes" | "min" => Some(DateUnit::Minute),
            "second" | "seconds" | "sec" | "s" => Some(DateUnit::Second),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            DateUnit::Year => "year",
            DateUnit::Quarter => "quarter",
            DateUnit::Month => "month",
            DateUnit::Week => "week",
            DateUnit::Day => "day",
            DateUnit::Hour => "hour",
            DateUnit::Minute => "minute",
            DateUnit::Second => "second",
        }
    }
}

/// Truncate a day count to the start of the given unit (returns days).
pub fn trunc_date(days: i32, unit: DateUnit) -> i32 {
    let (y, m, _) = civil_from_days(days);
    match unit {
        DateUnit::Year => days_from_civil(y, 1, 1),
        DateUnit::Quarter => days_from_civil(y, (m - 1) / 3 * 3 + 1, 1),
        DateUnit::Month => days_from_civil(y, m, 1),
        // ISO weeks start on Monday.
        DateUnit::Week => days - (iso_weekday(days) as i32 - 1),
        DateUnit::Day | DateUnit::Hour | DateUnit::Minute | DateUnit::Second => days,
    }
}

/// Truncate a timestamp (micros) to the start of the given unit.
pub fn trunc_timestamp(micros: i64, unit: DateUnit) -> i64 {
    let days = micros.div_euclid(MICROS_PER_DAY) as i32;
    let within = micros.rem_euclid(MICROS_PER_DAY);
    match unit {
        DateUnit::Year | DateUnit::Quarter | DateUnit::Month | DateUnit::Week | DateUnit::Day => {
            trunc_date(days, unit) as i64 * MICROS_PER_DAY
        }
        DateUnit::Hour => days as i64 * MICROS_PER_DAY + within / MICROS_PER_HOUR * MICROS_PER_HOUR,
        DateUnit::Minute => {
            days as i64 * MICROS_PER_DAY + within / MICROS_PER_MINUTE * MICROS_PER_MINUTE
        }
        DateUnit::Second => {
            days as i64 * MICROS_PER_DAY + within / MICROS_PER_SECOND * MICROS_PER_SECOND
        }
    }
}

/// Extract a part from a day count.
pub fn date_part(days: i32, unit: DateUnit) -> i64 {
    let (y, m, d) = civil_from_days(days);
    match unit {
        DateUnit::Year => y as i64,
        DateUnit::Quarter => ((m - 1) / 3 + 1) as i64,
        DateUnit::Month => m as i64,
        DateUnit::Week => iso_week_of_year(days) as i64,
        DateUnit::Day => d as i64,
        DateUnit::Hour | DateUnit::Minute | DateUnit::Second => 0,
    }
}

/// Extract a part from a timestamp (micros).
pub fn timestamp_part(micros: i64, unit: DateUnit) -> i64 {
    let days = micros.div_euclid(MICROS_PER_DAY) as i32;
    let within = micros.rem_euclid(MICROS_PER_DAY);
    match unit {
        DateUnit::Hour => within / MICROS_PER_HOUR,
        DateUnit::Minute => within % MICROS_PER_HOUR / MICROS_PER_MINUTE,
        DateUnit::Second => within % MICROS_PER_MINUTE / MICROS_PER_SECOND,
        other => date_part(days, other),
    }
}

/// ISO-8601 week number (1-53).
pub fn iso_week_of_year(days: i32) -> u32 {
    // Week containing the first Thursday of the year is week 1.
    let thursday = days + (4 - iso_weekday(days) as i32); // Thursday of this ISO week
    let (y, _, _) = civil_from_days(thursday);
    let jan1 = days_from_civil(y, 1, 1);
    ((thursday - jan1) / 7 + 1) as u32
}

/// Add months to a date, clamping the day to the target month's last day.
pub fn add_months(days: i32, months: i64) -> i32 {
    let (y, m, d) = civil_from_days(days);
    let total = y as i64 * 12 + (m as i64 - 1) + months;
    let ny = total.div_euclid(12) as i32;
    let nm = (total.rem_euclid(12) + 1) as u32;
    let nd = d.min(last_day_of_month(ny, nm));
    days_from_civil(ny, nm, nd)
}

/// Add `n` units to a day count (hour/minute/second promote to timestamps at
/// the caller's discretion; here sub-day units are a no-op on dates).
pub fn date_add(days: i32, unit: DateUnit, n: i64) -> i32 {
    match unit {
        DateUnit::Year => add_months(days, n * 12),
        DateUnit::Quarter => add_months(days, n * 3),
        DateUnit::Month => add_months(days, n),
        DateUnit::Week => days + (n * 7) as i32,
        DateUnit::Day => days + n as i32,
        _ => days,
    }
}

/// Add `n` units to a timestamp.
pub fn timestamp_add(micros: i64, unit: DateUnit, n: i64) -> i64 {
    match unit {
        DateUnit::Hour => micros + n * MICROS_PER_HOUR,
        DateUnit::Minute => micros + n * MICROS_PER_MINUTE,
        DateUnit::Second => micros + n * MICROS_PER_SECOND,
        _ => {
            let days = micros.div_euclid(MICROS_PER_DAY) as i32;
            let within = micros.rem_euclid(MICROS_PER_DAY);
            date_add(days, unit, n) as i64 * MICROS_PER_DAY + within
        }
    }
}

/// Count unit boundaries crossed between two day counts (Snowflake-style).
pub fn date_diff(from_days: i32, to_days: i32, unit: DateUnit) -> i64 {
    let (fy, fm, _) = civil_from_days(from_days);
    let (ty, tm, _) = civil_from_days(to_days);
    match unit {
        DateUnit::Year => (ty - fy) as i64,
        DateUnit::Quarter => {
            (ty as i64 * 4 + ((tm - 1) / 3) as i64) - (fy as i64 * 4 + ((fm - 1) / 3) as i64)
        }
        DateUnit::Month => (ty as i64 * 12 + tm as i64) - (fy as i64 * 12 + fm as i64),
        DateUnit::Week => {
            (trunc_date(to_days, DateUnit::Week) as i64
                - trunc_date(from_days, DateUnit::Week) as i64)
                / 7
        }
        DateUnit::Day => (to_days - from_days) as i64,
        _ => 0,
    }
}

/// Count unit boundaries crossed between two timestamps.
pub fn timestamp_diff(from: i64, to: i64, unit: DateUnit) -> i64 {
    match unit {
        DateUnit::Hour => to.div_euclid(MICROS_PER_HOUR) - from.div_euclid(MICROS_PER_HOUR),
        DateUnit::Minute => to.div_euclid(MICROS_PER_MINUTE) - from.div_euclid(MICROS_PER_MINUTE),
        DateUnit::Second => to.div_euclid(MICROS_PER_SECOND) - from.div_euclid(MICROS_PER_SECOND),
        other => date_diff(
            from.div_euclid(MICROS_PER_DAY) as i32,
            to.div_euclid(MICROS_PER_DAY) as i32,
            other,
        ),
    }
}

/// Format a day count as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Format a timestamp as `YYYY-MM-DD HH:MM:SS[.ffffff]`.
pub fn format_timestamp(micros: i64) -> String {
    let days = micros.div_euclid(MICROS_PER_DAY) as i32;
    let within = micros.rem_euclid(MICROS_PER_DAY);
    let (y, m, d) = civil_from_days(days);
    let h = within / MICROS_PER_HOUR;
    let mi = within % MICROS_PER_HOUR / MICROS_PER_MINUTE;
    let s = within % MICROS_PER_MINUTE / MICROS_PER_SECOND;
    let us = within % MICROS_PER_SECOND;
    if us == 0 {
        format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    } else {
        format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}.{us:06}")
    }
}

/// Parse `YYYY-MM-DD` into a day count.
pub fn parse_date(s: &str) -> Option<i32> {
    let b = s.trim().as_bytes();
    // Minimal fixed-format parser; rejects out-of-range components.
    let dash1 = b.iter().position(|&c| c == b'-')?;
    if dash1 == 0 {
        return None;
    }
    let rest = &s.trim()[dash1 + 1..];
    let dash2 = rest.find('-')?;
    let y: i32 = s.trim()[..dash1].parse().ok()?;
    let m: u32 = rest[..dash2].parse().ok()?;
    let d: u32 = rest[dash2 + 1..].parse().ok()?;
    if !(1..=12).contains(&m) || d < 1 || d > last_day_of_month(y, m) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

/// Parse `YYYY-MM-DD[ T]HH:MM[:SS[.ffffff]]` into micros. A bare date parses
/// as midnight.
pub fn parse_timestamp(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(days) = parse_date(s) {
        return Some(days as i64 * MICROS_PER_DAY);
    }
    let split = s.find([' ', 'T'])?;
    let days = parse_date(&s[..split])? as i64;
    let time = &s[split + 1..];
    let mut parts = time.splitn(3, ':');
    let h: i64 = parts.next()?.parse().ok()?;
    let mi: i64 = parts.next()?.parse().ok()?;
    let (sec, us) = match parts.next() {
        None => (0, 0),
        Some(sp) => {
            if let Some(dot) = sp.find('.') {
                let sec: i64 = sp[..dot].parse().ok()?;
                let frac = &sp[dot + 1..];
                if frac.len() > 6 || frac.is_empty() {
                    return None;
                }
                let mut us: i64 = frac.parse().ok()?;
                us *= 10_i64.pow(6 - frac.len() as u32);
                (sec, us)
            } else {
                (sp.parse().ok()?, 0)
            }
        }
    };
    if !(0..24).contains(&h) || !(0..60).contains(&mi) || !(0..60).contains(&sec) {
        return None;
    }
    Some(
        days * MICROS_PER_DAY
            + h * MICROS_PER_HOUR
            + mi * MICROS_PER_MINUTE
            + sec * MICROS_PER_SECOND
            + us,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn civil_round_trip_wide_range() {
        for days in (-800_000..800_000).step_by(997) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "at {y}-{m}-{d}");
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(2024));
        assert!(!is_leap(2023));
        assert_eq!(last_day_of_month(2024, 2), 29);
        assert_eq!(last_day_of_month(2023, 2), 28);
    }

    #[test]
    fn weekday_known_dates() {
        // 1970-01-01 was a Thursday.
        assert_eq!(iso_weekday(0), 4);
        // 2000-01-01 was a Saturday.
        assert_eq!(iso_weekday(days_from_civil(2000, 1, 1)), 6);
        // Negative days: 1969-12-31 was a Wednesday.
        assert_eq!(iso_weekday(-1), 3);
        assert_eq!(spreadsheet_weekday(0), 5); // Thursday = 5 in Sunday-first
    }

    #[test]
    fn trunc_quarter() {
        let d = days_from_civil(2019, 8, 17);
        assert_eq!(
            civil_from_days(trunc_date(d, DateUnit::Quarter)),
            (2019, 7, 1)
        );
        let d2 = days_from_civil(2019, 1, 1);
        assert_eq!(
            civil_from_days(trunc_date(d2, DateUnit::Quarter)),
            (2019, 1, 1)
        );
    }

    #[test]
    fn trunc_week_is_monday() {
        // 2021-03-10 was a Wednesday; week starts 2021-03-08 (Monday).
        let d = days_from_civil(2021, 3, 10);
        assert_eq!(civil_from_days(trunc_date(d, DateUnit::Week)), (2021, 3, 8));
        let monday = days_from_civil(2021, 3, 8);
        assert_eq!(trunc_date(monday, DateUnit::Week), monday);
    }

    #[test]
    fn add_months_clamps() {
        let jan31 = days_from_civil(2021, 1, 31);
        assert_eq!(civil_from_days(add_months(jan31, 1)), (2021, 2, 28));
        assert_eq!(civil_from_days(add_months(jan31, 13)), (2022, 2, 28));
        assert_eq!(civil_from_days(add_months(jan31, -2)), (2020, 11, 30));
    }

    #[test]
    fn diff_counts_boundaries() {
        let a = days_from_civil(2019, 12, 31);
        let b = days_from_civil(2020, 1, 1);
        assert_eq!(date_diff(a, b, DateUnit::Year), 1);
        assert_eq!(date_diff(a, b, DateUnit::Month), 1);
        assert_eq!(date_diff(a, b, DateUnit::Day), 1);
        assert_eq!(date_diff(b, a, DateUnit::Year), -1);
        let c = days_from_civil(2020, 12, 30);
        assert_eq!(date_diff(a, c, DateUnit::Quarter), 4);
    }

    #[test]
    fn parse_and_format_round_trip() {
        for s in ["1987-10-01", "2020-02-29", "0001-01-01"] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s);
        }
        assert!(parse_date("2021-02-29").is_none());
        assert!(parse_date("2021-13-01").is_none());
        assert!(parse_date("garbage").is_none());
    }

    #[test]
    fn parse_timestamps() {
        let t = parse_timestamp("2020-05-01 13:45:30").unwrap();
        assert_eq!(format_timestamp(t), "2020-05-01 13:45:30");
        let t2 = parse_timestamp("2020-05-01T13:45:30.25").unwrap();
        assert_eq!(format_timestamp(t2), "2020-05-01 13:45:30.250000");
        let t3 = parse_timestamp("2020-05-01").unwrap();
        assert_eq!(format_timestamp(t3), "2020-05-01 00:00:00");
        assert!(parse_timestamp("2020-05-01 25:00:00").is_none());
    }

    #[test]
    fn iso_weeks() {
        // 2021-01-01 is a Friday, part of ISO week 53 of 2020.
        assert_eq!(iso_week_of_year(days_from_civil(2021, 1, 1)), 53);
        // 2021-01-04 is the first Monday -> week 1.
        assert_eq!(iso_week_of_year(days_from_civil(2021, 1, 4)), 1);
        assert_eq!(iso_week_of_year(days_from_civil(2020, 12, 31)), 53);
    }

    #[test]
    fn timestamp_parts() {
        let t = parse_timestamp("2020-05-01 13:45:30").unwrap();
        assert_eq!(timestamp_part(t, DateUnit::Hour), 13);
        assert_eq!(timestamp_part(t, DateUnit::Minute), 45);
        assert_eq!(timestamp_part(t, DateUnit::Second), 30);
        assert_eq!(timestamp_part(t, DateUnit::Year), 2020);
        assert_eq!(
            trunc_timestamp(t, DateUnit::Hour),
            parse_timestamp("2020-05-01 13:00:00").unwrap()
        );
    }
}
