//! Error type for the value layer.

use std::fmt;

/// Errors raised by columnar data operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// A value of one type was used where another was required.
    TypeMismatch { expected: String, found: String },
    /// Two columns or batches that must agree in length did not.
    LengthMismatch { expected: usize, found: usize },
    /// A column or field name was not found in a schema.
    UnknownColumn(String),
    /// A textual value could not be parsed into the requested type.
    Parse { input: String, target: String },
    /// Malformed CSV input.
    Csv(String),
    /// Anything else (arithmetic domain errors, invalid dates, ...).
    Invalid(String),
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ValueError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
            ValueError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            ValueError::Parse { input, target } => {
                write!(f, "cannot parse {input:?} as {target}")
            }
            ValueError::Csv(msg) => write!(f, "csv error: {msg}"),
            ValueError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ValueError {}

impl ValueError {
    /// Convenience constructor for [`ValueError::Invalid`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        ValueError::Invalid(msg.into())
    }
}
