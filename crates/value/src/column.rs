//! Typed columnar vectors with validity tracking.
//!
//! A [`Column`] stores values of a single [`DataType`] densely, with an
//! optional validity mask (absent means "no nulls"). Null slots hold an
//! arbitrary default in the data vector and must never be read through the
//! typed accessors without consulting validity.

use serde::{Deserialize, Serialize};

use crate::error::ValueError;
use crate::types::{DataType, Value};

/// Physical storage for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Text(Vec<String>),
    Date(Vec<i32>),
    Timestamp(Vec<i64>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Text(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Timestamp(v) => v.len(),
        }
    }

    fn dtype(&self) -> DataType {
        match self {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Text(_) => DataType::Text,
            ColumnData::Date(_) => DataType::Date,
            ColumnData::Timestamp(_) => DataType::Timestamp,
        }
    }

    fn with_capacity(dtype: DataType, cap: usize) -> ColumnData {
        match dtype {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Text => ColumnData::Text(Vec::with_capacity(cap)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(cap)),
            DataType::Timestamp => ColumnData::Timestamp(Vec::with_capacity(cap)),
        }
    }
}

/// An immutable column of values sharing one [`DataType`].
///
/// Internals are `Arc`-shared: cloning a column (and therefore a `Batch`)
/// is O(1), which keeps scans, caches, and plan rewrites cheap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    data: std::sync::Arc<ColumnData>,
    /// `None` means every slot is valid. `Some(mask)` marks valid slots true.
    validity: Option<std::sync::Arc<Vec<bool>>>,
}

impl Column {
    /// Build a column of `dtype` from scalar values, coercing `Int -> Float`
    /// and `Date -> Timestamp` where the declared type requires it.
    pub fn from_values(dtype: DataType, values: &[Value]) -> Result<Column, ValueError> {
        let mut b = ColumnBuilder::new(dtype, values.len());
        for v in values {
            b.push(v.clone())?;
        }
        Ok(b.finish())
    }

    /// An all-null column of the given type and length.
    pub fn nulls(dtype: DataType, len: usize) -> Column {
        let mut b = ColumnBuilder::new(dtype, len);
        for _ in 0..len {
            b.push_null();
        }
        b.finish()
    }

    pub fn from_bools(v: Vec<bool>) -> Column {
        Column {
            data: std::sync::Arc::new(ColumnData::Bool(v)),
            validity: None,
        }
    }
    pub fn from_ints(v: Vec<i64>) -> Column {
        Column {
            data: std::sync::Arc::new(ColumnData::Int(v)),
            validity: None,
        }
    }
    pub fn from_floats(v: Vec<f64>) -> Column {
        Column {
            data: std::sync::Arc::new(ColumnData::Float(v)),
            validity: None,
        }
    }
    pub fn from_texts(v: Vec<String>) -> Column {
        Column {
            data: std::sync::Arc::new(ColumnData::Text(v)),
            validity: None,
        }
    }
    pub fn from_dates(v: Vec<i32>) -> Column {
        Column {
            data: std::sync::Arc::new(ColumnData::Date(v)),
            validity: None,
        }
    }
    pub fn from_timestamps(v: Vec<i64>) -> Column {
        Column {
            data: std::sync::Arc::new(ColumnData::Timestamp(v)),
            validity: None,
        }
    }

    pub fn from_opt_ints(v: Vec<Option<i64>>) -> Column {
        let validity: Vec<bool> = v.iter().map(|x| x.is_some()).collect();
        let data: Vec<i64> = v.into_iter().map(|x| x.unwrap_or_default()).collect();
        Column {
            data: std::sync::Arc::new(ColumnData::Int(data)),
            validity: Some(std::sync::Arc::new(validity)),
        }
        .normalized()
    }
    pub fn from_opt_floats(v: Vec<Option<f64>>) -> Column {
        let validity: Vec<bool> = v.iter().map(|x| x.is_some()).collect();
        let data: Vec<f64> = v.into_iter().map(|x| x.unwrap_or_default()).collect();
        Column {
            data: std::sync::Arc::new(ColumnData::Float(data)),
            validity: Some(std::sync::Arc::new(validity)),
        }
        .normalized()
    }
    pub fn from_opt_texts(v: Vec<Option<String>>) -> Column {
        let validity: Vec<bool> = v.iter().map(|x| x.is_some()).collect();
        let data: Vec<String> = v.into_iter().map(|x| x.unwrap_or_default()).collect();
        Column {
            data: std::sync::Arc::new(ColumnData::Text(data)),
            validity: Some(std::sync::Arc::new(validity)),
        }
        .normalized()
    }
    pub fn from_opt_bools(v: Vec<Option<bool>>) -> Column {
        let validity: Vec<bool> = v.iter().map(|x| x.is_some()).collect();
        let data: Vec<bool> = v.into_iter().map(|x| x.unwrap_or_default()).collect();
        Column {
            data: std::sync::Arc::new(ColumnData::Bool(data)),
            validity: Some(std::sync::Arc::new(validity)),
        }
        .normalized()
    }
    pub fn from_opt_dates(v: Vec<Option<i32>>) -> Column {
        let validity: Vec<bool> = v.iter().map(|x| x.is_some()).collect();
        let data: Vec<i32> = v.into_iter().map(|x| x.unwrap_or_default()).collect();
        Column {
            data: std::sync::Arc::new(ColumnData::Date(data)),
            validity: Some(std::sync::Arc::new(validity)),
        }
        .normalized()
    }
    pub fn from_opt_timestamps(v: Vec<Option<i64>>) -> Column {
        let validity: Vec<bool> = v.iter().map(|x| x.is_some()).collect();
        let data: Vec<i64> = v.into_iter().map(|x| x.unwrap_or_default()).collect();
        Column {
            data: std::sync::Arc::new(ColumnData::Timestamp(data)),
            validity: Some(std::sync::Arc::new(validity)),
        }
        .normalized()
    }

    /// Typed constructors from raw kernel output: dense data plus an
    /// optional validity mask (`true` = valid). An all-true mask is
    /// normalized away so downstream fast paths see "no nulls"; null
    /// slots must hold the builder defaults (`0` / `0.0` / `false` /
    /// empty string) so bit-exact comparisons and the spill codec agree
    /// with [`ColumnBuilder`] output.
    pub fn new_bool(data: Vec<bool>, validity: Option<Vec<bool>>) -> Column {
        Column::from_raw(ColumnData::Bool(data), validity).normalized()
    }
    /// See [`Column::new_bool`].
    pub fn new_int(data: Vec<i64>, validity: Option<Vec<bool>>) -> Column {
        Column::from_raw(ColumnData::Int(data), validity).normalized()
    }
    /// See [`Column::new_bool`].
    pub fn new_float(data: Vec<f64>, validity: Option<Vec<bool>>) -> Column {
        Column::from_raw(ColumnData::Float(data), validity).normalized()
    }
    /// See [`Column::new_bool`].
    pub fn new_text(data: Vec<String>, validity: Option<Vec<bool>>) -> Column {
        Column::from_raw(ColumnData::Text(data), validity).normalized()
    }
    /// See [`Column::new_bool`].
    pub fn new_date(data: Vec<i32>, validity: Option<Vec<bool>>) -> Column {
        Column::from_raw(ColumnData::Date(data), validity).normalized()
    }
    /// See [`Column::new_bool`].
    pub fn new_timestamp(data: Vec<i64>, validity: Option<Vec<bool>>) -> Column {
        Column::from_raw(ColumnData::Timestamp(data), validity).normalized()
    }

    /// Drop the validity mask if it is all-true.
    fn normalized(mut self) -> Column {
        if let Some(mask) = &self.validity {
            if mask.iter().all(|&b| b) {
                self.validity = None;
            }
        }
        self
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dtype(&self) -> DataType {
        self.data.dtype()
    }

    pub fn is_null(&self, i: usize) -> bool {
        match &self.validity {
            Some(mask) => !mask[i],
            None => false,
        }
    }

    pub fn null_count(&self) -> usize {
        match &self.validity {
            Some(mask) => mask.iter().filter(|&&b| !b).count(),
            None => 0,
        }
    }

    /// Raw validity mask (`true` = valid), `None` when every slot is
    /// valid. Pair with the typed slice accessors ([`Column::ints`] and
    /// friends) to drive null handling in columnar kernels without a
    /// per-row [`Column::is_null`] call.
    pub fn validity(&self) -> Option<&[bool]> {
        self.validity.as_ref().map(|m| m.as_slice())
    }

    /// Scalar at row `i` (clones text).
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self.data.as_ref() {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Text(v) => Value::Text(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Timestamp(v) => Value::Timestamp(v[i]),
        }
    }

    /// Iterate scalars (clones text values).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Raw typed data, ignoring validity. Callers must pair with `is_null`.
    pub fn bools(&self) -> Option<&[bool]> {
        match self.data.as_ref() {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }
    pub fn ints(&self) -> Option<&[i64]> {
        match self.data.as_ref() {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }
    pub fn floats(&self) -> Option<&[f64]> {
        match self.data.as_ref() {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }
    pub fn texts(&self) -> Option<&[String]> {
        match self.data.as_ref() {
            ColumnData::Text(v) => Some(v),
            _ => None,
        }
    }
    pub fn dates(&self) -> Option<&[i32]> {
        match self.data.as_ref() {
            ColumnData::Date(v) => Some(v),
            _ => None,
        }
    }
    pub fn timestamps(&self) -> Option<&[i64]> {
        match self.data.as_ref() {
            ColumnData::Timestamp(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view of row `i` as f64 (Int or Float), None when null or
    /// non-numeric.
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            return None;
        }
        match self.data.as_ref() {
            ColumnData::Int(v) => Some(v[i] as f64),
            ColumnData::Float(v) => Some(v[i]),
            _ => None,
        }
    }

    /// Gather rows by index. Panics on out-of-bounds.
    pub fn take(&self, indices: &[usize]) -> Column {
        let validity = self
            .validity
            .as_ref()
            .map(|mask| indices.iter().map(|&i| mask[i]).collect::<Vec<_>>());
        // Drop an all-true mask produced by gathering only valid slots.
        let validity = validity.filter(|m| m.iter().any(|&b| !b));
        let data = match self.data.as_ref() {
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Text(v) => {
                ColumnData::Text(indices.iter().map(|&i| v[i].clone()).collect())
            }
            ColumnData::Date(v) => ColumnData::Date(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Timestamp(v) => {
                ColumnData::Timestamp(indices.iter().map(|&i| v[i]).collect())
            }
        };
        Column {
            data: std::sync::Arc::new(data),
            validity: validity.map(std::sync::Arc::new),
        }
    }

    /// Keep rows where `mask` is true. `mask.len()` must equal `self.len()`.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.take(&indices)
    }

    /// Gather rows by *optional* index: `None` produces a null slot
    /// holding the builder default payload, so the output is
    /// byte-identical to pushing `Value::Null` through a
    /// [`ColumnBuilder`]. This is the vectorized form of per-row
    /// `builder.push(src.value(i))` loops (join null-extension), without
    /// boxing a [`Value`] — and without a `String` allocation — per cell.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Column {
        fn gather<T: Clone>(src: &[T], indices: &[Option<usize>], default: T) -> Vec<T> {
            indices
                .iter()
                .map(|ix| match ix {
                    Some(i) => src[*i].clone(),
                    None => default.clone(),
                })
                .collect()
        }
        let validity: Vec<bool> = indices
            .iter()
            .map(|ix| ix.is_some_and(|i| !self.is_null(i)))
            .collect();
        let validity = Some(validity).filter(|m| m.iter().any(|&b| !b));
        let data = match self.data.as_ref() {
            ColumnData::Bool(v) => ColumnData::Bool(gather(v, indices, false)),
            ColumnData::Int(v) => ColumnData::Int(gather(v, indices, 0)),
            ColumnData::Float(v) => ColumnData::Float(gather(v, indices, 0.0)),
            ColumnData::Text(v) => ColumnData::Text(gather(v, indices, String::new())),
            ColumnData::Date(v) => ColumnData::Date(gather(v, indices, 0)),
            ColumnData::Timestamp(v) => ColumnData::Timestamp(gather(v, indices, 0)),
        };
        Column {
            data: std::sync::Arc::new(data),
            validity: validity.map(std::sync::Arc::new),
        }
    }

    /// Contiguous sub-range `[offset, offset+len)` — a straight range
    /// copy (no per-element index gather; the morsel executor slices hot
    /// paths with this).
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        let validity = self
            .validity
            .as_ref()
            .map(|m| m[offset..offset + len].to_vec())
            .filter(|m| m.iter().any(|&b| !b));
        let data = match self.data.as_ref() {
            ColumnData::Bool(v) => ColumnData::Bool(v[offset..offset + len].to_vec()),
            ColumnData::Int(v) => ColumnData::Int(v[offset..offset + len].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[offset..offset + len].to_vec()),
            ColumnData::Text(v) => ColumnData::Text(v[offset..offset + len].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[offset..offset + len].to_vec()),
            ColumnData::Timestamp(v) => ColumnData::Timestamp(v[offset..offset + len].to_vec()),
        };
        Column {
            data: std::sync::Arc::new(data),
            validity: validity.map(std::sync::Arc::new),
        }
    }

    /// Concatenate same-typed columns. Payload vectors are extended
    /// slice-at-a-time (no per-cell [`Value`] boxing); null slots are
    /// rewritten to the builder defaults so the result is byte-identical
    /// to pushing every value through a [`ColumnBuilder`].
    pub fn concat(parts: &[&Column]) -> Result<Column, ValueError> {
        fn extend<T: Clone>(out: &mut Vec<T>, part: &Column, src: &[T], default: &T) {
            match part.validity() {
                None => out.extend(src.iter().cloned()),
                Some(mask) => out.extend(src.iter().zip(mask).map(|(v, &ok)| {
                    if ok {
                        v.clone()
                    } else {
                        default.clone()
                    }
                })),
            }
        }
        macro_rules! concat_as {
            ($variant:ident, $accessor:ident, $default:expr) => {{
                let mut out = Vec::with_capacity(parts.iter().map(|c| c.len()).sum());
                for part in parts {
                    let src = part.$accessor().ok_or_else(|| ValueError::TypeMismatch {
                        expected: parts[0].dtype().name().to_string(),
                        found: part.dtype().name().to_string(),
                    })?;
                    extend(&mut out, part, src, &$default);
                }
                ColumnData::$variant(out)
            }};
        }
        let Some(first) = parts.first() else {
            return Err(ValueError::invalid("concat of zero columns"));
        };
        let data = match first.data.as_ref() {
            ColumnData::Bool(_) => concat_as!(Bool, bools, false),
            ColumnData::Int(_) => concat_as!(Int, ints, 0i64),
            ColumnData::Float(_) => concat_as!(Float, floats, 0.0f64),
            ColumnData::Text(_) => concat_as!(Text, texts, String::new()),
            ColumnData::Date(_) => concat_as!(Date, dates, 0i32),
            ColumnData::Timestamp(_) => concat_as!(Timestamp, timestamps, 0i64),
        };
        let any_invalid = parts
            .iter()
            .any(|c| c.validity().is_some_and(|m| m.iter().any(|&b| !b)));
        let validity = any_invalid.then(|| {
            let mut mask = Vec::with_capacity(data.len());
            for part in parts {
                match part.validity() {
                    Some(m) => mask.extend_from_slice(m),
                    None => mask.extend(std::iter::repeat_n(true, part.len())),
                }
            }
            mask
        });
        Ok(Column {
            data: std::sync::Arc::new(data),
            validity: validity.map(std::sync::Arc::new),
        })
    }

    /// Cast every value to `target`, erroring on lossy/unsupported casts.
    pub fn cast(&self, target: DataType) -> Result<Column, ValueError> {
        if self.dtype() == target {
            return Ok(self.clone());
        }
        let mut b = ColumnBuilder::new(target, self.len());
        for i in 0..self.len() {
            b.push(cast_value(self.value(i), target)?)?;
        }
        Ok(b.finish())
    }

    /// Number of distinct non-null values (exact; used by prefetch policy
    /// and pivot-value discovery).
    pub fn distinct_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut buf = Vec::new();
        for i in 0..self.len() {
            if self.is_null(i) {
                continue;
            }
            buf.clear();
            crate::hash::encode_value(&self.value(i), &mut buf);
            seen.insert(buf.clone());
        }
        seen.len()
    }

    /// Per-string fixed cost in [`Column::byte_size`]: the `String` struct
    /// itself (ptr + len + cap) that lives inside the `Vec<String>` buffer.
    pub const STRING_FIXED_BYTES: usize = std::mem::size_of::<String>();

    /// Fixed per-column overhead in [`Column::byte_size`]: the
    /// heap-allocated `ColumnData` enum behind the `Arc` (discriminant +
    /// inline `Vec` header) plus the two `Arc` control blocks' strong/weak
    /// counters.
    pub const FIXED_BYTES: usize = std::mem::size_of::<ColumnData>() + 2 * 16;

    /// Heap footprint in bytes, the figure cache/memory budgets charge.
    ///
    /// The accounting is deliberately complete — decisions like "does this
    /// operator state fit in the execution memory budget" are only as good
    /// as the estimate feeding them:
    ///
    /// * fixed-width payloads at their physical width (`Int`/`Timestamp` 8,
    ///   `Float` 8, `Date` 4, `Bool` 1 — `Vec<bool>` stores one byte per
    ///   element),
    /// * the **string heap**: each string's byte length *plus* the
    ///   [`Column::STRING_FIXED_BYTES`] `String` struct occupying the vec
    ///   slot (an empty string still costs its slot),
    /// * the **null bitmap**: one byte per row when a validity mask is
    ///   present (`Vec<bool>`),
    /// * [`Column::FIXED_BYTES`] of per-column container overhead.
    pub fn byte_size(&self) -> usize {
        let base = match self.data.as_ref() {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Text(v) => v.iter().map(|s| s.len() + Self::STRING_FIXED_BYTES).sum(),
            ColumnData::Date(v) => v.len() * 4,
            ColumnData::Timestamp(v) => v.len() * 8,
        };
        Self::FIXED_BYTES + base + self.validity.as_ref().map_or(0, |m| m.len())
    }

    /// Crate-internal raw view for the binary codec: physical data
    /// (including the arbitrary defaults stored in null slots, which must
    /// round-trip bit-exactly) plus the validity mask.
    pub(crate) fn raw_parts(&self) -> (&ColumnData, Option<&[bool]>) {
        (
            self.data.as_ref(),
            self.validity.as_ref().map(|m| m.as_slice()),
        )
    }

    /// Crate-internal constructor from raw storage (the codec's decode
    /// path). `validity` is taken verbatim — no all-true normalization —
    /// so `decode(encode(c))` reproduces `c` exactly.
    pub(crate) fn from_raw(data: ColumnData, validity: Option<Vec<bool>>) -> Column {
        Column {
            data: std::sync::Arc::new(data),
            validity: validity.map(std::sync::Arc::new),
        }
    }
}

/// Cast a scalar to `target`, with the same rules as `Column::cast`.
pub fn cast_value(v: Value, target: DataType) -> Result<Value, ValueError> {
    use crate::calendar;
    if v.is_null() {
        return Ok(Value::Null);
    }
    if v.dtype() == Some(target) {
        return Ok(v);
    }
    let err = |v: &Value| ValueError::Parse {
        input: v.render(),
        target: target.name().to_string(),
    };
    match target {
        DataType::Bool => match &v {
            Value::Text(s) => match s.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" | "yes" => Ok(Value::Bool(true)),
                "false" | "f" | "0" | "no" => Ok(Value::Bool(false)),
                _ => Err(err(&v)),
            },
            Value::Int(i) => Ok(Value::Bool(*i != 0)),
            _ => Err(err(&v)),
        },
        DataType::Int => match &v {
            Value::Float(f) => Ok(Value::Int(*f as i64)),
            Value::Bool(b) => Ok(Value::Int(*b as i64)),
            Value::Text(s) => s.trim().parse::<i64>().map(Value::Int).map_err(|_| err(&v)),
            _ => Err(err(&v)),
        },
        DataType::Float => match &v {
            Value::Int(i) => Ok(Value::Float(*i as f64)),
            Value::Bool(b) => Ok(Value::Float(*b as i64 as f64)),
            Value::Text(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| err(&v)),
            _ => Err(err(&v)),
        },
        DataType::Text => Ok(Value::Text(v.render())),
        DataType::Date => match &v {
            Value::Timestamp(t) => Ok(Value::Date(t.div_euclid(calendar::MICROS_PER_DAY) as i32)),
            Value::Text(s) => calendar::parse_date(s)
                .map(Value::Date)
                .ok_or_else(|| err(&v)),
            _ => Err(err(&v)),
        },
        DataType::Timestamp => match &v {
            Value::Date(d) => Ok(Value::Timestamp(*d as i64 * calendar::MICROS_PER_DAY)),
            Value::Text(s) => calendar::parse_timestamp(s)
                .map(Value::Timestamp)
                .ok_or_else(|| err(&v)),
            _ => Err(err(&v)),
        },
    }
}

/// Incrementally builds a [`Column`], tracking validity lazily.
#[derive(Debug)]
pub struct ColumnBuilder {
    data: ColumnData,
    validity: Vec<bool>,
    any_null: bool,
}

impl ColumnBuilder {
    pub fn new(dtype: DataType, capacity: usize) -> ColumnBuilder {
        ColumnBuilder {
            data: ColumnData::with_capacity(dtype, capacity),
            validity: Vec::with_capacity(capacity),
            any_null: false,
        }
    }

    pub fn dtype(&self) -> DataType {
        self.data.dtype()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn push_null(&mut self) {
        self.any_null = true;
        self.validity.push(false);
        match &mut self.data {
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Int(v) => v.push(0),
            ColumnData::Float(v) => v.push(0.0),
            ColumnData::Text(v) => v.push(String::new()),
            ColumnData::Date(v) => v.push(0),
            ColumnData::Timestamp(v) => v.push(0),
        }
    }

    /// Push a scalar, coercing `Int -> Float` and `Date -> Timestamp` when
    /// the builder's type requires it.
    pub fn push(&mut self, v: Value) -> Result<(), ValueError> {
        if v.is_null() {
            self.push_null();
            return Ok(());
        }
        let mismatch = |b: &ColumnBuilder, v: &Value| ValueError::TypeMismatch {
            expected: b.dtype().name().to_string(),
            found: v.dtype().map(|d| d.name().to_string()).unwrap_or_default(),
        };
        match (&mut self.data, &v) {
            (ColumnData::Bool(vec), Value::Bool(x)) => vec.push(*x),
            (ColumnData::Int(vec), Value::Int(x)) => vec.push(*x),
            (ColumnData::Float(vec), Value::Float(x)) => vec.push(*x),
            (ColumnData::Float(vec), Value::Int(x)) => vec.push(*x as f64),
            (ColumnData::Text(vec), Value::Text(x)) => vec.push(x.clone()),
            (ColumnData::Date(vec), Value::Date(x)) => vec.push(*x),
            (ColumnData::Timestamp(vec), Value::Timestamp(x)) => vec.push(*x),
            (ColumnData::Timestamp(vec), Value::Date(x)) => {
                vec.push(*x as i64 * crate::calendar::MICROS_PER_DAY)
            }
            _ => return Err(mismatch(self, &v)),
        }
        self.validity.push(true);
        Ok(())
    }

    pub fn finish(self) -> Column {
        Column {
            data: std::sync::Arc::new(self.data),
            validity: if self.any_null {
                Some(std::sync::Arc::new(self.validity))
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `byte_size` must charge the null bitmap and the string heap, not
    /// just raw payload width — budget decisions depend on it. The
    /// expected figures are computed by hand from the documented formula.
    #[test]
    #[allow(clippy::identity_op)] // per-string terms spelled out row by row
    fn byte_size_known_columns() {
        // 4 ints, no nulls: fixed + 4*8.
        let ints = Column::from_ints(vec![1, 2, 3, 4]);
        assert_eq!(ints.byte_size(), Column::FIXED_BYTES + 32);

        // 3 ints with a null: fixed + 3*8 payload + 3-byte validity bitmap.
        let opt = Column::from_opt_ints(vec![Some(1), None, Some(3)]);
        assert_eq!(opt.byte_size(), Column::FIXED_BYTES + 24 + 3);

        // Strings: each costs its byte length plus the String struct in
        // the vec slot; the null slot holds an empty string but still pays
        // its slot, and the mask adds one byte per row.
        let texts =
            Column::from_opt_texts(vec![Some("ab".to_string()), None, Some("xyz".to_string())]);
        assert_eq!(
            texts.byte_size(),
            Column::FIXED_BYTES + Column::STRING_FIXED_BYTES * 3 + (2 + 0 + 3) + 3
        );

        // Dates are 4 bytes, bools 1 byte (Vec<bool> is byte-per-element).
        assert_eq!(
            Column::from_dates(vec![0, 1]).byte_size(),
            Column::FIXED_BYTES + 8
        );
        assert_eq!(
            Column::from_bools(vec![true, false, true]).byte_size(),
            Column::FIXED_BYTES + 3
        );
    }

    #[test]
    fn raw_constructors_normalize_and_expose_validity() {
        // All-true masks are dropped, so kernels can branch on `validity()`.
        let dense = Column::new_int(vec![1, 2], Some(vec![true, true]));
        assert!(dense.validity().is_none());
        assert_eq!(dense.null_count(), 0);

        let sparse = Column::new_float(vec![1.5, 0.0], Some(vec![true, false]));
        assert_eq!(sparse.validity(), Some(&[true, false][..]));
        assert_eq!(sparse.value(1), Value::Null);
        assert_eq!(sparse.dtype(), DataType::Float);

        // Every dtype has a raw constructor and the Option-based family.
        assert_eq!(
            Column::new_bool(vec![true], None).value(0),
            Value::Bool(true)
        );
        assert_eq!(
            Column::new_text(vec!["x".into()], None).value(0),
            Value::Text("x".into())
        );
        assert_eq!(Column::new_date(vec![3], None).dtype(), DataType::Date);
        assert_eq!(
            Column::new_timestamp(vec![5], None).dtype(),
            DataType::Timestamp
        );
        assert!(Column::from_opt_bools(vec![Some(true), None]).is_null(1));
        assert!(Column::from_opt_dates(vec![None, Some(1)]).is_null(0));
        assert!(Column::from_opt_timestamps(vec![Some(9), None]).is_null(1));
    }

    #[test]
    fn build_and_read_with_nulls() {
        let col = Column::from_opt_ints(vec![Some(1), None, Some(3)]);
        assert_eq!(col.len(), 3);
        assert_eq!(col.dtype(), DataType::Int);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.value(0), Value::Int(1));
        assert_eq!(col.value(1), Value::Null);
        assert_eq!(col.value(2), Value::Int(3));
    }

    #[test]
    fn no_nulls_drops_mask() {
        let col = Column::from_opt_ints(vec![Some(1), Some(2)]);
        assert_eq!(col.null_count(), 0);
        assert!(!col.is_null(0));
    }

    #[test]
    fn builder_coerces_int_to_float() {
        let mut b = ColumnBuilder::new(DataType::Float, 2);
        b.push(Value::Int(2)).unwrap();
        b.push(Value::Float(0.5)).unwrap();
        let col = b.finish();
        assert_eq!(col.floats().unwrap(), &[2.0, 0.5]);
    }

    #[test]
    fn builder_rejects_mismatch() {
        let mut b = ColumnBuilder::new(DataType::Int, 1);
        assert!(b.push(Value::Text("x".into())).is_err());
    }

    #[test]
    fn take_filter_slice() {
        let col = Column::from_opt_ints(vec![Some(10), None, Some(30), Some(40)]);
        let taken = col.take(&[3, 0]);
        assert_eq!(taken.value(0), Value::Int(40));
        assert_eq!(taken.value(1), Value::Int(10));
        let filtered = col.filter(&[true, true, false, false]);
        assert_eq!(filtered.len(), 2);
        assert!(filtered.is_null(1));
        let sliced = col.slice(1, 2);
        assert_eq!(sliced.len(), 2);
        assert!(sliced.is_null(0));
        assert_eq!(sliced.value(1), Value::Int(30));
    }

    /// `take_opt` is the vectorized form of a builder loop pushing
    /// `src.value(i)` / `Value::Null` — outputs must match that loop
    /// byte-for-byte (null slots hold builder defaults, all-valid masks
    /// are dropped).
    #[test]
    fn take_opt_matches_builder_loop() {
        let col =
            Column::from_opt_texts(vec![Some("a".to_string()), None, Some("ccc".to_string())]);
        let indices = [Some(2), None, Some(1), Some(0), None];
        let fast = col.take_opt(&indices);
        let mut b = ColumnBuilder::new(DataType::Text, indices.len());
        for ix in indices {
            match ix {
                Some(i) => b.push(col.value(i)).unwrap(),
                None => b.push_null(),
            }
        }
        assert_eq!(fast, b.finish());

        // No `None`s over a dense source: the mask is dropped entirely.
        let dense = Column::from_ints(vec![1, 2, 3]).take_opt(&[Some(0), Some(2)]);
        assert!(dense.validity().is_none());
        assert_eq!(dense.ints().unwrap(), &[1, 3]);
    }

    /// The slice-at-a-time `concat` must be byte-identical to the
    /// builder-based one it replaced: null slots rewritten to defaults,
    /// no validity mask unless a real null is present.
    #[test]
    fn concat_matches_builder_loop() {
        let cases: Vec<Vec<Column>> = vec![
            vec![
                Column::from_opt_ints(vec![Some(1), None]),
                Column::from_ints(vec![7, 8, 9]),
            ],
            vec![
                Column::from_opt_texts(vec![Some("xy".into()), None]),
                Column::from_texts(vec!["z".into()]),
            ],
            vec![
                Column::from_opt_floats(vec![None, Some(2.5)]),
                Column::from_opt_floats(vec![Some(-0.0)]),
            ],
            // All-valid parts: result must carry no mask at all.
            vec![
                Column::from_bools(vec![true]),
                Column::from_bools(vec![false, true]),
            ],
        ];
        for cols in cases {
            let refs: Vec<&Column> = cols.iter().collect();
            let fast = Column::concat(&refs).unwrap();
            let mut b = ColumnBuilder::new(cols[0].dtype(), fast.len());
            for part in &cols {
                for i in 0..part.len() {
                    b.push(part.value(i)).unwrap();
                }
            }
            assert_eq!(fast, b.finish());
        }
    }

    #[test]
    fn concat_checks_types() {
        let a = Column::from_ints(vec![1]);
        let b = Column::from_ints(vec![2]);
        let c = Column::concat(&[&a, &b]).unwrap();
        assert_eq!(c.len(), 2);
        let t = Column::from_texts(vec!["x".into()]);
        assert!(Column::concat(&[&a, &t]).is_err());
    }

    #[test]
    fn cast_text_to_date_and_back() {
        let col = Column::from_texts(vec!["2020-01-15".into()]);
        let dates = col.cast(DataType::Date).unwrap();
        assert_eq!(dates.dtype(), DataType::Date);
        let texts = dates.cast(DataType::Text).unwrap();
        assert_eq!(texts.value(0), Value::Text("2020-01-15".into()));
    }

    #[test]
    fn cast_preserves_nulls() {
        let col = Column::from_opt_ints(vec![Some(1), None]);
        let floats = col.cast(DataType::Float).unwrap();
        assert!(floats.is_null(1));
        assert_eq!(floats.value(0), Value::Float(1.0));
    }

    #[test]
    fn distinct_count_ignores_nulls() {
        let col = Column::from_opt_ints(vec![Some(1), Some(1), None, Some(2)]);
        assert_eq!(col.distinct_count(), 2);
    }

    #[test]
    fn cast_value_bool_text() {
        assert_eq!(
            cast_value(Value::Text("TRUE".into()), DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert!(cast_value(Value::Text("maybe".into()), DataType::Bool).is_err());
    }
}
