//! End-to-end service tests: the Figure 2 lifecycle against a live
//! warehouse with the flights workload.

use std::sync::Arc;

use sigma_cdw::Warehouse;
use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, Level, TableSpec};
use sigma_core::Workbook;
use sigma_flights::{load_airports, load_flights, FlightsConfig};
use sigma_service::workload::Priority;
use sigma_service::{QueryRequest, ServedFrom, ServiceError, SigmaService};
use sigma_value::{DataType, Value};

fn setup() -> (SigmaService, Arc<Warehouse>, String, u64) {
    let service = SigmaService::new();
    let org = service.tenancy.create_org("acme");
    let user = service
        .tenancy
        .create_user(org, "ada", sigma_service::tenancy::Role::Creator)
        .unwrap();
    let token = service.tenancy.issue_token(user).unwrap();
    let wh = Arc::new(Warehouse::default());
    load_flights(&wh, &FlightsConfig::with_rows(2_000)).unwrap();
    load_airports(&wh).unwrap();
    service.add_connection(org, "primary", wh.clone());
    (service, wh, token, org)
}

fn flights_workbook() -> Workbook {
    let mut wb = Workbook::new(Some("demo"));
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_column(ColumnDef::source("Cancelled", "cancelled"))
        .unwrap();
    t.add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "ByCarrier", ElementKind::Table(t))
        .unwrap();
    wb
}

#[test]
fn full_lifecycle_with_query_directory() {
    let (service, wh, token, _) = setup();
    let wb = flights_workbook();
    let json = wb.to_json().unwrap();
    let req = QueryRequest {
        token: &token,
        connection: "primary",
        workbook_json: &json,
        element: "ByCarrier",
        priority: Priority::Interactive,
    };
    let first = service.run_query(&req).unwrap();
    assert_eq!(first.served_from, ServedFrom::Warehouse);
    assert_eq!(first.batch.num_rows(), 8); // 8 carriers
    let executed_before = wh.queries_executed();

    // Identical state: served from the query directory (no recompute).
    let second = service.run_query(&req).unwrap();
    assert_eq!(second.served_from, ServedFrom::QueryDirectory);
    assert_eq!(second.query_id, first.query_id);
    assert_eq!(second.batch.num_rows(), 8);
    // The directory hit did not issue a new warehouse query.
    assert_eq!(wh.queries_executed(), executed_before);

    let stats = service.directory_stats("primary").unwrap();
    assert!(stats.hits >= 1);
}

/// The per-connection memory-budget knob reaches the warehouse and
/// changes nothing observable about results: a compiled element query
/// under a 1-byte budget (every aggregation/sort/join spilling) returns
/// the same rows as the in-memory run.
#[test]
fn per_connection_memory_budget_knob() {
    let (service, wh, token, _) = setup();
    assert_eq!(service.connection_memory_budget("primary"), None);
    assert!(!service.set_connection_memory_budget("nope", Some(1)));

    let wb = flights_workbook();
    let json = wb.to_json().unwrap();
    let req = QueryRequest {
        token: &token,
        connection: "primary",
        workbook_json: &json,
        element: "ByCarrier",
        priority: Priority::Interactive,
    };
    let unbudgeted = service.run_query(&req).unwrap();

    assert!(service.set_connection_memory_budget("primary", Some(1)));
    assert_eq!(service.connection_memory_budget("primary"), Some(1));
    assert_eq!(wh.memory_budget(), Some(1));
    // Stage caching would re-serve the cached result; force re-execution
    // by invalidating the directory through a table-touching upload path:
    // simplest is a fresh service-visible execution on the warehouse
    // itself under the budget.
    let direct = wh.explain_analyze(&unbudgeted.sql).unwrap();
    assert!(direct.contains("memory: budget=1"), "{direct}");
    let budgeted = wh.execute_sql(&unbudgeted.sql).unwrap();
    assert!(budgeted.spilled_bytes > 0, "1-byte budget must spill");
    assert_eq!(budgeted.batch, unbudgeted.batch);

    assert!(service.set_connection_memory_budget("primary", None));
    assert_eq!(service.connection_memory_budget("primary"), None);
}

#[test]
fn auth_and_acl_enforced() {
    let (service, wh, _token, _org) = setup();
    let wb = flights_workbook();
    let json = wb.to_json().unwrap();
    let bad = QueryRequest {
        token: "tok-bogus",
        connection: "primary",
        workbook_json: &json,
        element: "ByCarrier",
        priority: Priority::Interactive,
    };
    assert_eq!(
        service.run_query(&bad).unwrap_err(),
        ServiceError::Unauthenticated
    );

    // A user from another org cannot use this org's connection.
    let other_org = service.tenancy.create_org("rival");
    let outsider = service
        .tenancy
        .create_user(other_org, "eve", sigma_service::tenancy::Role::Admin)
        .unwrap();
    let outsider_token = service.tenancy.issue_token(outsider).unwrap();
    let req = QueryRequest {
        token: &outsider_token,
        connection: "primary",
        workbook_json: &json,
        element: "ByCarrier",
        priority: Priority::Interactive,
    };
    assert!(matches!(
        service.run_query(&req),
        Err(ServiceError::Forbidden(_))
    ));
    let _ = wh;
}

#[test]
fn materialization_substitutes_and_refreshes() {
    let (service, wh, token, _) = setup();
    let mut wb = flights_workbook();
    // A derived element over ByCarrier.
    let mut derived = TableSpec::new(DataSource::Element {
        name: "ByCarrier".into(),
    });
    derived
        .add_column(ColumnDef::source("Carrier", "Carrier"))
        .unwrap();
    derived
        .add_column(ColumnDef::source("Flights", "Flights"))
        .unwrap();
    wb.add_element(0, "Derived", ElementKind::Table(derived))
        .unwrap();

    let table = service
        .materialize_element(&token, "primary", &wb, "ByCarrier", Some(60))
        .unwrap();
    assert!(wh.has_table(&table));

    // Derived now compiles against the materialization.
    let user = service.tenancy.authenticate(&token).unwrap();
    let compiled = service.compile(&user, "primary", &wb, "Derived").unwrap();
    assert!(compiled.sql.contains(&table), "{}", compiled.sql);

    // Scheduled refresh fires after the period elapses.
    let refreshed = service
        .tick_materializations(&token, "primary", &wb, 61)
        .unwrap();
    assert_eq!(refreshed, 1);
}

#[test]
fn csv_upload_and_lookup() {
    let (service, wh, token, _) = setup();
    let rows = service
        .upload_csv(
            &token,
            "primary",
            "uploaded_airports",
            &sigma_flights::dirty_airports_csv(42),
        )
        .unwrap();
    assert_eq!(rows, 30);
    assert!(wh.has_table("uploaded_airports"));

    // Viewers cannot upload.
    let user = service.tenancy.authenticate(&token).unwrap();
    let viewer = service
        .tenancy
        .create_user(user.org, "vic", sigma_service::tenancy::Role::Viewer)
        .unwrap();
    let viewer_token = service.tenancy.issue_token(viewer).unwrap();
    assert!(matches!(
        service.upload_csv(&viewer_token, "primary", "x", "a\n1\n"),
        Err(ServiceError::Forbidden(_))
    ));
}

#[test]
fn input_table_projection_and_edit_propagation() {
    let (service, wh, token, _) = setup();
    let mut wb = Workbook::new(Some("inputs"));
    let mut input = sigma_core::editable::InputTableSpec::new(vec![
        ("Code".into(), DataType::Text),
        ("Note".into(), DataType::Text),
    ]);
    let r1 = input.insert_row(vec!["ORD".into(), "hub".into()]).unwrap();
    let _r2 = input
        .insert_row(vec!["SFO".into(), "coastal".into()])
        .unwrap();
    wb.add_element(0, "Notes", ElementKind::Input(input))
        .unwrap();

    let table = service
        .project_input_table(&token, "primary", &mut wb, "Notes")
        .unwrap();
    let count = wh
        .execute_sql(&format!("SELECT COUNT(*) AS n FROM {table}"))
        .unwrap();
    assert_eq!(count.batch.value(0, 0), Value::Int(2));

    // Edit a cell, add a row, delete a row; propagate as DML.
    {
        let input = wb.input_table_mut("Notes").unwrap();
        input.set_cell(r1, "Note", "major hub".into()).unwrap();
        input.insert_row(vec!["JFK".into(), "east".into()]).unwrap();
        input.delete_row(2).unwrap(); // SFO
    }
    let n = service
        .propagate_edits(&token, "primary", &mut wb, "Notes")
        .unwrap();
    assert_eq!(n, 3);
    let rows = wh
        .execute_sql(&format!(
            "SELECT \"Code\", \"Note\" FROM {table} ORDER BY \"Code\""
        ))
        .unwrap()
        .batch;
    assert_eq!(rows.num_rows(), 2);
    assert_eq!(rows.value(0, 0), Value::Text("JFK".into()));
    assert_eq!(rows.value(1, 1), Value::Text("major hub".into()));

    // Downstream queries see the edits (the paper's Scenario 3 ending).
    let mut consumer = TableSpec::new(DataSource::Element {
        name: "Notes".into(),
    });
    consumer
        .add_column(ColumnDef::source("Code", "Code"))
        .unwrap();
    consumer
        .add_column(ColumnDef::source("Note", "Note"))
        .unwrap();
    wb.add_element(0, "Consumer", ElementKind::Table(consumer))
        .unwrap();
    let json = wb.to_json().unwrap();
    let req = QueryRequest {
        token: &token,
        connection: "primary",
        workbook_json: &json,
        element: "Consumer",
        priority: Priority::Interactive,
    };
    let out = service.run_query(&req).unwrap();
    assert_eq!(out.batch.num_rows(), 2);
}

#[test]
fn document_store_round_trip_through_service() {
    let (service, _wh, token, org) = setup();
    let user = service.tenancy.authenticate(&token).unwrap();
    let wb = flights_workbook();
    let meta = service
        .documents
        .create(org, user.id, "Demos", &wb)
        .unwrap();
    let loaded = service.documents.open(meta.id, None).unwrap();
    assert_eq!(loaded, wb);
    // Share with a viewer.
    let viewer = service
        .tenancy
        .create_user(org, "vic", sigma_service::tenancy::Role::Viewer)
        .unwrap();
    let viewer_user = service.tenancy.user(viewer).unwrap();
    service
        .grants
        .grant_user(meta.id, viewer, sigma_service::tenancy::Access::View);
    assert_eq!(
        service.grants.access(meta.id, &viewer_user),
        Some(sigma_service::tenancy::Access::View)
    );
}
