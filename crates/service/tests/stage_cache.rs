//! Stage-level caching: cross-edit prefix reuse over the scripted
//! interactive session (load → add column → change filter → regroup), plus
//! the equivalence guarantee that results served through `RESULT_SCAN`
//! stage reuse are bit-identical to a cold full recompilation.

use std::sync::Arc;

use sigma_cdw::Warehouse;
use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec};
use sigma_core::Workbook;
use sigma_flights::{load_flights, FlightsConfig};
use sigma_service::workload::Priority;
use sigma_service::{QueryOutcome, QueryRequest, ServedFrom, SigmaService};
use sigma_value::Value;

fn setup(rows: usize) -> (SigmaService, Arc<Warehouse>, String) {
    let service = SigmaService::new();
    let org = service.tenancy.create_org("acme");
    let user = service
        .tenancy
        .create_user(org, "ada", sigma_service::tenancy::Role::Creator)
        .unwrap();
    let token = service.tenancy.issue_token(user).unwrap();
    let wh = Arc::new(Warehouse::default());
    load_flights(&wh, &FlightsConfig::with_rows(rows)).unwrap();
    service.add_connection(org, "primary", wh.clone());
    (service, wh, token)
}

/// The scripted edit session: each step is one workbook state, derived
/// from the previous by a single interactive gesture.
fn edit_session_steps() -> Vec<(&'static str, Workbook)> {
    let base = |keys: Vec<String>| {
        let mut t = TableSpec::new(DataSource::WarehouseTable {
            table: "flights".into(),
        });
        t.add_column(ColumnDef::source("Carrier", "carrier"))
            .unwrap();
        t.add_column(ColumnDef::source("Origin", "origin")).unwrap();
        t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
            .unwrap();
        t.add_level(1, Level::keyed("Grouped", keys)).unwrap();
        t.add_column(ColumnDef::formula("Flights", "Count()", 1))
            .unwrap();
        t.detail_level = 1;
        t
    };
    let wrap = |t: TableSpec| {
        let mut wb = Workbook::new(Some("session"));
        wb.add_element(0, "Delays", ElementKind::Table(t)).unwrap();
        wb
    };

    // 1. load: group by carrier, count flights.
    let load = base(vec!["Carrier".into()]);

    // 2. add column: a new aggregate at the grouped level.
    let mut add_column = base(vec!["Carrier".into()]);
    add_column
        .add_column(ColumnDef::formula("Avg Delay", "Avg([Dep Delay])", 1))
        .unwrap();

    // 3. change filter: keep the new column, filter the base rows.
    let mut change_filter = base(vec!["Carrier".into()]);
    change_filter
        .add_column(ColumnDef::formula("Avg Delay", "Avg([Dep Delay])", 1))
        .unwrap();
    change_filter.filters.push(FilterSpec {
        column: "Dep Delay".into(),
        predicate: FilterPredicate::Range {
            min: Some(Value::Float(10.0)),
            max: None,
        },
    });

    // 4. pivot: regroup the same (filtered) data by origin instead.
    let mut pivot = base(vec!["Origin".into()]);
    pivot
        .add_column(ColumnDef::formula("Avg Delay", "Avg([Dep Delay])", 1))
        .unwrap();
    pivot.filters.push(FilterSpec {
        column: "Dep Delay".into(),
        predicate: FilterPredicate::Range {
            min: Some(Value::Float(10.0)),
            max: None,
        },
    });

    vec![
        ("load", wrap(load)),
        ("add_column", wrap(add_column)),
        ("change_filter", wrap(change_filter)),
        ("pivot", wrap(pivot)),
    ]
}

fn run(service: &SigmaService, token: &str, wb: &Workbook) -> QueryOutcome {
    let json = wb.to_json().unwrap();
    service
        .run_query(&QueryRequest {
            token,
            connection: "primary",
            workbook_json: &json,
            element: "Delays",
            priority: Priority::Interactive,
        })
        .unwrap()
}

#[test]
fn every_edit_step_reuses_a_cached_prefix() {
    let (service, _wh, token) = setup(2_000);
    let steps = edit_session_steps();

    let first = run(&service, &token, &steps[0].1);
    assert_eq!(first.served_from, ServedFrom::Warehouse);
    assert!(first.stages_executed >= 3, "pipeline executes per stage");

    for (name, wb) in &steps[1..] {
        let before = service.directory_stats("primary").unwrap();
        let out = run(&service, &token, wb);
        let after = service.directory_stats("primary").unwrap();
        assert_eq!(
            out.served_from,
            ServedFrom::StageReuse,
            "step {name} should reuse a prefix"
        );
        assert!(out.stage_hits >= 1, "step {name}: no stage-level hit");
        assert!(
            after.stage_hits > before.stage_hits,
            "step {name}: directory stats must show the stage hit"
        );
        // The reused prefix includes the source scan: the edit re-executes
        // only downstream stages, which read persisted results, so no
        // warehouse table rows are re-scanned at all.
        assert_eq!(
            out.rows_scanned, 0,
            "step {name} re-scanned the warehouse despite a cached prefix"
        );
    }
}

#[test]
fn stage_reuse_is_bit_identical_to_cold_recompilation() {
    // Warm service: stage caching on, edits reuse prefixes.
    let (warm, _wh1, warm_token) = setup(2_000);
    // Cold service: stage caching off, every step recompiles and re-runs
    // the full flattened query on an independent warehouse.
    let (cold, _wh2, cold_token) = setup(2_000);
    cold.set_stage_caching(false);

    for (name, wb) in &edit_session_steps() {
        let warm_out = run(&warm, &warm_token, wb);
        let cold_out = run(&cold, &cold_token, wb);
        assert_eq!(
            warm_out.batch, cold_out.batch,
            "step {name}: stage-reused result differs from cold recompilation"
        );
        assert_eq!(cold_out.stage_hits, 0);
        assert_eq!(cold_out.stages_executed, 1);
    }
}

#[test]
fn repeat_query_still_hits_the_whole_query_directory() {
    let (service, wh, token) = setup(2_000);
    let steps = edit_session_steps();
    run(&service, &token, &steps[0].1);
    let executed = wh.queries_executed();
    let again = run(&service, &token, &steps[0].1);
    assert_eq!(again.served_from, ServedFrom::QueryDirectory);
    assert_eq!(wh.queries_executed(), executed, "no warehouse round trip");
}

#[test]
fn upload_to_unrelated_table_keeps_cached_stages() {
    let (service, _wh, token) = setup(2_000);
    let steps = edit_session_steps();
    run(&service, &token, &steps[0].1);

    // An upload into a table the query never reads must not flush it.
    service
        .upload_csv(&token, "primary", "notes", "id,note\n1,hello\n")
        .unwrap();
    let again = run(&service, &token, &steps[0].1);
    assert_eq!(again.served_from, ServedFrom::QueryDirectory);

    // An upload into the table it *does* read must invalidate precisely.
    service
        .upload_csv(
            &token,
            "primary",
            "flights",
            "carrier,origin,dep_delay\nZZ,AAA,5.0\n",
        )
        .unwrap();
    let refreshed = run(&service, &token, &steps[0].1);
    assert_eq!(refreshed.served_from, ServedFrom::Warehouse);
    assert_eq!(refreshed.batch.num_rows(), 1, "reads the replaced table");
}
