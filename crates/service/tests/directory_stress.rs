//! Concurrency stress for the query directory: many threads hammering
//! single-flight coalescing, LRU promotion/eviction, and table-targeted
//! invalidation at once, checking the two properties collaborative
//! editing depends on:
//!
//! 1. **Single-flight**: for any key, at most one execution runs at a
//!    time — concurrent identical requests either coalesce onto the
//!    in-flight leader or re-execute strictly *after* it finished (an
//!    invalidation in between legitimately forces a fresh run, but never
//!    a concurrent one).
//! 2. **No lost stats**: every lookup lands in exactly one of
//!    `hits`/`misses`, every recorded stage decision in
//!    `stage_hits`/`stage_misses`, and `invalidated` matches what the
//!    invalidation calls reported — under full contention.
//!
//! `#[ignore]` by default (it burns a few CPU-seconds); CI runs it in a
//! dedicated job via `cargo test -p sigma-service --test directory_stress
//! -- --ignored`.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::Arc;

use sigma_service::cache::{DirKey, QueryDirectory};

const THREADS: usize = 8;
const ITERS: usize = 2_000;
const KEYS: usize = 16;
/// Capacity below the key count so LRU eviction races with everything.
const CAPACITY: usize = 12;

fn key(i: usize) -> DirKey {
    DirKey(0xD1CE_0000 + i as u128)
}

fn table(i: usize) -> String {
    format!("tbl{}", i % 4)
}

#[test]
#[ignore = "stress test: run explicitly (CI runs it with --ignored)"]
fn directory_single_flight_and_stats_under_contention() {
    let dir = Arc::new(QueryDirectory::new(CAPACITY));
    // Per-key count of *currently executing* leader closures; must never
    // exceed 1 (that would be duplicate in-flight execution).
    let in_flight: Arc<Vec<AtomicIsize>> =
        Arc::new((0..KEYS).map(|_| AtomicIsize::new(0)).collect());
    let executions = Arc::new(AtomicUsize::new(0));
    let explicit_lookups = Arc::new(AtomicUsize::new(0));
    let coalesced_lookups = Arc::new(AtomicUsize::new(0));
    let stage_records = Arc::new(AtomicUsize::new(0));
    let invalidated = Arc::new(AtomicUsize::new(0));
    let max_seen = Arc::new(AtomicIsize::new(0));

    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let dir = dir.clone();
            let in_flight = in_flight.clone();
            let executions = executions.clone();
            let explicit_lookups = explicit_lookups.clone();
            let coalesced_lookups = coalesced_lookups.clone();
            let stage_records = stage_records.clone();
            let invalidated = invalidated.clone();
            let max_seen = max_seen.clone();
            std::thread::spawn(move || {
                // Deterministic per-thread op mix (no RNG dependency).
                let mut x: u64 = 0x9E3779B97F4A7C15u64.wrapping_mul(t as u64 + 1);
                for i in 0..ITERS {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let k = (x >> 33) as usize % KEYS;
                    match (x >> 7) % 10 {
                        // Mostly coalesced execution (the hot path).
                        0..=4 => {
                            coalesced_lookups.fetch_add(1, Ordering::SeqCst);
                            let result: Result<_, ()> = dir.run_coalesced(key(k), || {
                                let live = in_flight[k].fetch_add(1, Ordering::SeqCst) + 1;
                                max_seen.fetch_max(live, Ordering::SeqCst);
                                assert!(
                                    live == 1,
                                    "duplicate in-flight execution for key {k}: {live}"
                                );
                                executions.fetch_add(1, Ordering::SeqCst);
                                // Hold the flight open long enough for
                                // followers to pile up.
                                std::thread::yield_now();
                                in_flight[k].fetch_sub(1, Ordering::SeqCst);
                                Ok(format!("q-{t}-{i}"))
                            });
                            let (qid, _cached) = result.unwrap();
                            assert!(qid.starts_with("q-"));
                        }
                        // Plain lookups (count toward hits+misses).
                        5 | 6 => {
                            explicit_lookups.fetch_add(1, Ordering::SeqCst);
                            let _ = dir.lookup(key(k));
                        }
                        // Stage-level decisions, reported explicitly.
                        7 => {
                            let hit = dir.lookup_stage(key(k)).is_some();
                            dir.record_stage(hit);
                            stage_records.fetch_add(1, Ordering::SeqCst);
                        }
                        // Dependency writes + targeted invalidation.
                        8 => {
                            dir.set_deps(key(k), vec![table(k)].into());
                            let n = dir.invalidate_tables(&[table(k)]);
                            invalidated.fetch_add(n, Ordering::SeqCst);
                        }
                        // Direct insert/invalidate churn (LRU pressure).
                        // `invalidate_key` drops stale pointers and is
                        // deliberately *not* counted in `invalidated`
                        // (that stat means table-targeted drops).
                        _ => {
                            dir.insert_with_deps(
                                key(k),
                                &format!("q-direct-{t}-{i}"),
                                vec![table(k)].into(),
                            );
                            dir.invalidate_key(key(k));
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("stress thread panicked");
    }

    // Single-flight held (the assert inside would have fired otherwise;
    // double-check the observed maximum).
    assert_eq!(max_seen.load(Ordering::SeqCst), 1, "concurrent executions");

    let stats = dir.stats();
    // Every lookup is accounted exactly once: explicit lookups plus the
    // internal fast-path lookup each run_coalesced performs (leaders that
    // never fail never re-drive, so there are no hidden retries).
    assert_eq!(
        stats.hits + stats.misses,
        (explicit_lookups.load(Ordering::SeqCst) + coalesced_lookups.load(Ordering::SeqCst)) as u64,
        "lost or double-counted lookup stats"
    );
    // Every stage decision recorded exactly once.
    assert_eq!(
        stats.stage_hits + stats.stage_misses,
        stage_records.load(Ordering::SeqCst) as u64,
        "lost stage stats"
    );
    // Invalidation counts match what the calls reported.
    assert_eq!(
        stats.invalidated,
        invalidated.load(Ordering::SeqCst) as u64,
        "lost invalidation stats"
    );
    // Executions can't exceed coalesced requests, and with 5x more
    // coalesced calls than keys there must have been plenty of sharing.
    let executed = executions.load(Ordering::SeqCst);
    let requested = coalesced_lookups.load(Ordering::SeqCst);
    assert!(executed <= requested);
    assert!(
        stats.hits + stats.coalesced > 0,
        "no sharing observed at all: {stats:?}"
    );
    // LRU never overruns its capacity.
    assert!(dir.len() <= CAPACITY, "capacity exceeded: {}", dir.len());
}
