//! The service facade: the full request lifecycle of Figure 2.
//!
//! Browser → (JSON workbook state) → authenticate → access control → query
//! input graph resolution → materialized view substitution → compile →
//! workload queue → customer CDW → result back (by query id).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use sigma_cdw::Warehouse;
use sigma_core::schema::SchemaProvider;
use sigma_core::{CompileOptions, Compiler, Workbook};
use sigma_value::Batch;

use crate::cache::{DirectoryStats, QueryDirectory};
use crate::documents::DocumentStore;
use crate::error::ServiceError;
use crate::materialize::Materializer;
use crate::tenancy::{Grants, Role, Tenancy, User};
use crate::workload::{Priority, WorkloadManager, WorkloadStats};

/// A configured warehouse connection ("Sigma allows multiple warehouse
/// configurations per customer", §2).
/// Per-connection handles resolved for a request: warehouse, query
/// directory, and workload manager.
type ConnectionParts = (Arc<Warehouse>, Arc<QueryDirectory>, Arc<WorkloadManager>);

struct Connection {
    org: u64,
    warehouse: Arc<Warehouse>,
    directory: Arc<QueryDirectory>,
    workload: Arc<WorkloadManager>,
}

/// Where a query answer came from (experiment E4's observable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Fresh execution on the warehouse.
    Warehouse,
    /// Query-directory hit: result re-fetched from the CDW by query id.
    QueryDirectory,
}

/// One query request: the browser ships the JSON-encoded workbook state.
pub struct QueryRequest<'a> {
    pub token: &'a str,
    pub connection: &'a str,
    pub workbook_json: &'a str,
    pub element: &'a str,
    pub priority: Priority,
}

/// The service's answer.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub batch: Batch,
    pub query_id: String,
    pub sql: String,
    pub served_from: ServedFrom,
    pub queue_wait: Duration,
}

/// The multi-tenant Sigma service.
pub struct SigmaService {
    pub tenancy: Tenancy,
    pub grants: Grants,
    pub documents: DocumentStore,
    pub materializer: Materializer,
    connections: RwLock<HashMap<String, Connection>>,
    /// Admission limit applied to newly added connections.
    default_concurrency: usize,
}

/// `SchemaProvider` over a live warehouse connection.
pub struct WarehouseSchemas<'a>(pub &'a Warehouse);

impl SchemaProvider for WarehouseSchemas<'_> {
    fn table_schema(&self, table: &str) -> Option<Arc<sigma_value::Schema>> {
        self.0.table_schema(table)
    }
    fn query_schema(&self, sql: &str) -> Option<Arc<sigma_value::Schema>> {
        self.0.query_schema(sql).ok()
    }
}

impl SigmaService {
    pub fn new() -> SigmaService {
        SigmaService {
            tenancy: Tenancy::new(),
            grants: Grants::new(),
            documents: DocumentStore::new(),
            materializer: Materializer::new(),
            connections: RwLock::new(HashMap::new()),
            default_concurrency: 8,
        }
    }

    pub fn with_concurrency(mut self, max_concurrent: usize) -> SigmaService {
        self.default_concurrency = max_concurrent.max(1);
        self
    }

    /// Register a warehouse connection for an org.
    pub fn add_connection(&self, org: u64, name: &str, warehouse: Arc<Warehouse>) {
        self.connections.write().insert(
            name.to_string(),
            Connection {
                org,
                warehouse,
                directory: Arc::new(QueryDirectory::new(512)),
                workload: Arc::new(WorkloadManager::new(self.default_concurrency)),
            },
        );
    }

    fn connection_for(&self, user: &User, name: &str) -> Result<ConnectionParts, ServiceError> {
        let conns = self.connections.read();
        let conn = conns
            .get(name)
            .ok_or_else(|| ServiceError::NotFound(format!("connection {name}")))?;
        if conn.org != user.org {
            return Err(ServiceError::Forbidden(format!(
                "connection {name} belongs to another organization"
            )));
        }
        Ok((
            conn.warehouse.clone(),
            conn.directory.clone(),
            conn.workload.clone(),
        ))
    }

    /// Cache statistics for a connection (experiment E4/E6 observables).
    pub fn directory_stats(&self, connection: &str) -> Option<DirectoryStats> {
        self.connections
            .read()
            .get(connection)
            .map(|c| c.directory.stats())
    }

    pub fn workload_stats(&self, connection: &str) -> Option<WorkloadStats> {
        self.connections
            .read()
            .get(connection)
            .map(|c| c.workload.stats())
    }

    /// Compile an element of a workbook against a connection, applying
    /// materialized-view substitution.
    pub fn compile(
        &self,
        user: &User,
        connection: &str,
        workbook: &Workbook,
        element: &str,
    ) -> Result<sigma_core::compile::CompiledQuery, ServiceError> {
        let (warehouse, _, _) = self.connection_for(user, connection)?;
        let schemas = WarehouseSchemas(&warehouse);
        let options = CompileOptions {
            dialect: warehouse.dialect(),
            materializations: self.materializer.substitutions(),
        };
        let compiler = Compiler::new(workbook, &schemas, options);
        Ok(compiler.compile_element(element)?)
    }

    /// The full §2 lifecycle for one element query.
    pub fn run_query(&self, req: &QueryRequest<'_>) -> Result<QueryOutcome, ServiceError> {
        // 1. Authentication.
        let user = self.tenancy.authenticate(req.token)?;
        // 2. Access control (connection scoping).
        let (warehouse, directory, workload) = self.connection_for(&user, req.connection)?;
        // 3. Workbook state arrives as JSON.
        let workbook = Workbook::from_json(req.workbook_json)?;
        // 4. Graph resolution + matview substitution + compilation.
        let compiled = self.compile(&user, req.connection, &workbook, req.element)?;
        // 5. Query directory: serve identical recent/in-flight queries from
        // the CDW-persisted result set instead of recomputing.
        let sql = compiled.sql.clone();
        let fingerprint = format!("{}:{}", req.connection, sql);
        let wh = warehouse.clone();
        let wl = workload.clone();
        let mut queue_wait = Duration::ZERO;
        let (query_id, cached) = directory
            .run_coalesced(&fingerprint, || {
                let (result, wait) = wl.submit(req.priority, || wh.execute_sql(&sql));
                queue_wait = wait;
                result.map(|r| r.query_id)
            })
            .map_err(ServiceError::from)?;
        // 6. Fetch the result set (fresh executions persist it; directory
        // hits re-fetch by query id).
        let (batch, served_from) = match warehouse.persisted_result(&query_id) {
            Some(batch) if cached => (batch, ServedFrom::QueryDirectory),
            Some(batch) => (batch, ServedFrom::Warehouse),
            None => {
                // Evicted from the warehouse's persisted results: re-run.
                directory.invalidate(|k| k == fingerprint);
                let (result, wait) = workload.submit(req.priority, || warehouse.execute_sql(&sql));
                queue_wait = wait;
                let r = result?;
                directory.insert(&fingerprint, &r.query_id);
                (r.batch, ServedFrom::Warehouse)
            }
        };
        Ok(QueryOutcome {
            batch,
            query_id,
            sql,
            served_from,
            queue_wait,
        })
    }

    // ------------------------------------------------------------------
    // ad-hoc data (§3.4)
    // ------------------------------------------------------------------

    /// Marshal an uploaded CSV into the customer's warehouse as a table.
    pub fn upload_csv(
        &self,
        token: &str,
        connection: &str,
        table: &str,
        csv_text: &str,
    ) -> Result<usize, ServiceError> {
        let user = self.tenancy.authenticate(token)?;
        if user.role == Role::Viewer {
            return Err(ServiceError::Forbidden("viewers cannot upload data".into()));
        }
        let (warehouse, directory, _) = self.connection_for(&user, connection)?;
        let batch = sigma_value::csv::read_csv(csv_text, &Default::default())
            .map_err(|e| ServiceError::BadRequest(format!("csv: {e}")))?;
        let rows = batch.num_rows();
        warehouse.load_table(table, batch)?;
        directory.invalidate(|_| true);
        Ok(rows)
    }

    /// Project an editable input table into the warehouse (first save).
    pub fn project_input_table(
        &self,
        token: &str,
        connection: &str,
        workbook: &mut Workbook,
        element: &str,
    ) -> Result<String, ServiceError> {
        let user = self.tenancy.authenticate(token)?;
        let (warehouse, directory, _) = self.connection_for(&user, connection)?;
        let table = format!(
            "input_{}_{}",
            user.org,
            element.to_ascii_lowercase().replace(' ', "_")
        );
        let input = workbook
            .input_table_mut(element)
            .ok_or_else(|| ServiceError::NotFound(format!("input table {element}")))?;
        let batch = input.to_batch()?;
        warehouse.load_table(&table, batch)?;
        input.warehouse_table = Some(table.clone());
        input.take_journal(); // initial projection covers everything so far
        directory.invalidate(|_| true);
        Ok(table)
    }

    /// Propagate accumulated edits to the warehouse as DML ("the edits are
    /// propagated to the warehouse", §3.4) and invalidate cached queries so
    /// downstream elements recompute.
    pub fn propagate_edits(
        &self,
        token: &str,
        connection: &str,
        workbook: &mut Workbook,
        element: &str,
    ) -> Result<usize, ServiceError> {
        let user = self.tenancy.authenticate(token)?;
        let (warehouse, directory, _) = self.connection_for(&user, connection)?;
        let input = workbook
            .input_table_mut(element)
            .ok_or_else(|| ServiceError::NotFound(format!("input table {element}")))?;
        let Some(table) = input.warehouse_table.clone() else {
            return Err(ServiceError::BadRequest(format!(
                "input table {element} has not been projected yet"
            )));
        };
        let columns = input.columns.clone();
        let rows = input.rows.clone();
        let journal = input.take_journal();
        let n = journal.len();
        for edit in journal {
            match edit {
                sigma_core::editable::Edit::SetCell { row, column, value } => {
                    let dtype = columns
                        .iter()
                        .find(|(c, _)| c.eq_ignore_ascii_case(&column))
                        .map(|(_, t)| *t)
                        .ok_or_else(|| {
                            ServiceError::BadRequest(format!("unknown column {column}"))
                        })?;
                    let coerced = sigma_value::column::cast_value(value, dtype)
                        .unwrap_or(sigma_value::Value::Null);
                    let stmt = sigma_sql::Statement::Update {
                        table: sigma_sql::ObjectName::bare(table.clone()),
                        assignments: vec![(column, sigma_sql::SqlExpr::Literal(coerced))],
                        selection: Some(sigma_sql::SqlExpr::eq(
                            sigma_sql::SqlExpr::col("_row_id"),
                            sigma_sql::SqlExpr::lit(row as i64),
                        )),
                    };
                    warehouse.execute_statement(&stmt)?;
                }
                sigma_core::editable::Edit::InsertRow { row_id } => {
                    let Some((_, values)) = rows.iter().find(|(id, _)| *id == row_id) else {
                        continue; // inserted then deleted before propagation
                    };
                    let mut row_exprs = vec![sigma_sql::SqlExpr::lit(row_id as i64)];
                    for (v, (_, t)) in values.iter().zip(&columns) {
                        let coerced = sigma_value::column::cast_value(v.clone(), *t)
                            .unwrap_or(sigma_value::Value::Null);
                        row_exprs.push(sigma_sql::SqlExpr::Literal(coerced));
                    }
                    let stmt = sigma_sql::Statement::Insert {
                        table: sigma_sql::ObjectName::bare(table.clone()),
                        columns: None,
                        source: sigma_sql::Query {
                            ctes: vec![],
                            body: sigma_sql::SetExpr::Values(vec![row_exprs]),
                            order_by: vec![],
                            limit: None,
                            offset: None,
                        },
                    };
                    warehouse.execute_statement(&stmt)?;
                }
                sigma_core::editable::Edit::DeleteRow { row_id } => {
                    let stmt = sigma_sql::Statement::Delete {
                        table: sigma_sql::ObjectName::bare(table.clone()),
                        selection: Some(sigma_sql::SqlExpr::eq(
                            sigma_sql::SqlExpr::col("_row_id"),
                            sigma_sql::SqlExpr::lit(row_id as i64),
                        )),
                    };
                    warehouse.execute_statement(&stmt)?;
                }
            }
        }
        if n > 0 {
            directory.invalidate(|_| true);
        }
        Ok(n)
    }

    // ------------------------------------------------------------------
    // materialization (§4)
    // ------------------------------------------------------------------

    /// Materialize an element's result set into a warehouse table and
    /// register it for compiler substitution.
    pub fn materialize_element(
        &self,
        token: &str,
        connection: &str,
        workbook: &Workbook,
        element: &str,
        refresh_every: Option<u64>,
    ) -> Result<String, ServiceError> {
        let user = self.tenancy.authenticate(token)?;
        if user.role == Role::Viewer {
            return Err(ServiceError::Forbidden("viewers cannot materialize".into()));
        }
        let (warehouse, directory, workload) = self.connection_for(&user, connection)?;
        // Compile WITHOUT substituting this element itself.
        let schemas = WarehouseSchemas(&warehouse);
        let mut subs = self.materializer.substitutions();
        subs.remove(&element.to_ascii_lowercase());
        let options = CompileOptions {
            dialect: warehouse.dialect(),
            materializations: subs,
        };
        let compiled = Compiler::new(workbook, &schemas, options).compile_element(element)?;
        let table = format!("mat_{}", element.to_ascii_lowercase().replace(' ', "_"));
        let ddl = format!("CREATE OR REPLACE TABLE {table} AS\n{}", compiled.sql);
        let (result, _) = workload.submit(Priority::Background, || warehouse.execute_sql(&ddl));
        result?;
        self.materializer.register(element, &table, refresh_every);
        self.materializer.mark_refreshed(element);
        directory.invalidate(|_| true);
        Ok(table)
    }

    /// Advance the simulated clock; refresh any due materializations.
    pub fn tick_materializations(
        &self,
        token: &str,
        connection: &str,
        workbook: &Workbook,
        seconds: u64,
    ) -> Result<usize, ServiceError> {
        let due = self.materializer.tick(seconds);
        let mut refreshed = 0;
        for m in due {
            self.materialize_element(token, connection, workbook, &m.element, m.refresh_every)?;
            refreshed += 1;
        }
        Ok(refreshed)
    }
}

impl Default for SigmaService {
    fn default() -> Self {
        SigmaService::new()
    }
}
