//! The service facade: the full request lifecycle of Figure 2.
//!
//! Browser → (JSON workbook state) → authenticate → access control → query
//! input graph resolution → materialized view substitution → compile →
//! workload queue → customer CDW → result back (by query id).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use sigma_cdw::Warehouse;
use sigma_core::schema::SchemaProvider;
use sigma_core::{CompileOptions, Compiler, StagePlan, Workbook};

use sigma_value::Batch;

use crate::cache::{DirKey, DirectoryStats, QueryDirectory};
use crate::documents::DocumentStore;
use crate::error::ServiceError;
use crate::materialize::Materializer;
use crate::tenancy::{Grants, Role, Tenancy, User};
use crate::workload::{AdmissionConfig, Priority, WorkloadManager, WorkloadStats};

/// A configured warehouse connection ("Sigma allows multiple warehouse
/// configurations per customer", §2).
/// Per-connection handles resolved for a request: warehouse, query
/// directory, and workload manager.
type ConnectionParts = (Arc<Warehouse>, Arc<QueryDirectory>, Arc<WorkloadManager>);

struct Connection {
    org: u64,
    warehouse: Arc<Warehouse>,
    directory: Arc<QueryDirectory>,
    workload: Arc<WorkloadManager>,
}

/// Where a query answer came from (experiment E4's observable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Fresh execution on the warehouse (no cached stage helped).
    Warehouse,
    /// Query-directory hit: result re-fetched from the CDW by query id.
    QueryDirectory,
    /// Partial reuse: at least one pipeline stage was served from the
    /// directory via `RESULT_SCAN`; only the changed suffix re-executed.
    StageReuse,
}

/// One query request: the browser ships the JSON-encoded workbook state.
pub struct QueryRequest<'a> {
    pub token: &'a str,
    pub connection: &'a str,
    pub workbook_json: &'a str,
    pub element: &'a str,
    pub priority: Priority,
}

/// The service's answer.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub batch: Batch,
    pub query_id: String,
    pub sql: String,
    pub served_from: ServedFrom,
    pub queue_wait: Duration,
    /// Pipeline stages answered from the query directory (prefix reuse).
    pub stage_hits: usize,
    /// Pipeline stages (including the final assembly) executed on the
    /// warehouse for this request.
    pub stages_executed: usize,
    /// Warehouse *table* rows scanned by this request (RESULT_SCAN reads
    /// of persisted results are free and not counted).
    pub rows_scanned: usize,
    /// The element's root stage fingerprint (the sink's Merkle hash) —
    /// the canonical cache key for this workbook state. Browser clients
    /// key their result cache on it without compiling themselves.
    pub root_fingerprint: sigma_core::Fingerprint,
    /// The compiled stage DAG: standalone per-stage SQL, Merkle
    /// fingerprints, and table dependencies. Browser clients keep the
    /// last plan per element and diff it against the next edit's plan to
    /// run only the invalidated suffix locally.
    pub stages: StagePlan,
    /// Interior stage results riding back with the answer, as
    /// `(fingerprint hex, batch)` pairs — the client seeds its
    /// fingerprint-keyed stage cache from these so the *next* edit can
    /// reuse them without any warehouse round trip. Only stages whose
    /// persisted result is still live and fits the ship cap are included.
    pub stage_results: Vec<(String, Batch)>,
    /// Schemas of the warehouse tables the element reads, letting the
    /// client compile subsequent edits locally even when the tables
    /// themselves were never prefetched.
    pub table_schemas: Vec<(String, Arc<sigma_value::Schema>)>,
}

/// The multi-tenant Sigma service.
pub struct SigmaService {
    pub tenancy: Tenancy,
    pub grants: Grants,
    pub documents: DocumentStore,
    pub materializer: Materializer,
    connections: RwLock<HashMap<String, Connection>>,
    /// Admission limit applied to newly added connections.
    default_concurrency: usize,
    /// Stage-level caching: when on, each CTE stage of a compiled element
    /// executes as its own warehouse query keyed by its Merkle fingerprint,
    /// so an edit re-executes only the stages downstream of the change.
    stage_caching: AtomicBool,
    /// Byte budget for interior stage results shipped back on each
    /// [`QueryOutcome`] (0 disables shipping). Mirrors the prefetch
    /// philosophy: small intermediates ride along so the browser can run
    /// residual suffixes without another round trip.
    stage_ship_cap: AtomicUsize,
}

/// `SchemaProvider` over a live warehouse connection.
pub struct WarehouseSchemas<'a>(pub &'a Warehouse);

impl SchemaProvider for WarehouseSchemas<'_> {
    fn table_schema(&self, table: &str) -> Option<Arc<sigma_value::Schema>> {
        self.0.table_schema(table)
    }
    fn query_schema(&self, sql: &str) -> Option<Arc<sigma_value::Schema>> {
        self.0.query_schema(sql).ok()
    }
}

impl SigmaService {
    pub fn new() -> SigmaService {
        SigmaService {
            tenancy: Tenancy::new(),
            grants: Grants::new(),
            documents: DocumentStore::new(),
            materializer: Materializer::new(),
            connections: RwLock::new(HashMap::new()),
            default_concurrency: 8,
            stage_caching: AtomicBool::new(true),
            stage_ship_cap: AtomicUsize::new(8 << 20),
        }
    }

    pub fn with_concurrency(mut self, max_concurrent: usize) -> SigmaService {
        self.default_concurrency = max_concurrent.max(1);
        self
    }

    /// Toggle stage-level caching (on by default). With it off the service
    /// behaves like the original whole-query directory: one warehouse
    /// query per request, keyed by the element's root fingerprint.
    pub fn set_stage_caching(&self, enabled: bool) {
        self.stage_caching.store(enabled, Ordering::Relaxed);
    }

    pub fn stage_caching(&self) -> bool {
        self.stage_caching.load(Ordering::Relaxed)
    }

    /// Set the byte budget for stage results shipped on each outcome
    /// (0 disables shipping entirely).
    pub fn set_stage_ship_cap(&self, bytes: usize) {
        self.stage_ship_cap.store(bytes, Ordering::Relaxed);
    }

    pub fn stage_ship_cap(&self) -> usize {
        self.stage_ship_cap.load(Ordering::Relaxed)
    }

    /// Register a warehouse connection for an org.
    pub fn add_connection(&self, org: u64, name: &str, warehouse: Arc<Warehouse>) {
        self.connections.write().insert(
            name.to_string(),
            Connection {
                org,
                warehouse,
                directory: Arc::new(QueryDirectory::new(512)),
                workload: Arc::new(WorkloadManager::new(self.default_concurrency)),
            },
        );
    }

    fn connection_for(&self, user: &User, name: &str) -> Result<ConnectionParts, ServiceError> {
        let conns = self.connections.read();
        let conn = conns
            .get(name)
            .ok_or_else(|| ServiceError::NotFound(format!("connection {name}")))?;
        if conn.org != user.org {
            return Err(ServiceError::Forbidden(format!(
                "connection {name} belongs to another organization"
            )));
        }
        Ok((
            conn.warehouse.clone(),
            conn.directory.clone(),
            conn.workload.clone(),
        ))
    }

    /// Set the per-operator execution memory budget of one connection's
    /// warehouse (`None` = unbounded). Queries on the connection whose
    /// aggregation/sort/join state would exceed the budget run out-of-core
    /// with spill files — results stay bit-identical, so flipping the knob
    /// is always safe. Returns false for an unknown connection.
    pub fn set_connection_memory_budget(&self, connection: &str, budget: Option<usize>) -> bool {
        match self.connections.read().get(connection) {
            Some(c) => {
                c.warehouse.set_memory_budget(budget);
                true
            }
            None => false,
        }
    }

    /// The per-operator memory budget currently configured on a
    /// connection's warehouse (`None` = unbounded or unknown connection).
    pub fn connection_memory_budget(&self, connection: &str) -> Option<usize> {
        self.connections
            .read()
            .get(connection)
            .and_then(|c| c.warehouse.memory_budget())
    }

    /// Cache statistics for a connection (experiment E4/E6 observables).
    pub fn directory_stats(&self, connection: &str) -> Option<DirectoryStats> {
        self.connections
            .read()
            .get(connection)
            .map(|c| c.directory.stats())
    }

    pub fn workload_stats(&self, connection: &str) -> Option<WorkloadStats> {
        self.connections
            .read()
            .get(connection)
            .map(|c| c.workload.stats())
    }

    /// Replace one connection's admission-control policy (concurrency
    /// limit, per-tenant quota, queue bound, default deadline). Returns
    /// false for an unknown connection.
    pub fn set_connection_admission(&self, connection: &str, config: AdmissionConfig) -> bool {
        match self.connections.read().get(connection) {
            Some(c) => {
                c.workload.set_config(config);
                true
            }
            None => false,
        }
    }

    /// The admission policy currently applied to a connection.
    pub fn connection_admission(&self, connection: &str) -> Option<AdmissionConfig> {
        self.connections
            .read()
            .get(connection)
            .map(|c| c.workload.config())
    }

    /// Set an org's weighted-fair-queueing weight on a connection
    /// (default 1). Returns false for an unknown connection.
    pub fn set_tenant_weight(&self, connection: &str, org: u64, weight: u32) -> bool {
        match self.connections.read().get(connection) {
            Some(c) => {
                c.workload.set_tenant_weight(org, weight);
                true
            }
            None => false,
        }
    }

    /// Per-org admission statistics on a connection (fairness
    /// observables for the traffic-replay bench and the server tier).
    pub fn tenant_workload_stats(
        &self,
        connection: &str,
        org: u64,
    ) -> Option<crate::workload::TenantStats> {
        self.connections
            .read()
            .get(connection)
            .map(|c| c.workload.tenant_stats(org))
    }

    /// Validate that `token` may use `connection` (exists and belongs to
    /// the caller's org) without running a query — the server tier's
    /// `open_session` check.
    pub fn check_connection(&self, token: &str, connection: &str) -> Result<(), ServiceError> {
        let user = self.tenancy.authenticate(token)?;
        self.connection_for(&user, connection).map(|_| ())
    }

    /// Compile an element of a workbook against a connection, applying
    /// materialized-view substitution.
    pub fn compile(
        &self,
        user: &User,
        connection: &str,
        workbook: &Workbook,
        element: &str,
    ) -> Result<sigma_core::compile::CompiledQuery, ServiceError> {
        let (warehouse, _, _) = self.connection_for(user, connection)?;
        let schemas = WarehouseSchemas(&warehouse);
        let options = CompileOptions {
            dialect: warehouse.dialect(),
            materializations: self.materializer.substitutions(),
        };
        let compiler = Compiler::new(workbook, &schemas, options);
        Ok(compiler.compile_element(element)?)
    }

    /// Token-authenticated compile (used by browser clients to obtain
    /// per-stage fingerprints without a separate `User` handle).
    pub fn compile_with_token(
        &self,
        token: &str,
        connection: &str,
        workbook: &Workbook,
        element: &str,
    ) -> Result<sigma_core::compile::CompiledQuery, ServiceError> {
        let user = self.tenancy.authenticate(token)?;
        self.compile(&user, connection, workbook, element)
    }

    /// The full §2 lifecycle for one element query.
    pub fn run_query(&self, req: &QueryRequest<'_>) -> Result<QueryOutcome, ServiceError> {
        self.run_query_deadline(req, None)
    }

    /// [`run_query`](Self::run_query) with an admission deadline: each
    /// workload-queue wait is bounded by `deadline`, and a full tenant
    /// queue sheds the request immediately with
    /// [`ServiceError::Overloaded`] instead of queueing without bound.
    pub fn run_query_deadline(
        &self,
        req: &QueryRequest<'_>,
        deadline: Option<Duration>,
    ) -> Result<QueryOutcome, ServiceError> {
        // 1. Authentication.
        let user = self.tenancy.authenticate(req.token)?;
        // Admission control is per tenant: the user's org is the
        // fair-queueing principal on the connection's workload manager.
        let tenant = user.org;
        // 2. Access control (connection scoping).
        let (warehouse, directory, workload) = self.connection_for(&user, req.connection)?;
        // 3. Workbook state arrives as JSON.
        let workbook = Workbook::from_json(req.workbook_json)?;
        // 4. Graph resolution + matview substitution + compilation.
        let compiled = self.compile(&user, req.connection, &workbook, req.element)?;
        // 5. Query directory. The compiled element is a DAG of fingerprinted
        // stages; the directory caches each stage's CDW-persisted result by
        // `(connection, fingerprint)`. The root (sink) fingerprint keys the
        // whole query; interior fingerprints enable cross-edit prefix reuse.
        let sql = compiled.sql.clone();
        let plan = compiled.stages;
        let root_fingerprint = plan.root_fingerprint();
        let root_key = DirKey::for_stage(req.connection, root_fingerprint);
        let all_tables: Arc<[String]> = plan.sink().all_tables.clone().into();
        let stage_caching = self.stage_caching();
        let mut queue_wait = Duration::ZERO;
        let mut stage_hits = 0usize;
        let mut stages_executed = 0usize;
        let mut rows_scanned = 0usize;
        let (mut query_id, cached) = directory.run_coalesced(root_key, || {
            if stage_caching && plan.nodes.len() > 1 {
                match run_stage_pipeline(
                    &warehouse,
                    &workload,
                    &directory,
                    req.connection,
                    tenant,
                    req.priority,
                    deadline,
                    &plan,
                    &mut queue_wait,
                    &mut stage_hits,
                    &mut stages_executed,
                    &mut rows_scanned,
                ) {
                    Ok(qid) => return Ok::<_, ServiceError>(qid),
                    // Admission rejections are backpressure, not cache
                    // staleness: retrying flattened would *add* load to an
                    // already saturated warehouse. Propagate immediately.
                    Err(e @ ServiceError::Overloaded { .. })
                    | Err(e @ ServiceError::DeadlineExceeded { .. }) => return Err(e),
                    Err(_) => {
                        // A reused stage's persisted result can be evicted
                        // between the cache walk's liveness check and the
                        // execution that RESULT_SCANs it (the directory
                        // promotes but cannot pin). Fall back to one
                        // flattened query rather than failing a request
                        // that would succeed with caching off; a genuine
                        // query error surfaces from the flattened run too.
                        // (queue_wait is overwritten by the flattened
                        // submit below.)
                        stage_hits = 0;
                        stages_executed = 0;
                        rows_scanned = 0;
                    }
                }
            }
            let (result, wait) = workload.submit_for(tenant, req.priority, deadline, || {
                warehouse.execute_sql(&sql).map_err(ServiceError::from)
            })?;
            queue_wait = wait;
            let r = result?;
            stages_executed += 1;
            rows_scanned += r.rows_scanned;
            Ok(r.query_id)
        })?;
        directory.set_deps(root_key, all_tables.clone());
        // 6. Fetch the result set (fresh executions persist it; directory
        // hits re-fetch by query id).
        let (batch, served_from) = match warehouse.persisted_result(&query_id) {
            Some(batch) if cached => (batch, ServedFrom::QueryDirectory),
            Some(batch) if stage_hits > 0 => (batch, ServedFrom::StageReuse),
            Some(batch) => (batch, ServedFrom::Warehouse),
            None => {
                // Evicted from the warehouse's persisted results: re-run
                // the whole query fresh. The pipeline's per-request
                // counters no longer describe what this request was
                // ultimately served from, so reset them to the flattened
                // re-run's accounting.
                directory.invalidate_key(root_key);
                let (result, wait) = workload
                    .submit_for(tenant, req.priority, deadline, || {
                        warehouse.execute_sql(&sql)
                    })
                    .map_err(ServiceError::from)?;
                queue_wait = wait;
                let r = result?;
                stage_hits = 0;
                rows_scanned = r.rows_scanned;
                stages_executed = 1;
                directory.insert_with_deps(root_key, &r.query_id, all_tables);
                query_id = r.query_id;
                (r.batch, ServedFrom::Warehouse)
            }
        };
        // Ship small live interior stage results (and the table schemas
        // the element reads) so the client can serve the next edit's
        // residual suffix — or a delta fast path — without a round trip.
        let ship_cap = self.stage_ship_cap();
        let mut stage_results: Vec<(String, Batch)> = Vec::new();
        if ship_cap > 0 && plan.nodes.len() > 1 {
            let mut shipped = 0usize;
            // Walk interior stages deepest-last so, under cap pressure,
            // the stages nearest the sink (the most valuable reuse
            // frontier for small edits) win the budget.
            for node in plan.nodes[..plan.nodes.len() - 1].iter().rev() {
                let key = DirKey::for_stage(req.connection, node.fingerprint);
                let Some(qid) = directory.lookup_stage(key) else {
                    continue;
                };
                let Some(b) = warehouse.persisted_result(&qid) else {
                    continue;
                };
                let bytes = b.byte_size();
                if shipped + bytes > ship_cap {
                    continue;
                }
                shipped += bytes;
                stage_results.push((node.fingerprint.hex(), b));
            }
        }
        let table_schemas: Vec<(String, Arc<sigma_value::Schema>)> = plan
            .sink()
            .all_tables
            .iter()
            .filter_map(|t| warehouse.table_schema(t).map(|s| (t.clone(), s)))
            .collect();
        Ok(QueryOutcome {
            batch,
            query_id,
            sql,
            served_from,
            queue_wait,
            stage_hits,
            stages_executed,
            rows_scanned,
            root_fingerprint,
            stages: plan,
            stage_results,
            table_schemas,
        })
    }

    // ------------------------------------------------------------------
    // ad-hoc data (§3.4)
    // ------------------------------------------------------------------

    /// Marshal an uploaded CSV into the customer's warehouse as a table.
    pub fn upload_csv(
        &self,
        token: &str,
        connection: &str,
        table: &str,
        csv_text: &str,
    ) -> Result<usize, ServiceError> {
        let user = self.tenancy.authenticate(token)?;
        if user.role == Role::Viewer {
            return Err(ServiceError::Forbidden("viewers cannot upload data".into()));
        }
        let (warehouse, directory, _) = self.connection_for(&user, connection)?;
        let batch = sigma_value::csv::read_csv(csv_text, &Default::default())
            .map_err(|e| ServiceError::BadRequest(format!("csv: {e}")))?;
        let rows = batch.num_rows();
        warehouse.load_table(table, batch)?;
        // Only cached results that read this table are stale.
        directory.invalidate_tables(&[table]);
        Ok(rows)
    }

    /// Project an editable input table into the warehouse (first save).
    pub fn project_input_table(
        &self,
        token: &str,
        connection: &str,
        workbook: &mut Workbook,
        element: &str,
    ) -> Result<String, ServiceError> {
        let user = self.tenancy.authenticate(token)?;
        let (warehouse, directory, _) = self.connection_for(&user, connection)?;
        let table = format!(
            "input_{}_{}",
            user.org,
            element.to_ascii_lowercase().replace(' ', "_")
        );
        let input = workbook
            .input_table_mut(element)
            .ok_or_else(|| ServiceError::NotFound(format!("input table {element}")))?;
        let batch = input.to_batch()?;
        warehouse.load_table(&table, batch)?;
        input.warehouse_table = Some(table.clone());
        input.take_journal(); // initial projection covers everything so far
        directory.invalidate_tables(&[&table]);
        Ok(table)
    }

    /// Propagate accumulated edits to the warehouse as DML ("the edits are
    /// propagated to the warehouse", §3.4) and invalidate cached queries so
    /// downstream elements recompute.
    pub fn propagate_edits(
        &self,
        token: &str,
        connection: &str,
        workbook: &mut Workbook,
        element: &str,
    ) -> Result<usize, ServiceError> {
        let user = self.tenancy.authenticate(token)?;
        let (warehouse, directory, _) = self.connection_for(&user, connection)?;
        let input = workbook
            .input_table_mut(element)
            .ok_or_else(|| ServiceError::NotFound(format!("input table {element}")))?;
        let Some(table) = input.warehouse_table.clone() else {
            return Err(ServiceError::BadRequest(format!(
                "input table {element} has not been projected yet"
            )));
        };
        let columns = input.columns.clone();
        let rows = input.rows.clone();
        let journal = input.take_journal();
        let n = journal.len();
        for edit in journal {
            match edit {
                sigma_core::editable::Edit::SetCell { row, column, value } => {
                    let dtype = columns
                        .iter()
                        .find(|(c, _)| c.eq_ignore_ascii_case(&column))
                        .map(|(_, t)| *t)
                        .ok_or_else(|| {
                            ServiceError::BadRequest(format!("unknown column {column}"))
                        })?;
                    let coerced = sigma_value::column::cast_value(value, dtype)
                        .unwrap_or(sigma_value::Value::Null);
                    let stmt = sigma_sql::Statement::Update {
                        table: sigma_sql::ObjectName::bare(table.clone()),
                        assignments: vec![(column, sigma_sql::SqlExpr::Literal(coerced))],
                        selection: Some(sigma_sql::SqlExpr::eq(
                            sigma_sql::SqlExpr::col("_row_id"),
                            sigma_sql::SqlExpr::lit(row as i64),
                        )),
                    };
                    warehouse.execute_statement(&stmt)?;
                }
                sigma_core::editable::Edit::InsertRow { row_id } => {
                    let Some((_, values)) = rows.iter().find(|(id, _)| *id == row_id) else {
                        continue; // inserted then deleted before propagation
                    };
                    let mut row_exprs = vec![sigma_sql::SqlExpr::lit(row_id as i64)];
                    for (v, (_, t)) in values.iter().zip(&columns) {
                        let coerced = sigma_value::column::cast_value(v.clone(), *t)
                            .unwrap_or(sigma_value::Value::Null);
                        row_exprs.push(sigma_sql::SqlExpr::Literal(coerced));
                    }
                    let stmt = sigma_sql::Statement::Insert {
                        table: sigma_sql::ObjectName::bare(table.clone()),
                        columns: None,
                        source: sigma_sql::Query {
                            ctes: vec![],
                            body: sigma_sql::SetExpr::Values(vec![row_exprs]),
                            order_by: vec![],
                            limit: None,
                            offset: None,
                        },
                    };
                    warehouse.execute_statement(&stmt)?;
                }
                sigma_core::editable::Edit::DeleteRow { row_id } => {
                    let stmt = sigma_sql::Statement::Delete {
                        table: sigma_sql::ObjectName::bare(table.clone()),
                        selection: Some(sigma_sql::SqlExpr::eq(
                            sigma_sql::SqlExpr::col("_row_id"),
                            sigma_sql::SqlExpr::lit(row_id as i64),
                        )),
                    };
                    warehouse.execute_statement(&stmt)?;
                }
            }
        }
        if n > 0 {
            // Precise invalidation: drop only cached stages whose
            // dependency set includes the edited input table.
            directory.invalidate_tables(&[&table]);
        }
        Ok(n)
    }

    // ------------------------------------------------------------------
    // materialization (§4)
    // ------------------------------------------------------------------

    /// Materialize an element's result set into a warehouse table and
    /// register it for compiler substitution.
    pub fn materialize_element(
        &self,
        token: &str,
        connection: &str,
        workbook: &Workbook,
        element: &str,
        refresh_every: Option<u64>,
    ) -> Result<String, ServiceError> {
        let user = self.tenancy.authenticate(token)?;
        if user.role == Role::Viewer {
            return Err(ServiceError::Forbidden("viewers cannot materialize".into()));
        }
        let (warehouse, directory, workload) = self.connection_for(&user, connection)?;
        // Compile WITHOUT substituting this element itself.
        let schemas = WarehouseSchemas(&warehouse);
        let mut subs = self.materializer.substitutions();
        subs.remove(&element.to_ascii_lowercase());
        let options = CompileOptions {
            dialect: warehouse.dialect(),
            materializations: subs,
        };
        let compiled = Compiler::new(workbook, &schemas, options).compile_element(element)?;
        let table = format!("mat_{}", element.to_ascii_lowercase().replace(' ', "_"));
        let ddl = format!("CREATE OR REPLACE TABLE {table} AS\n{}", compiled.sql);
        let (result, _) = workload
            .submit_for(user.org, Priority::Background, None, || {
                warehouse.execute_sql(&ddl)
            })
            .map_err(ServiceError::from)?;
        result?;
        self.materializer.register(element, &table, refresh_every);
        self.materializer.mark_refreshed(element);
        directory.invalidate_tables(&[&table]);
        Ok(table)
    }

    /// Advance the simulated clock; refresh any due materializations.
    pub fn tick_materializations(
        &self,
        token: &str,
        connection: &str,
        workbook: &Workbook,
        seconds: u64,
    ) -> Result<usize, ServiceError> {
        let due = self.materializer.tick(seconds);
        let mut refreshed = 0;
        for m in due {
            self.materialize_element(token, connection, workbook, &m.element, m.refresh_every)?;
            refreshed += 1;
        }
        Ok(refreshed)
    }
}

impl Default for SigmaService {
    fn default() -> Self {
        SigmaService::new()
    }
}

/// What the cache walk decided for one stage of the DAG.
#[derive(Clone)]
enum StageAction {
    /// Not reachable from the sink through uncached stages: never touched.
    Skip,
    /// Fingerprint found in the directory with a live persisted result:
    /// downstream stages read it via `RESULT_SCAN`.
    Reuse(String),
    /// Must execute on the warehouse.
    Execute,
}

/// Execute a compiled element stage by stage with prefix reuse.
///
/// Walking the DAG **from the sink**, each needed stage is looked up in the
/// directory by its `(connection, fingerprint)` key; a hit (with a live
/// persisted result) becomes a reuse frontier — its inputs are never
/// visited, so the deepest cached prefix is skipped entirely. The residual
/// stages then execute in topological order, each reading its inputs via
/// `TABLE(RESULT_SCAN('<query-id>'))` and persisting its own result under
/// its fingerprint for future edits to reuse.
#[allow(clippy::too_many_arguments)]
fn run_stage_pipeline(
    warehouse: &Warehouse,
    workload: &WorkloadManager,
    directory: &QueryDirectory,
    connection: &str,
    tenant: u64,
    priority: Priority,
    deadline: Option<Duration>,
    plan: &StagePlan,
    queue_wait: &mut Duration,
    stage_hits: &mut usize,
    stages_executed: &mut usize,
    rows_scanned: &mut usize,
) -> Result<String, ServiceError> {
    let n = plan.nodes.len();
    let sink = n - 1;
    let mut actions = vec![StageAction::Skip; n];
    let mut needed = vec![false; n];
    needed[sink] = true;
    // Reverse-topological cache walk. The sink itself always executes: the
    // caller's whole-query lookup (the coalesced fast path) already missed.
    for idx in (0..n).rev() {
        if !needed[idx] {
            continue;
        }
        if idx != sink {
            let key = DirKey::for_stage(connection, plan.nodes[idx].fingerprint);
            if let Some(qid) = directory.lookup_stage(key) {
                if warehouse.touch_result(&qid) {
                    actions[idx] = StageAction::Reuse(qid);
                    continue;
                }
                // Stale pointer: the CDW evicted the result set.
                directory.invalidate_key(key);
            }
        }
        actions[idx] = StageAction::Execute;
        for &input in &plan.nodes[idx].inputs {
            needed[input] = true;
        }
    }
    // Forward pass: execute the residual suffix in topological order.
    let mut qids: HashMap<usize, String> = HashMap::new();
    let mut final_qid = String::new();
    for (idx, action) in actions.iter().enumerate() {
        match action {
            StageAction::Skip => {}
            StageAction::Reuse(qid) => {
                *stage_hits += 1;
                qids.insert(idx, qid.clone());
            }
            StageAction::Execute => {
                let node = &plan.nodes[idx];
                let mut query = node.query.clone();
                let scans: HashMap<String, String> = node
                    .inputs
                    .iter()
                    .map(|&i| {
                        (
                            plan.nodes[i].name.to_ascii_lowercase(),
                            qids.get(&i).cloned().expect("input stage resolved"),
                        )
                    })
                    .collect();
                sigma_sql::substitute_result_scans(&mut query, &scans);
                let stmt = sigma_sql::Statement::Query(query);
                // The deadline bounds each stage's queue wait; a request
                // stuck behind saturation fails fast rather than holding
                // its session thread through the whole residual suffix.
                let (result, wait) = workload
                    .submit_for(tenant, priority, deadline, || {
                        warehouse.execute_statement(&stmt)
                    })
                    .map_err(ServiceError::from)?;
                *queue_wait += wait;
                let r = result?;
                *stages_executed += 1;
                *rows_scanned += r.rows_scanned;
                if idx != sink {
                    // The sink's entry is written by the caller's coalescing
                    // wrapper under the root key.
                    let key = DirKey::for_stage(connection, node.fingerprint);
                    directory.insert_with_deps(key, &r.query_id, node.all_tables.clone().into());
                }
                qids.insert(idx, r.query_id.clone());
                if idx == sink {
                    final_qid = r.query_id;
                }
            }
        }
    }
    // Directory stage stats are recorded only once the whole pipeline
    // succeeded: if a reused result is evicted mid-request the caller
    // falls back to a flattened query, and counting the walk's tentative
    // hits would overstate reuse that never materialized.
    for (idx, action) in actions.iter().enumerate() {
        match action {
            StageAction::Reuse(_) => directory.record_stage(true),
            StageAction::Execute if idx != sink => directory.record_stage(false),
            _ => {}
        }
    }
    Ok(final_qid)
}
