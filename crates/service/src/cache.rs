//! The app-server **query directory** — the second cache level of §4.
//!
//! "The second level of caching is a directory of recent queries maintained
//! by the Sigma app server. The directory points to available result sets,
//! stored in the CDW by their query-id, which can be re-fetched as
//! requested. It also tracks in-flight query requests, enabling multiple
//! browsers to share results when collaboratively editing a document."
//!
//! Entries hold only `(key -> query id [+ table deps])` — never warehouse
//! data, honoring the constraint that "user warehouse data is never stored
//! within the Sigma service cloud".
//!
//! Three properties matter at scale:
//!
//! * **Fixed-width keys.** Entries are keyed by a 128-bit hash
//!   ([`DirKey`]) of `(connection, stage fingerprint)`, so the directory's
//!   memory footprint is bounded by entry *count*, never by query length.
//! * **O(log n) recency.** LRU bookkeeping uses a monotone sequence
//!   counter plus a `BTreeMap` recency index (seq → key); lookups and
//!   inserts promote in O(log n) instead of the old `Vec::position` +
//!   `remove` linear scan.
//! * **Precise invalidation.** Entries carry the set of warehouse tables
//!   their results were computed from; a table change invalidates only the
//!   entries that read it (entries with unknown dependencies are dropped
//!   conservatively).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use sigma_core::Fingerprint;
use sigma_value::lru::LruIndex;

/// Fixed-width directory key: a 128-bit hash of whatever identifies the
/// cached result (for stage entries, `(connection, stage fingerprint)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirKey(pub u128);

impl DirKey {
    /// Key for a compiled stage on a connection.
    pub fn for_stage(connection: &str, fingerprint: Fingerprint) -> DirKey {
        let fp = Fingerprint::of_bytes(connection.as_bytes())
            .extend(b"\0")
            .extend(&fingerprint.0.to_le_bytes());
        DirKey(fp.0)
    }
}

impl From<&str> for DirKey {
    fn from(s: &str) -> DirKey {
        DirKey(Fingerprint::of_bytes(s.as_bytes()).0)
    }
}

impl From<Fingerprint> for DirKey {
    fn from(fp: Fingerprint) -> DirKey {
        DirKey(fp.0)
    }
}

/// Statistics exposed for the caching experiments (E4) and the
/// edit-session bench.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectoryStats {
    pub hits: u64,
    pub misses: u64,
    /// Queries that piggybacked on an identical in-flight request.
    pub coalesced: u64,
    /// Stage-level lookups answered from the directory (prefix reuse).
    pub stage_hits: u64,
    /// Stage-level lookups that had to execute on the warehouse.
    pub stage_misses: u64,
    /// Entries dropped by table-targeted invalidation.
    pub invalidated: u64,
}

#[derive(Default)]
struct InFlight {
    done: Mutex<Option<String>>, // query id once complete
    cv: Condvar,
}

struct Entry {
    query_id: String,
    /// Warehouse tables (lower-cased) the result was computed from;
    /// `None` = unknown, treated pessimistically by table invalidation.
    deps: Option<Arc<[String]>>,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<DirKey, Entry>,
    /// LRU recency over the same keys; eviction pops the oldest.
    recency: LruIndex<DirKey>,
}

impl Inner {
    fn remove(&mut self, key: DirKey) -> bool {
        self.recency.remove(&key);
        self.entries.remove(&key).is_some()
    }
}

/// Directory of recent query keys, pointing at CDW-persisted result sets
/// (re-fetchable via `RESULT_SCAN`) by query id.
pub struct QueryDirectory {
    inner: Mutex<Inner>,
    in_flight: Mutex<HashMap<DirKey, Arc<InFlight>>>,
    stats: Mutex<DirectoryStats>,
    capacity: usize,
}

impl QueryDirectory {
    pub fn new(capacity: usize) -> QueryDirectory {
        QueryDirectory {
            inner: Mutex::new(Inner::default()),
            in_flight: Mutex::new(HashMap::new()),
            stats: Mutex::new(DirectoryStats::default()),
            capacity: capacity.max(1),
        }
    }

    pub fn stats(&self) -> DirectoryStats {
        *self.stats.lock()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a completed query id. A hit promotes the entry to
    /// most-recently-used so hot keys survive eviction.
    pub fn lookup(&self, key: impl Into<DirKey>) -> Option<String> {
        let hit = self.lookup_quiet(key.into());
        let mut stats = self.stats.lock();
        if hit.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        hit
    }

    /// Stage-level lookup, *uncounted*: the caller decides whether the
    /// pointer is actually usable (the persisted result may have been
    /// evicted from the CDW) and then reports via
    /// [`QueryDirectory::record_stage`], so `stage_hits` only counts reuse
    /// that really happened.
    pub fn lookup_stage(&self, key: impl Into<DirKey>) -> Option<String> {
        self.lookup_quiet(key.into())
    }

    /// Count one stage-level cache decision (see
    /// [`QueryDirectory::lookup_stage`]).
    pub fn record_stage(&self, hit: bool) {
        let mut stats = self.stats.lock();
        if hit {
            stats.stage_hits += 1;
        } else {
            stats.stage_misses += 1;
        }
    }

    fn lookup_quiet(&self, key: DirKey) -> Option<String> {
        let mut inner = self.inner.lock();
        let hit = inner.entries.get(&key).map(|e| e.query_id.clone());
        if hit.is_some() {
            inner.recency.touch(&key);
        }
        hit
    }

    /// Record a completed query with unknown table dependencies (table
    /// invalidation will drop it conservatively). Re-inserting a known key
    /// refreshes its recency (and its query id).
    pub fn insert(&self, key: impl Into<DirKey>, query_id: &str) {
        self.insert_entry(key.into(), query_id, None)
    }

    /// Record a completed query together with the warehouse tables its
    /// result set was computed from.
    pub fn insert_with_deps(&self, key: impl Into<DirKey>, query_id: &str, deps: Arc<[String]>) {
        self.insert_entry(key.into(), query_id, Some(deps))
    }

    fn insert_entry(&self, key: DirKey, query_id: &str, deps: Option<Arc<[String]>>) {
        let mut inner = self.inner.lock();
        match inner.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let e = o.get_mut();
                e.query_id = query_id.to_string();
                if deps.is_some() {
                    e.deps = deps;
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Entry {
                    query_id: query_id.to_string(),
                    deps,
                });
            }
        }
        inner.recency.insert(key);
        while inner.entries.len() > self.capacity {
            let Some(victim) = inner.recency.evict_oldest() else {
                break;
            };
            inner.entries.remove(&victim);
        }
    }

    /// Attach/replace the table-dependency set of an existing entry.
    pub fn set_deps(&self, key: impl Into<DirKey>, deps: Arc<[String]>) {
        if let Some(e) = self.inner.lock().entries.get_mut(&key.into()) {
            e.deps = Some(deps);
        }
    }

    /// Drop one entry (e.g. its persisted result was evicted from the CDW).
    pub fn invalidate_key(&self, key: impl Into<DirKey>) -> bool {
        self.inner.lock().remove(key.into())
    }

    /// Drop everything (the conservative fallback).
    pub fn invalidate_all(&self) -> usize {
        let mut inner = self.inner.lock();
        let n = inner.entries.len();
        inner.entries.clear();
        inner.recency.clear();
        self.stats.lock().invalidated += n as u64;
        n
    }

    /// Targeted invalidation: drop entries whose results read any of the
    /// given warehouse tables — plus entries with *unknown* dependencies,
    /// which must be dropped conservatively. Table names are compared
    /// case-insensitively.
    pub fn invalidate_tables<S: AsRef<str>>(&self, tables: &[S]) -> usize {
        let needles: Vec<String> = tables
            .iter()
            .map(|t| t.as_ref().to_ascii_lowercase())
            .collect();
        let mut inner = self.inner.lock();
        let victims: Vec<DirKey> = inner
            .entries
            .iter()
            .filter(|(_, e)| match &e.deps {
                None => true,
                Some(deps) => deps.iter().any(|d| needles.iter().any(|n| n == d)),
            })
            .map(|(k, _)| *k)
            .collect();
        for v in &victims {
            inner.remove(*v);
        }
        self.stats.lock().invalidated += victims.len() as u64;
        victims.len()
    }

    /// Run `execute` once per key even under concurrency: the first caller
    /// executes; identical concurrent requests block and share the
    /// resulting query id (collaborative editing, §4).
    pub fn run_coalesced<E>(
        &self,
        key: impl Into<DirKey>,
        execute: impl FnOnce() -> Result<String, E>,
    ) -> Result<(String, bool), E> {
        let key = key.into();
        // Fast path: already in the directory.
        if let Some(qid) = self.lookup(key) {
            return Ok((qid, true));
        }
        let (flight, leader) = {
            let mut in_flight = self.in_flight.lock();
            match in_flight.get(&key) {
                Some(f) => (f.clone(), false),
                None => {
                    let f = Arc::new(InFlight::default());
                    in_flight.insert(key, f.clone());
                    (f, true)
                }
            }
        };
        if leader {
            let outcome = execute();
            match &outcome {
                Ok(qid) => {
                    self.insert(key, qid);
                    *flight.done.lock() = Some(qid.clone());
                }
                Err(_) => {
                    // Leave `done` empty; followers will re-drive.
                    *flight.done.lock() = Some(String::new());
                }
            }
            flight.cv.notify_all();
            self.in_flight.lock().remove(&key);
            outcome.map(|qid| (qid, false))
        } else {
            let mut done = flight.done.lock();
            while done.is_none() {
                flight.cv.wait(&mut done);
            }
            let qid = done.clone().unwrap();
            drop(done);
            if qid.is_empty() {
                // Leader failed: retry as a new leader.
                return self.run_coalesced(key, execute);
            }
            self.stats.lock().coalesced += 1;
            Ok((qid, true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn deps(tables: &[&str]) -> Arc<[String]> {
        tables.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn lookup_insert_evict() {
        let dir = QueryDirectory::new(2);
        assert_eq!(dir.lookup("a"), None);
        dir.insert("a", "q-1");
        dir.insert("b", "q-2");
        dir.insert("c", "q-3"); // evicts "a", the least recently used
        assert_eq!(dir.lookup("a"), None);
        assert_eq!(dir.lookup("c"), Some("q-3".into()));
        let stats = dir.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn lookup_promotes_entry_to_most_recent() {
        let dir = QueryDirectory::new(2);
        dir.insert("a", "q-1");
        dir.insert("b", "q-2");
        // Re-reading "a" promotes it, so the next eviction takes "b".
        assert_eq!(dir.lookup("a"), Some("q-1".into()));
        dir.insert("c", "q-3");
        assert_eq!(dir.lookup("a"), Some("q-1".into()));
        assert_eq!(dir.lookup("b"), None);
        assert_eq!(dir.lookup("c"), Some("q-3".into()));
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let dir = QueryDirectory::new(2);
        dir.insert("a", "q-1");
        dir.insert("b", "q-2");
        dir.insert("a", "q-9"); // refresh id and recency
        dir.insert("c", "q-3"); // evicts "b"
        assert_eq!(dir.lookup("a"), Some("q-9".into()));
        assert_eq!(dir.lookup("b"), None);
    }

    #[test]
    fn eviction_order_survives_many_operations() {
        // Regression for the recency index: interleaved lookups and
        // re-inserts must keep strict LRU order at any size.
        let dir = QueryDirectory::new(64);
        for i in 0..64 {
            dir.insert(format!("k{i}").as_str(), &format!("q-{i}"));
        }
        // Touch the even keys, making the odd keys the LRU half.
        for i in (0..64).step_by(2) {
            assert!(dir.lookup(format!("k{i}").as_str()).is_some());
        }
        // Inserting 32 new keys evicts exactly the 32 odd (untouched) keys.
        for i in 64..96 {
            dir.insert(format!("k{i}").as_str(), &format!("q-{i}"));
        }
        for i in (1..64).step_by(2) {
            assert_eq!(dir.lookup(format!("k{i}").as_str()), None, "odd k{i}");
        }
        for i in (0..64).step_by(2) {
            assert!(dir.lookup(format!("k{i}").as_str()).is_some(), "even k{i}");
        }
    }

    #[test]
    fn table_targeted_invalidation() {
        let dir = QueryDirectory::new(10);
        dir.insert_with_deps("flights-agg", "q-1", deps(&["flights"]));
        dir.insert_with_deps("joined", "q-2", deps(&["flights", "airports"]));
        dir.insert_with_deps("airports-only", "q-3", deps(&["airports"]));
        dir.insert("unknown-deps", "q-4"); // no dep info: dropped conservatively
        assert_eq!(dir.invalidate_tables(&["Flights"]), 3);
        assert_eq!(dir.lookup("airports-only"), Some("q-3".into()));
        assert_eq!(dir.lookup("flights-agg"), None);
        assert_eq!(dir.lookup("joined"), None);
        assert_eq!(dir.lookup("unknown-deps"), None);
        assert_eq!(dir.stats().invalidated, 3);
    }

    #[test]
    fn invalidate_all_and_key() {
        let dir = QueryDirectory::new(10);
        dir.insert("a", "q-1");
        dir.insert("b", "q-2");
        assert!(dir.invalidate_key("a"));
        assert!(!dir.invalidate_key("a"));
        assert_eq!(dir.invalidate_all(), 1);
        assert!(dir.is_empty());
    }

    #[test]
    fn stage_lookups_count_separately() {
        let dir = QueryDirectory::new(10);
        dir.insert(DirKey(7), "q-1");
        // lookup_stage is uncounted; the caller reports the verified
        // outcome (a directory pointer whose result was evicted is a miss).
        assert_eq!(dir.lookup_stage(DirKey(7)), Some("q-1".into()));
        dir.record_stage(true);
        assert_eq!(dir.lookup_stage(DirKey(8)), None);
        dir.record_stage(false);
        let stats = dir.stats();
        assert_eq!(stats.stage_hits, 1);
        assert_eq!(stats.stage_misses, 1);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn coalescing_runs_execute_once() {
        let dir = Arc::new(QueryDirectory::new(10));
        let executions = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let dir = dir.clone();
            let executions = executions.clone();
            handles.push(std::thread::spawn(move || {
                dir.run_coalesced("same-query", || {
                    executions.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    Ok::<_, ()>("q-77".to_string())
                })
                .unwrap()
            }));
        }
        let results: Vec<(String, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(executions.load(Ordering::SeqCst), 1);
        assert!(results.iter().all(|(qid, _)| qid == "q-77"));
        // At least one request was served from cache/coalescing.
        assert!(results.iter().filter(|(_, cached)| *cached).count() >= 7);
    }

    #[test]
    fn failed_leader_retries() {
        let dir = QueryDirectory::new(10);
        let r: Result<(String, bool), &str> = dir.run_coalesced("f", || Err("boom"));
        assert!(r.is_err());
        // A later attempt can succeed.
        let ok = dir
            .run_coalesced("f", || Ok::<_, &str>("q-9".into()))
            .unwrap();
        assert_eq!(ok.0, "q-9");
    }
}
