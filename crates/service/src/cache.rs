//! The app-server **query directory** — the second cache level of §4.
//!
//! "The second level of caching is a directory of recent queries maintained
//! by the Sigma app server. The directory points to available result sets,
//! stored in the CDW by their query-id, which can be re-fetched as
//! requested. It also tracks in-flight query requests, enabling multiple
//! browsers to share results when collaboratively editing a document."
//!
//! Entries hold only `(fingerprint -> query id)` — never warehouse data,
//! honoring the constraint that "user warehouse data is never stored
//! within the Sigma service cloud".

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Statistics exposed for the caching experiments (E4).
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectoryStats {
    pub hits: u64,
    pub misses: u64,
    /// Queries that piggybacked on an identical in-flight request.
    pub coalesced: u64,
}

#[derive(Default)]
struct InFlight {
    done: Mutex<Option<String>>, // query id once complete
    cv: Condvar,
}

/// Directory of recent query fingerprints.
pub struct QueryDirectory {
    /// fingerprint -> warehouse query id (re-fetchable via RESULT_SCAN).
    entries: Mutex<HashMap<String, String>>,
    /// LRU order, least-recent first: `lookup` hits promote to the back,
    /// eviction pops the front.
    order: Mutex<Vec<String>>,
    in_flight: Mutex<HashMap<String, Arc<InFlight>>>,
    stats: Mutex<DirectoryStats>,
    capacity: usize,
}

impl QueryDirectory {
    pub fn new(capacity: usize) -> QueryDirectory {
        QueryDirectory {
            entries: Mutex::new(HashMap::new()),
            order: Mutex::new(Vec::new()),
            in_flight: Mutex::new(HashMap::new()),
            stats: Mutex::new(DirectoryStats::default()),
            capacity: capacity.max(1),
        }
    }

    pub fn stats(&self) -> DirectoryStats {
        *self.stats.lock()
    }

    /// Look up a completed query id for a fingerprint. A hit promotes the
    /// entry to most-recently-used so hot fingerprints survive eviction.
    pub fn lookup(&self, fingerprint: &str) -> Option<String> {
        let hit = self.entries.lock().get(fingerprint).cloned();
        if hit.is_some() {
            let mut order = self.order.lock();
            if let Some(pos) = order.iter().position(|o| o == fingerprint) {
                let fp = order.remove(pos);
                order.push(fp);
            }
        }
        let mut stats = self.stats.lock();
        if hit.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        hit
    }

    /// Record a completed query. Re-inserting a known fingerprint
    /// refreshes its recency (and its query id).
    pub fn insert(&self, fingerprint: &str, query_id: &str) {
        let mut entries = self.entries.lock();
        let mut order = self.order.lock();
        if entries
            .insert(fingerprint.to_string(), query_id.to_string())
            .is_none()
        {
            order.push(fingerprint.to_string());
        } else if let Some(pos) = order.iter().position(|o| o == fingerprint) {
            let fp = order.remove(pos);
            order.push(fp);
        }
        while order.len() > self.capacity {
            let evicted = order.remove(0);
            entries.remove(&evicted);
        }
    }

    /// Drop entries (called when underlying data changes, e.g. after edit
    /// propagation invalidates downstream results).
    pub fn invalidate(&self, predicate: impl Fn(&str) -> bool) -> usize {
        let mut entries = self.entries.lock();
        let mut order = self.order.lock();
        let victims: Vec<String> = entries.keys().filter(|k| predicate(k)).cloned().collect();
        for v in &victims {
            entries.remove(v);
            order.retain(|o| o != v);
        }
        victims.len()
    }

    /// Run `execute` once per fingerprint even under concurrency: the first
    /// caller executes; identical concurrent requests block and share the
    /// resulting query id (collaborative editing, §4).
    pub fn run_coalesced<E>(
        &self,
        fingerprint: &str,
        execute: impl FnOnce() -> Result<String, E>,
    ) -> Result<(String, bool), E> {
        // Fast path: already in the directory.
        if let Some(qid) = self.lookup(fingerprint) {
            return Ok((qid, true));
        }
        let (flight, leader) = {
            let mut in_flight = self.in_flight.lock();
            match in_flight.get(fingerprint) {
                Some(f) => (f.clone(), false),
                None => {
                    let f = Arc::new(InFlight::default());
                    in_flight.insert(fingerprint.to_string(), f.clone());
                    (f, true)
                }
            }
        };
        if leader {
            let outcome = execute();
            match &outcome {
                Ok(qid) => {
                    self.insert(fingerprint, qid);
                    *flight.done.lock() = Some(qid.clone());
                }
                Err(_) => {
                    // Leave `done` empty; followers will re-drive.
                    *flight.done.lock() = Some(String::new());
                }
            }
            flight.cv.notify_all();
            self.in_flight.lock().remove(fingerprint);
            outcome.map(|qid| (qid, false))
        } else {
            let mut done = flight.done.lock();
            while done.is_none() {
                flight.cv.wait(&mut done);
            }
            let qid = done.clone().unwrap();
            drop(done);
            if qid.is_empty() {
                // Leader failed: retry as a new leader.
                return self.run_coalesced(fingerprint, execute);
            }
            self.stats.lock().coalesced += 1;
            Ok((qid, true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lookup_insert_evict() {
        let dir = QueryDirectory::new(2);
        assert_eq!(dir.lookup("a"), None);
        dir.insert("a", "q-1");
        dir.insert("b", "q-2");
        dir.insert("c", "q-3"); // evicts "a", the least recently used
        assert_eq!(dir.lookup("a"), None);
        assert_eq!(dir.lookup("c"), Some("q-3".into()));
        let stats = dir.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn lookup_promotes_entry_to_most_recent() {
        let dir = QueryDirectory::new(2);
        dir.insert("a", "q-1");
        dir.insert("b", "q-2");
        // Re-reading "a" promotes it, so the next eviction takes "b".
        assert_eq!(dir.lookup("a"), Some("q-1".into()));
        dir.insert("c", "q-3");
        assert_eq!(dir.lookup("a"), Some("q-1".into()));
        assert_eq!(dir.lookup("b"), None);
        assert_eq!(dir.lookup("c"), Some("q-3".into()));
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let dir = QueryDirectory::new(2);
        dir.insert("a", "q-1");
        dir.insert("b", "q-2");
        dir.insert("a", "q-9"); // refresh id and recency
        dir.insert("c", "q-3"); // evicts "b"
        assert_eq!(dir.lookup("a"), Some("q-9".into()));
        assert_eq!(dir.lookup("b"), None);
    }

    #[test]
    fn invalidation() {
        let dir = QueryDirectory::new(10);
        dir.insert("doc1:el1", "q-1");
        dir.insert("doc1:el2", "q-2");
        dir.insert("doc2:el1", "q-3");
        assert_eq!(dir.invalidate(|k| k.starts_with("doc1:")), 2);
        assert_eq!(dir.lookup("doc2:el1"), Some("q-3".into()));
        assert_eq!(dir.lookup("doc1:el1"), None);
    }

    #[test]
    fn coalescing_runs_execute_once() {
        let dir = Arc::new(QueryDirectory::new(10));
        let executions = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let dir = dir.clone();
            let executions = executions.clone();
            handles.push(std::thread::spawn(move || {
                dir.run_coalesced("same-query", || {
                    executions.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    Ok::<_, ()>("q-77".to_string())
                })
                .unwrap()
            }));
        }
        let results: Vec<(String, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(executions.load(Ordering::SeqCst), 1);
        assert!(results.iter().all(|(qid, _)| qid == "q-77"));
        // At least one request was served from cache/coalescing.
        assert!(results.iter().filter(|(_, cached)| *cached).count() >= 7);
    }

    #[test]
    fn failed_leader_retries() {
        let dir = QueryDirectory::new(10);
        let r: Result<(String, bool), &str> = dir.run_coalesced("f", || Err("boom"));
        assert!(r.is_err());
        // A later attempt can succeed.
        let ok = dir
            .run_coalesced("f", || Ok::<_, &str>("q-9".into()))
            .unwrap();
        assert_eq!(ok.0, "q-9");
    }
}
