//! The Sigma service (paper §2, Figure 2): the multi-tenant cloud tier
//! between browsers and the customer's CDW.
//!
//! "Access to the customer's data warehouse by the Sigma web application is
//! always mediated by the Sigma service. Interactive data operations
//! expressed by a user are sent to the Sigma service as a JSON-encoding of
//! the Workbook state. The Sigma service performs authentication, access
//! control checks, query input graph resolution, and materialized view
//! substitution. The validated, fully resolved query graph is compiled into
//! a corresponding SQL query. The SQL query is then placed into a workload
//! management queue and subsequently executed in the customer's database."
//!
//! This crate implements that paragraph, plus the second cache level of §4:
//! the app-server *query directory* that maps recent query fingerprints to
//! result sets persisted in the CDW (re-fetched via `RESULT_SCAN`) and
//! de-duplicates in-flight queries between collaborating browsers.

pub mod cache;
pub mod documents;
pub mod error;
pub mod materialize;
pub mod service;
pub mod tenancy;
pub mod workload;

pub use cache::{DirKey, DirectoryStats, QueryDirectory};
pub use error::ServiceError;
pub use service::{QueryOutcome, QueryRequest, ServedFrom, SigmaService};
pub use workload::{AdmissionConfig, AdmissionError, Priority, TenantStats, WorkloadStats};
