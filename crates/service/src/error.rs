//! Service error type.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Bad or expired token.
    Unauthenticated,
    /// Authenticated but not allowed.
    Forbidden(String),
    /// Missing org/user/document/connection.
    NotFound(String),
    /// Workbook model or compilation failure.
    Core(String),
    /// Warehouse failure.
    Warehouse(String),
    /// Invalid request shape.
    BadRequest(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Unauthenticated => write!(f, "unauthenticated"),
            ServiceError::Forbidden(m) => write!(f, "forbidden: {m}"),
            ServiceError::NotFound(m) => write!(f, "not found: {m}"),
            ServiceError::Core(m) => write!(f, "workbook error: {m}"),
            ServiceError::Warehouse(m) => write!(f, "warehouse error: {m}"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<sigma_core::CoreError> for ServiceError {
    fn from(e: sigma_core::CoreError) -> Self {
        ServiceError::Core(e.to_string())
    }
}

impl From<sigma_cdw::CdwError> for ServiceError {
    fn from(e: sigma_cdw::CdwError) -> Self {
        ServiceError::Warehouse(e.to_string())
    }
}
