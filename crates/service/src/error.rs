//! Service error type.

use std::fmt;
use std::time::Duration;

#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Bad or expired token.
    Unauthenticated,
    /// Authenticated but not allowed.
    Forbidden(String),
    /// Missing org/user/document/connection.
    NotFound(String),
    /// Workbook model or compilation failure.
    Core(String),
    /// Warehouse failure.
    Warehouse(String),
    /// Invalid request shape.
    BadRequest(String),
    /// Load shed at admission control: the tenant's queue is full. The
    /// request was rejected immediately; clients should back off for
    /// `retry_after` before resubmitting.
    Overloaded { retry_after: Duration },
    /// The request's deadline expired while waiting for admission.
    DeadlineExceeded { waited: Duration },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Unauthenticated => write!(f, "unauthenticated"),
            ServiceError::Forbidden(m) => write!(f, "forbidden: {m}"),
            ServiceError::NotFound(m) => write!(f, "not found: {m}"),
            ServiceError::Core(m) => write!(f, "workbook error: {m}"),
            ServiceError::Warehouse(m) => write!(f, "warehouse error: {m}"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::Overloaded { retry_after } => {
                write!(f, "overloaded; retry after {retry_after:?}")
            }
            ServiceError::DeadlineExceeded { waited } => {
                write!(f, "deadline exceeded after waiting {waited:?}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<crate::workload::AdmissionError> for ServiceError {
    fn from(e: crate::workload::AdmissionError) -> Self {
        match e {
            crate::workload::AdmissionError::Overloaded { retry_after } => {
                ServiceError::Overloaded { retry_after }
            }
            crate::workload::AdmissionError::DeadlineExceeded { waited } => {
                ServiceError::DeadlineExceeded { waited }
            }
        }
    }
}

impl From<sigma_core::CoreError> for ServiceError {
    fn from(e: sigma_core::CoreError) -> Self {
        ServiceError::Core(e.to_string())
    }
}

impl From<sigma_cdw::CdwError> for ServiceError {
    fn from(e: sigma_cdw::CdwError) -> Self {
        ServiceError::Warehouse(e.to_string())
    }
}
