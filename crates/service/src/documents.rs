//! The workbook document store (paper §2): "Workbook state can be saved
//! and restored as a document. These documents can be named and organized
//! in a file system within Sigma and may be shared or copied. Unnamed
//! Workbook documents are stored as persistent, anonymous 'explorations'
//! which can be easily discarded."
//!
//! Documents are stored as their JSON encoding with a linear version
//! history (the paper's §3.5 mentions viewing "the history of edits").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use sigma_core::Workbook;

use crate::error::ServiceError;
use crate::tenancy::{OrgId, UserId};

pub type DocumentId = u64;

/// Stored document metadata plus versioned JSON payloads.
#[derive(Debug, Clone)]
pub struct DocumentMeta {
    pub id: DocumentId,
    pub org: OrgId,
    pub owner: UserId,
    /// Folder path within the org's file system, e.g. "Sales/Q3".
    pub folder: String,
    /// `None` marks an anonymous exploration.
    pub name: Option<String>,
    pub versions: usize,
}

struct StoredDocument {
    meta: DocumentMeta,
    /// JSON payloads, oldest first.
    versions: Vec<String>,
}

/// In-memory document store.
#[derive(Default)]
pub struct DocumentStore {
    docs: RwLock<HashMap<DocumentId, StoredDocument>>,
    next_id: AtomicU64,
}

impl DocumentStore {
    pub fn new() -> DocumentStore {
        DocumentStore {
            next_id: AtomicU64::new(1),
            ..Default::default()
        }
    }

    /// Save a new document (named) or exploration (unnamed workbook).
    pub fn create(
        &self,
        org: OrgId,
        owner: UserId,
        folder: &str,
        wb: &Workbook,
    ) -> Result<DocumentMeta, ServiceError> {
        let json = wb.to_json().map_err(ServiceError::from)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let meta = DocumentMeta {
            id,
            org,
            owner,
            folder: folder.to_string(),
            name: wb.name.clone(),
            versions: 1,
        };
        self.docs.write().insert(
            id,
            StoredDocument {
                meta: meta.clone(),
                versions: vec![json],
            },
        );
        Ok(meta)
    }

    /// Append a new version.
    pub fn save(&self, id: DocumentId, wb: &Workbook) -> Result<DocumentMeta, ServiceError> {
        let json = wb.to_json().map_err(ServiceError::from)?;
        let mut docs = self.docs.write();
        let doc = docs
            .get_mut(&id)
            .ok_or_else(|| ServiceError::NotFound(format!("document {id}")))?;
        doc.versions.push(json);
        doc.meta.versions = doc.versions.len();
        doc.meta.name = wb.name.clone();
        Ok(doc.meta.clone())
    }

    /// Load the latest (or a specific) version.
    pub fn open(&self, id: DocumentId, version: Option<usize>) -> Result<Workbook, ServiceError> {
        let docs = self.docs.read();
        let doc = docs
            .get(&id)
            .ok_or_else(|| ServiceError::NotFound(format!("document {id}")))?;
        let idx = match version {
            Some(v) => {
                if v == 0 || v > doc.versions.len() {
                    return Err(ServiceError::NotFound(format!(
                        "version {v} of document {id}"
                    )));
                }
                v - 1
            }
            None => doc.versions.len() - 1,
        };
        Workbook::from_json(&doc.versions[idx]).map_err(ServiceError::from)
    }

    pub fn meta(&self, id: DocumentId) -> Option<DocumentMeta> {
        self.docs.read().get(&id).map(|d| d.meta.clone())
    }

    /// List an org's documents, optionally filtered to a folder.
    pub fn list(&self, org: OrgId, folder: Option<&str>) -> Vec<DocumentMeta> {
        let mut out: Vec<DocumentMeta> = self
            .docs
            .read()
            .values()
            .map(|d| d.meta.clone())
            .filter(|m| m.org == org)
            .filter(|m| folder.is_none_or(|f| m.folder == f))
            .collect();
        out.sort_by_key(|m| m.id);
        out
    }

    /// Copy a document into a new one ("may be shared or copied").
    pub fn copy(
        &self,
        id: DocumentId,
        new_owner: UserId,
        new_name: Option<&str>,
    ) -> Result<DocumentMeta, ServiceError> {
        let mut wb = self.open(id, None)?;
        wb.name = new_name.map(str::to_owned);
        let src = self
            .meta(id)
            .ok_or_else(|| ServiceError::NotFound(format!("document {id}")))?;
        self.create(src.org, new_owner, &src.folder, &wb)
    }

    pub fn delete(&self, id: DocumentId) -> Result<(), ServiceError> {
        self.docs
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| ServiceError::NotFound(format!("document {id}")))
    }

    /// Drop anonymous explorations ("easily discarded").
    pub fn discard_explorations(&self, org: OrgId) -> usize {
        let mut docs = self.docs.write();
        let victims: Vec<DocumentId> = docs
            .values()
            .filter(|d| d.meta.org == org && d.meta.name.is_none())
            .map(|d| d.meta.id)
            .collect();
        for v in &victims {
            docs.remove(v);
        }
        victims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wb(name: Option<&str>) -> Workbook {
        Workbook::new(name)
    }

    #[test]
    fn create_save_open_versions() {
        let store = DocumentStore::new();
        let meta = store.create(1, 10, "Sales", &wb(Some("Q3"))).unwrap();
        assert_eq!(meta.versions, 1);
        let mut doc = store.open(meta.id, None).unwrap();
        doc.add_page("Extra");
        let meta2 = store.save(meta.id, &doc).unwrap();
        assert_eq!(meta2.versions, 2);
        // Version 1 lacks the extra page; version 2 has it.
        assert_eq!(store.open(meta.id, Some(1)).unwrap().pages.len(), 1);
        assert_eq!(store.open(meta.id, Some(2)).unwrap().pages.len(), 2);
        assert!(store.open(meta.id, Some(3)).is_err());
    }

    #[test]
    fn listing_and_folders() {
        let store = DocumentStore::new();
        store.create(1, 10, "Sales", &wb(Some("A"))).unwrap();
        store.create(1, 10, "Ops", &wb(Some("B"))).unwrap();
        store.create(2, 20, "Sales", &wb(Some("C"))).unwrap();
        assert_eq!(store.list(1, None).len(), 2);
        assert_eq!(store.list(1, Some("Sales")).len(), 1);
        assert_eq!(store.list(2, None).len(), 1);
    }

    #[test]
    fn copy_documents() {
        let store = DocumentStore::new();
        let meta = store.create(1, 10, "Sales", &wb(Some("A"))).unwrap();
        let copy = store.copy(meta.id, 11, Some("A (copy)")).unwrap();
        assert_ne!(copy.id, meta.id);
        assert_eq!(copy.name.as_deref(), Some("A (copy)"));
        assert_eq!(store.list(1, None).len(), 2);
    }

    #[test]
    fn explorations_discardable() {
        let store = DocumentStore::new();
        store.create(1, 10, "", &wb(None)).unwrap();
        store.create(1, 10, "", &wb(None)).unwrap();
        let named = store.create(1, 10, "", &wb(Some("keep"))).unwrap();
        assert_eq!(store.discard_explorations(1), 2);
        assert!(store.meta(named.id).is_some());
        assert_eq!(store.list(1, None).len(), 1);
    }
}
