//! Element materialization (paper §4): "the result sets of user-selected
//! Workbook elements can be materialized into a warehouse table. The
//! queries for elements that reference the element are automatically
//! re-written by the Workbook compiler to use these tables. The
//! materialization can be configured by the user to refresh on a
//! schedule."
//!
//! A simulated clock drives scheduled refreshes deterministically.

use std::collections::HashMap;

use parking_lot::Mutex;

/// One materialization registration.
#[derive(Debug, Clone)]
pub struct Materialization {
    /// Element name (lower-cased key).
    pub element: String,
    /// Warehouse table holding the result.
    pub table: String,
    /// Refresh period in simulated seconds (None = manual only).
    pub refresh_every: Option<u64>,
    /// Simulated time of the last refresh.
    pub last_refreshed: u64,
    pub refresh_count: u64,
}

/// Registry of materializations with a simulated clock.
#[derive(Default)]
pub struct Materializer {
    entries: Mutex<HashMap<String, Materialization>>,
    clock: Mutex<u64>,
}

impl Materializer {
    pub fn new() -> Materializer {
        Materializer::default()
    }

    pub fn now(&self) -> u64 {
        *self.clock.lock()
    }

    /// Register (or replace) a materialization.
    pub fn register(&self, element: &str, table: &str, refresh_every: Option<u64>) {
        let now = self.now();
        self.entries.lock().insert(
            element.to_ascii_lowercase(),
            Materialization {
                element: element.to_string(),
                table: table.to_string(),
                refresh_every,
                last_refreshed: now,
                refresh_count: 0,
            },
        );
    }

    pub fn unregister(&self, element: &str) -> bool {
        self.entries
            .lock()
            .remove(&element.to_ascii_lowercase())
            .is_some()
    }

    pub fn get(&self, element: &str) -> Option<Materialization> {
        self.entries
            .lock()
            .get(&element.to_ascii_lowercase())
            .cloned()
    }

    /// The element -> table map the compiler substitutes with.
    pub fn substitutions(&self) -> HashMap<String, String> {
        self.entries
            .lock()
            .iter()
            .map(|(k, m)| (k.clone(), m.table.clone()))
            .collect()
    }

    /// Advance the simulated clock and return the elements due for refresh.
    pub fn tick(&self, seconds: u64) -> Vec<Materialization> {
        let now = {
            let mut clock = self.clock.lock();
            *clock += seconds;
            *clock
        };
        let mut due = Vec::new();
        let entries = self.entries.lock();
        for m in entries.values() {
            if let Some(period) = m.refresh_every {
                if now.saturating_sub(m.last_refreshed) >= period {
                    due.push(m.clone());
                }
            }
        }
        due
    }

    /// Record that a refresh completed.
    pub fn mark_refreshed(&self, element: &str) {
        let now = self.now();
        if let Some(m) = self.entries.lock().get_mut(&element.to_ascii_lowercase()) {
            m.last_refreshed = now;
            m.refresh_count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_substitutions() {
        let m = Materializer::new();
        m.register("Flights", "mat_flights", None);
        assert!(m.get("flights").is_some());
        let subs = m.substitutions();
        assert_eq!(subs.get("flights").map(String::as_str), Some("mat_flights"));
        assert!(m.unregister("FLIGHTS"));
        assert!(m.get("flights").is_none());
    }

    #[test]
    fn scheduled_refreshes_fire_on_tick() {
        let m = Materializer::new();
        m.register("A", "mat_a", Some(60));
        m.register("B", "mat_b", None);
        assert!(m.tick(30).is_empty());
        let due = m.tick(40); // t = 70
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].element, "A");
        m.mark_refreshed("A");
        assert!(m.tick(30).is_empty()); // only 30s since refresh at t=70
        let due2 = m.tick(40); // 70s since refresh
        assert_eq!(due2.len(), 1);
        assert_eq!(m.get("A").unwrap().refresh_count, 1);
    }
}
