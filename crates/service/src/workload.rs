//! Workload management (paper §2): "The SQL query is then placed into a
//! workload management queue and subsequently executed in the customer's
//! database." A proxy per warehouse admits at most `max_concurrent`
//! queries; excess requests wait in a priority queue (interactive ahead of
//! background materializations). Experiment E6 sweeps the admission limit.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Request priority classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Scheduled materialization refreshes and uploads.
    Background = 0,
    /// User-facing queries.
    Interactive = 1,
}

/// Aggregate queue statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadStats {
    pub admitted: u64,
    pub queued: u64,
    pub total_wait: Duration,
    pub max_wait: Duration,
}

struct QueueState {
    running: usize,
    /// Waiting tickets: (priority, arrival sequence). Highest priority,
    /// then FIFO.
    waiting: VecDeque<(Priority, u64)>,
    next_ticket: u64,
    stats: WorkloadStats,
}

/// Admission-controlled gateway to one warehouse.
pub struct WorkloadManager {
    max_concurrent: usize,
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl WorkloadManager {
    pub fn new(max_concurrent: usize) -> WorkloadManager {
        WorkloadManager {
            max_concurrent: max_concurrent.max(1),
            state: Mutex::new(QueueState {
                running: 0,
                waiting: VecDeque::new(),
                next_ticket: 0,
                stats: WorkloadStats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    pub fn stats(&self) -> WorkloadStats {
        self.state.lock().stats
    }

    /// Run `work` under admission control; returns (result, queue wait).
    pub fn submit<T>(&self, priority: Priority, work: impl FnOnce() -> T) -> (T, Duration) {
        let arrived = Instant::now();
        let ticket = {
            let mut st = self.state.lock();
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            if st.running < self.max_concurrent && st.waiting.is_empty() {
                st.running += 1;
                st.stats.admitted += 1;
                None
            } else {
                st.stats.queued += 1;
                // Insert by priority (stable within a class).
                let pos = st
                    .waiting
                    .iter()
                    .position(|&(p, _)| p < priority)
                    .unwrap_or(st.waiting.len());
                st.waiting.insert(pos, (priority, ticket));
                Some(ticket)
            }
        };
        if let Some(ticket) = ticket {
            let mut st = self.state.lock();
            loop {
                let at_head = st.waiting.front().is_some_and(|&(_, t)| t == ticket);
                if at_head && st.running < self.max_concurrent {
                    st.waiting.pop_front();
                    st.running += 1;
                    st.stats.admitted += 1;
                    break;
                }
                self.cv.wait(&mut st);
            }
            let wait = arrived.elapsed();
            st.stats.total_wait += wait;
            if wait > st.stats.max_wait {
                st.stats.max_wait = wait;
            }
        }
        let wait = arrived.elapsed();
        // The slot release must survive a panicking `work`: without the
        // guard, a panic unwinding through submit leaves `running`
        // overcounted forever — every later submission sees a phantom
        // occupant and the queue wedges once `max_concurrent` queries
        // have died. The drop guard decrements and wakes waiters on
        // every exit path, normal or unwinding.
        struct SlotGuard<'a>(&'a WorkloadManager);
        impl Drop for SlotGuard<'_> {
            fn drop(&mut self) {
                self.0.state.lock().running -= 1;
                self.0.cv.notify_all();
            }
        }
        let _slot = SlotGuard(self);
        let out = work();
        (out, wait)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admission_limit_enforced() {
        let mgr = Arc::new(WorkloadManager::new(2));
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let mgr = mgr.clone();
            let concurrent = concurrent.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                mgr.submit(Priority::Interactive, || {
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(15));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "admission limit exceeded");
        let stats = mgr.stats();
        assert_eq!(stats.admitted, 8);
        assert!(stats.queued >= 6);
        assert!(stats.max_wait > Duration::ZERO);
    }

    /// A panicking query must release its admission slot. Without the
    /// drop guard, `running` stays incremented after the unwind and the
    /// manager wedges once `max_concurrent` queries have died — every
    /// later submission waits behind phantom occupants.
    #[test]
    fn panicking_work_releases_admission_slot() {
        let mgr = WorkloadManager::new(1);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mgr.submit(Priority::Interactive, || panic!("query failed"));
        }));
        assert!(unwound.is_err());
        // Assert the slot count directly first: if the guard failed, the
        // submit below would hang instead of failing the test.
        assert_eq!(mgr.state.lock().running, 0, "admission slot leaked");
        let (value, _wait) = mgr.submit(Priority::Interactive, || 42);
        assert_eq!(value, 42);
        // Both the panicking and the follow-up submission were admitted.
        assert_eq!(mgr.stats().admitted, 2);
    }

    #[test]
    fn interactive_jumps_background() {
        // One slot busy; a background and an interactive request queue up:
        // interactive must run first.
        let mgr = Arc::new(WorkloadManager::new(1));
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));

        let m1 = mgr.clone();
        let blocker = std::thread::spawn(move || {
            m1.submit(Priority::Interactive, || {
                std::thread::sleep(Duration::from_millis(60));
            })
        });
        std::thread::sleep(Duration::from_millis(10));

        let m2 = mgr.clone();
        let o2 = order.clone();
        let bg = std::thread::spawn(move || {
            m2.submit(Priority::Background, move || o2.lock().push("background"))
        });
        std::thread::sleep(Duration::from_millis(10));
        let m3 = mgr.clone();
        let o3 = order.clone();
        let fg = std::thread::spawn(move || {
            m3.submit(Priority::Interactive, move || o3.lock().push("interactive"))
        });

        blocker.join().unwrap();
        bg.join().unwrap();
        fg.join().unwrap();
        let order = order.lock();
        assert_eq!(order.as_slice(), ["interactive", "background"]);
    }
}
