//! Workload management (paper §2): "The SQL query is then placed into a
//! workload management queue and subsequently executed in the customer's
//! database." A proxy per warehouse admits at most `max_concurrent`
//! queries; excess requests wait in per-tenant queues scheduled by
//! weighted fair queueing. Experiment E6 sweeps the admission limit.
//!
//! The manager is the service's backpressure boundary, so admission is
//! **bounded on every axis**:
//!
//! * **Per-tenant quota** — one org can hold at most
//!   [`AdmissionConfig::tenant_quota`] of the `max_concurrent` slots, so a
//!   tenant with slow queries cannot occupy the whole warehouse and starve
//!   unrelated tenants.
//! * **Weighted fair queueing** — waiting tenants are scheduled by stride
//!   scheduling (each admission advances the tenant's virtual pass by
//!   `STRIDE / weight`; the lowest pass runs next), so long-run admission
//!   shares converge to the configured weights. Interactive requests beat
//!   background requests across all tenants first.
//! * **Bounded queues + shedding** — each tenant may have at most
//!   [`AdmissionConfig::queue_bound`] waiting requests; beyond that,
//!   `submit_for` returns [`AdmissionError::Overloaded`] *immediately* with
//!   a `retry_after` hint derived from observed service times, instead of
//!   queueing without bound.
//! * **Per-request deadlines** — a waiter whose deadline passes abandons
//!   the queue with [`AdmissionError::DeadlineExceeded`] instead of
//!   blocking its caller forever behind a stuck query.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Request priority classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Scheduled materialization refreshes and uploads.
    Background = 0,
    /// User-facing queries.
    Interactive = 1,
}

/// Tenant id used by compatibility callers that predate multi-tenant
/// admission ([`WorkloadManager::submit`]).
pub const DEFAULT_TENANT: u64 = 0;

/// Fixed-point stride unit for weighted fair queueing: a tenant's virtual
/// pass advances by `STRIDE / weight` per admission.
const STRIDE: u64 = 1 << 20;

/// Admission-control policy for one warehouse connection.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Admission limit: queries running concurrently on the warehouse.
    pub max_concurrent: usize,
    /// Slots one tenant may hold at once (≤ `max_concurrent`). Defaults to
    /// `max_concurrent` (no isolation) for drop-in compatibility.
    pub tenant_quota: usize,
    /// Waiting requests allowed per tenant before shedding.
    pub queue_bound: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Execution worker budget: the target size of the engine's shared
    /// worker pool while this policy is in force. Admitted queries draw
    /// their parallel workers from this one pool, so total execution
    /// threads stay at `exec_threads` no matter how many queries
    /// `max_concurrent` lets run — admission × per-query parallelism no
    /// longer multiplies into oversubscription. `0` (the default) leaves
    /// the pool at its current target (the host's parallelism unless
    /// something set it). The pool is process-wide: with several managed
    /// connections in one process, the most recently applied nonzero
    /// budget wins.
    pub exec_threads: usize,
}

impl AdmissionConfig {
    pub fn new(max_concurrent: usize) -> AdmissionConfig {
        let max_concurrent = max_concurrent.max(1);
        AdmissionConfig {
            max_concurrent,
            tenant_quota: max_concurrent,
            queue_bound: 1024,
            default_deadline: None,
            exec_threads: 0,
        }
    }

    fn normalized(mut self) -> AdmissionConfig {
        self.max_concurrent = self.max_concurrent.max(1);
        self.tenant_quota = self.tenant_quota.clamp(1, self.max_concurrent);
        self.queue_bound = self.queue_bound.max(1);
        self
    }
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig::new(8)
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant's queue is full; retry after the hinted backoff. The
    /// request was rejected *immediately* (load shedding), not queued.
    Overloaded { retry_after: Duration },
    /// The request waited out its deadline without being admitted.
    DeadlineExceeded { waited: Duration },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Overloaded { retry_after } => {
                write!(f, "overloaded; retry after {retry_after:?}")
            }
            AdmissionError::DeadlineExceeded { waited } => {
                write!(f, "deadline exceeded after waiting {waited:?}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Aggregate queue statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadStats {
    pub admitted: u64,
    pub queued: u64,
    /// Requests rejected immediately because a tenant queue was full.
    pub shed: u64,
    /// Requests abandoned because their deadline expired while waiting.
    pub expired: u64,
    pub total_wait: Duration,
    pub max_wait: Duration,
    /// High-water mark of total waiting requests: the observable proof
    /// that queues stay bounded under overload.
    pub peak_waiting: usize,
}

/// Per-tenant admission statistics (fairness observables).
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantStats {
    pub admitted: u64,
    pub shed: u64,
    pub expired: u64,
}

#[derive(Default)]
struct TenantState {
    weight: u32,
    /// Virtual pass for stride scheduling; the waiting tenant with the
    /// lowest pass is admitted next.
    pass: u64,
    running: usize,
    /// Waiting tickets, one deque per priority class, FIFO within.
    interactive: VecDeque<u64>,
    background: VecDeque<u64>,
    stats: TenantStats,
}

impl TenantState {
    fn waiting(&self) -> usize {
        self.interactive.len() + self.background.len()
    }
}

struct QueueState {
    running: usize,
    tenants: HashMap<u64, TenantState>,
    /// Tickets granted a slot but not yet claimed by their waiter.
    granted: HashMap<u64, ()>,
    next_ticket: u64,
    /// Global virtual time: the pass of the most recently admitted tenant.
    /// Tenants going from idle to active join at this point so they cannot
    /// bank credit while idle and then starve everyone.
    virtual_time: u64,
    /// EWMA of observed work execution time, feeding `retry_after` hints.
    ewma_service: Duration,
    stats: WorkloadStats,
}

impl QueueState {
    fn total_waiting(&self) -> usize {
        self.tenants.values().map(TenantState::waiting).sum()
    }
}

/// Point the engine's shared worker pool at the policy's execution
/// budget (no-op when `exec_threads` is 0). The manager owns both knobs
/// of warehouse load — how many queries run (`max_concurrent`) and how
/// many threads execute them (`exec_threads`) — so one config draws both
/// from one budget.
fn apply_exec_budget(config: &AdmissionConfig) {
    if config.exec_threads > 0 {
        sigma_cdw::set_worker_pool_target(config.exec_threads);
    }
}

/// Admission-controlled gateway to one warehouse.
pub struct WorkloadManager {
    config: Mutex<AdmissionConfig>,
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl WorkloadManager {
    pub fn new(max_concurrent: usize) -> WorkloadManager {
        WorkloadManager::with_config(AdmissionConfig::new(max_concurrent))
    }

    pub fn with_config(config: AdmissionConfig) -> WorkloadManager {
        apply_exec_budget(&config);
        WorkloadManager {
            config: Mutex::new(config.normalized()),
            state: Mutex::new(QueueState {
                running: 0,
                tenants: HashMap::new(),
                granted: HashMap::new(),
                next_ticket: 0,
                virtual_time: 0,
                ewma_service: Duration::ZERO,
                stats: WorkloadStats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    pub fn config(&self) -> AdmissionConfig {
        *self.config.lock()
    }

    /// Replace the admission policy. Takes effect for subsequent
    /// admission decisions; already-running work is unaffected.
    pub fn set_config(&self, config: AdmissionConfig) {
        apply_exec_budget(&config);
        *self.config.lock() = config.normalized();
        // A raised limit may unblock waiters immediately.
        let mut st = self.state.lock();
        self.dispatch(&mut st);
        drop(st);
        self.cv.notify_all();
    }

    /// Set a tenant's fair-queueing weight (default 1). A tenant with
    /// weight 3 is admitted ~3x as often as a weight-1 tenant under
    /// contention.
    pub fn set_tenant_weight(&self, tenant: u64, weight: u32) {
        let mut st = self.state.lock();
        st.tenants.entry(tenant).or_default().weight = weight.max(1);
    }

    pub fn stats(&self) -> WorkloadStats {
        self.state.lock().stats
    }

    pub fn tenant_stats(&self, tenant: u64) -> TenantStats {
        self.state
            .lock()
            .tenants
            .get(&tenant)
            .map(|t| t.stats)
            .unwrap_or_default()
    }

    /// Compatibility entry point: tenant 0, config-default deadline.
    pub fn submit<T>(
        &self,
        priority: Priority,
        work: impl FnOnce() -> T,
    ) -> Result<(T, Duration), AdmissionError> {
        self.submit_for(DEFAULT_TENANT, priority, None, work)
    }

    /// Run `work` under admission control on behalf of `tenant`; returns
    /// `(result, queue wait)` or an admission rejection. `deadline` bounds
    /// the *queue wait* (it cannot interrupt running work); `None` falls
    /// back to the configured default deadline.
    pub fn submit_for<T>(
        &self,
        tenant: u64,
        priority: Priority,
        deadline: Option<Duration>,
        work: impl FnOnce() -> T,
    ) -> Result<(T, Duration), AdmissionError> {
        let config = self.config();
        let deadline = deadline.or(config.default_deadline);
        let arrived = Instant::now();
        let ticket = {
            let mut st = self.state.lock();
            let full = {
                let t = st.tenants.entry(tenant).or_default();
                t.waiting() >= config.queue_bound
            };
            if full {
                let retry_after = self.retry_after(&st, &config);
                let t = st.tenants.get_mut(&tenant).expect("tenant entry exists");
                t.stats.shed += 1;
                st.stats.shed += 1;
                return Err(AdmissionError::Overloaded { retry_after });
            }
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            let vt = st.virtual_time;
            let t = st.tenants.get_mut(&tenant).expect("tenant entry exists");
            if t.running == 0 && t.waiting() == 0 {
                // Re-activating tenant joins at the current virtual time:
                // idling must not bank scheduling credit.
                t.pass = t.pass.max(vt);
            }
            match priority {
                Priority::Interactive => t.interactive.push_back(ticket),
                Priority::Background => t.background.push_back(ticket),
            }
            let waiting_now = st.total_waiting();
            if waiting_now > st.stats.peak_waiting {
                st.stats.peak_waiting = waiting_now;
            }
            self.dispatch(&mut st);
            if st.granted.remove(&ticket).is_some() {
                None // admitted without waiting
            } else {
                st.stats.queued += 1;
                Some(ticket)
            }
        };
        if let Some(ticket) = ticket {
            let mut st = self.state.lock();
            loop {
                if st.granted.remove(&ticket).is_some() {
                    break;
                }
                let waited = arrived.elapsed();
                let remaining = match deadline {
                    Some(d) if waited >= d => {
                        // Abandon the queue. The grant check above ran
                        // under this same lock, so the ticket is still
                        // waiting and removal cannot race a grant.
                        let t = st.tenants.get_mut(&tenant).expect("tenant entry");
                        t.interactive.retain(|&x| x != ticket);
                        t.background.retain(|&x| x != ticket);
                        t.stats.expired += 1;
                        st.stats.expired += 1;
                        return Err(AdmissionError::DeadlineExceeded { waited });
                    }
                    Some(d) => Some(d - waited),
                    None => None,
                };
                match remaining {
                    Some(r) => {
                        self.cv.wait_for(&mut st, r);
                    }
                    None => self.cv.wait(&mut st),
                }
            }
            let wait = arrived.elapsed();
            st.stats.total_wait += wait;
            if wait > st.stats.max_wait {
                st.stats.max_wait = wait;
            }
        }
        let wait = arrived.elapsed();
        // The slot release must survive a panicking `work`: without the
        // guard, a panic unwinding through submit leaves `running`
        // overcounted forever — every later submission sees a phantom
        // occupant and the queue wedges once `max_concurrent` queries
        // have died. The drop guard decrements, feeds the service-time
        // EWMA, re-dispatches, and wakes waiters on every exit path.
        struct SlotGuard<'a> {
            mgr: &'a WorkloadManager,
            tenant: u64,
            started: Instant,
        }
        impl Drop for SlotGuard<'_> {
            fn drop(&mut self) {
                let elapsed = self.started.elapsed();
                let mut st = self.mgr.state.lock();
                st.running -= 1;
                if let Some(t) = st.tenants.get_mut(&self.tenant) {
                    t.running -= 1;
                }
                st.ewma_service = if st.ewma_service.is_zero() {
                    elapsed
                } else {
                    (st.ewma_service * 3 + elapsed) / 4
                };
                self.mgr.dispatch(&mut st);
                drop(st);
                self.mgr.cv.notify_all();
            }
        }
        let _slot = SlotGuard {
            mgr: self,
            tenant,
            started: Instant::now(),
        };
        let out = work();
        Ok((out, wait))
    }

    /// Grant free slots to waiting tickets: interactive requests first
    /// across all tenants, then background; within a class the eligible
    /// tenant (under its quota) with the lowest virtual pass wins, ties
    /// broken by arrival ticket. Called with the state lock held; callers
    /// notify the condvar after releasing it.
    fn dispatch(&self, st: &mut QueueState) {
        let config = *self.config.lock();
        while st.running < config.max_concurrent {
            let pick = |st: &QueueState, interactive: bool| {
                st.tenants
                    .iter()
                    .filter(|(_, t)| t.running < config.tenant_quota)
                    .filter_map(|(&id, t)| {
                        let q = if interactive {
                            &t.interactive
                        } else {
                            &t.background
                        };
                        q.front().map(|&ticket| (t.pass, ticket, id))
                    })
                    .min()
            };
            let Some((pass, ticket, tenant)) = pick(st, true).or_else(|| pick(st, false)) else {
                break;
            };
            let weight = {
                let t = st.tenants.get_mut(&tenant).expect("picked tenant");
                if t.interactive.front() == Some(&ticket) {
                    t.interactive.pop_front();
                } else {
                    t.background.pop_front();
                }
                t.running += 1;
                t.stats.admitted += 1;
                t.weight.max(1)
            };
            st.virtual_time = pass;
            let t = st.tenants.get_mut(&tenant).expect("picked tenant");
            t.pass = t.pass.saturating_add(STRIDE / weight as u64);
            st.running += 1;
            st.stats.admitted += 1;
            st.granted.insert(ticket, ());
        }
    }

    /// Backoff hint for shed requests: expected drain time of the current
    /// backlog at the observed per-query service rate.
    fn retry_after(&self, st: &QueueState, config: &AdmissionConfig) -> Duration {
        let per_query = if st.ewma_service.is_zero() {
            Duration::from_millis(10)
        } else {
            st.ewma_service
        };
        let backlog = st.total_waiting() + st.running;
        let rounds = backlog.div_ceil(config.max_concurrent).max(1) as u32;
        (per_query * rounds).clamp(Duration::from_millis(1), Duration::from_secs(5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admission_limit_enforced() {
        let mgr = Arc::new(WorkloadManager::new(2));
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let mgr = mgr.clone();
            let concurrent = concurrent.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                mgr.submit(Priority::Interactive, || {
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(15));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
                .unwrap()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "admission limit exceeded");
        let stats = mgr.stats();
        assert_eq!(stats.admitted, 8);
        assert!(stats.queued >= 6);
        assert!(stats.max_wait > Duration::ZERO);
        assert!(stats.peak_waiting >= 1);
    }

    /// A panicking query must release its admission slot. Without the
    /// drop guard, `running` stays incremented after the unwind and the
    /// manager wedges once `max_concurrent` queries have died — every
    /// later submission waits behind phantom occupants.
    #[test]
    fn panicking_work_releases_admission_slot() {
        let mgr = WorkloadManager::new(1);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mgr.submit(Priority::Interactive, || panic!("query failed"))
                .unwrap();
        }));
        assert!(unwound.is_err());
        // Assert the slot count directly first: if the guard failed, the
        // submit below would hang instead of failing the test.
        assert_eq!(mgr.state.lock().running, 0, "admission slot leaked");
        let (value, _wait) = mgr.submit(Priority::Interactive, || 42).unwrap();
        assert_eq!(value, 42);
        // Both the panicking and the follow-up submission were admitted.
        assert_eq!(mgr.stats().admitted, 2);
    }

    #[test]
    fn interactive_jumps_background() {
        // One slot busy; a background and an interactive request queue up:
        // interactive must run first.
        let mgr = Arc::new(WorkloadManager::new(1));
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));

        let m1 = mgr.clone();
        let blocker = std::thread::spawn(move || {
            m1.submit(Priority::Interactive, || {
                std::thread::sleep(Duration::from_millis(60));
            })
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(10));

        let m2 = mgr.clone();
        let o2 = order.clone();
        let bg = std::thread::spawn(move || {
            m2.submit(Priority::Background, move || o2.lock().push("background"))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(10));
        let m3 = mgr.clone();
        let o3 = order.clone();
        let fg = std::thread::spawn(move || {
            m3.submit(Priority::Interactive, move || o3.lock().push("interactive"))
                .unwrap()
        });

        blocker.join().unwrap();
        bg.join().unwrap();
        fg.join().unwrap();
        let order = order.lock();
        assert_eq!(order.as_slice(), ["interactive", "background"]);
    }

    /// The satellite regression: a slow query from one tenant must not
    /// wedge an unrelated tenant. With a per-tenant quota below the
    /// admission limit, tenant B is admitted into the spare slot while
    /// tenant A's slow query runs.
    #[test]
    fn slow_tenant_cannot_block_unrelated_tenant() {
        let mgr = Arc::new(WorkloadManager::with_config(AdmissionConfig {
            max_concurrent: 2,
            tenant_quota: 1,
            queue_bound: 16,
            default_deadline: None,
            exec_threads: 0,
        }));
        let m = mgr.clone();
        let slow = std::thread::spawn(move || {
            m.submit_for(1, Priority::Interactive, None, || {
                std::thread::sleep(Duration::from_millis(400));
            })
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        // Tenant 1 piles more work behind its slow query (these would
        // consume both slots without the quota).
        let mut backlog = Vec::new();
        for _ in 0..4 {
            let m = mgr.clone();
            backlog.push(std::thread::spawn(move || {
                m.submit_for(1, Priority::Interactive, None, || {
                    std::thread::sleep(Duration::from_millis(30));
                })
                .unwrap()
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        let started = Instant::now();
        let (_, wait) = mgr
            .submit_for(2, Priority::Interactive, Some(Duration::from_secs(5)), || 7)
            .expect("tenant 2 admitted into the spare slot");
        assert!(
            started.elapsed() < Duration::from_millis(300),
            "tenant 2 waited {:?} behind tenant 1's slow query",
            started.elapsed()
        );
        assert!(wait < Duration::from_millis(300));
        slow.join().unwrap();
        for h in backlog {
            h.join().unwrap();
        }
    }

    /// A waiter whose deadline passes abandons the queue with a clean
    /// error instead of blocking forever behind a stuck query.
    #[test]
    fn deadline_expires_instead_of_blocking_forever() {
        let mgr = Arc::new(WorkloadManager::new(1));
        let m = mgr.clone();
        let stuck = std::thread::spawn(move || {
            m.submit(Priority::Interactive, || {
                std::thread::sleep(Duration::from_millis(300));
            })
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        let started = Instant::now();
        let err = mgr
            .submit_for(
                1,
                Priority::Interactive,
                Some(Duration::from_millis(50)),
                || 1,
            )
            .unwrap_err();
        let elapsed = started.elapsed();
        assert!(matches!(err, AdmissionError::DeadlineExceeded { .. }));
        assert!(
            elapsed >= Duration::from_millis(45) && elapsed < Duration::from_millis(250),
            "deadline return took {elapsed:?}"
        );
        assert_eq!(mgr.stats().expired, 1);
        // The abandoned ticket must not occupy a slot once the stuck
        // query finishes.
        stuck.join().unwrap();
        let (v, _) = mgr.submit(Priority::Interactive, || 9).unwrap();
        assert_eq!(v, 9);
    }

    /// Beyond `queue_bound` waiting requests, a tenant is shed immediately
    /// with a retry hint instead of queueing without bound.
    #[test]
    fn full_queue_sheds_immediately() {
        let mgr = Arc::new(WorkloadManager::with_config(AdmissionConfig {
            max_concurrent: 1,
            tenant_quota: 1,
            queue_bound: 1,
            default_deadline: None,
            exec_threads: 0,
        }));
        let m = mgr.clone();
        let blocker = std::thread::spawn(move || {
            m.submit_for(1, Priority::Interactive, None, || {
                std::thread::sleep(Duration::from_millis(150));
            })
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        // One waiter fits the bound...
        let m = mgr.clone();
        let waiter =
            std::thread::spawn(move || m.submit_for(1, Priority::Interactive, None, || 1).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        // ...the next is shed without blocking.
        let started = Instant::now();
        let err = mgr
            .submit_for(1, Priority::Interactive, None, || 2)
            .unwrap_err();
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "shedding must be immediate, took {:?}",
            started.elapsed()
        );
        let AdmissionError::Overloaded { retry_after } = err else {
            panic!("expected Overloaded, got {err:?}");
        };
        assert!(retry_after >= Duration::from_millis(1));
        assert_eq!(mgr.stats().shed, 1);
        assert_eq!(mgr.tenant_stats(1).shed, 1);
        blocker.join().unwrap();
        waiter.join().unwrap();
        assert_eq!(mgr.stats().peak_waiting, 1, "queue stayed bounded");
    }

    /// Stride scheduling: under contention a weight-3 tenant is admitted
    /// ~3x as often as a weight-1 tenant.
    #[test]
    fn weighted_fair_queueing_shares() {
        let mgr = Arc::new(WorkloadManager::with_config(AdmissionConfig {
            max_concurrent: 1,
            tenant_quota: 1,
            queue_bound: 64,
            default_deadline: None,
            exec_threads: 0,
        }));
        mgr.set_tenant_weight(1, 3);
        mgr.set_tenant_weight(2, 1);
        // Occupy the slot so both tenants' backlogs queue fully before
        // any admission decisions happen.
        let m = mgr.clone();
        let blocker = std::thread::spawn(move || {
            m.submit_for(9, Priority::Interactive, None, || {
                std::thread::sleep(Duration::from_millis(120));
            })
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        let order = Arc::new(Mutex::new(Vec::<u64>::new()));
        let mut handles = Vec::new();
        for tenant in [1u64, 2] {
            for _ in 0..8 {
                let m = mgr.clone();
                let order = order.clone();
                handles.push(std::thread::spawn(move || {
                    m.submit_for(tenant, Priority::Interactive, None, move || {
                        order.lock().push(tenant);
                        std::thread::sleep(Duration::from_millis(2));
                    })
                    .unwrap()
                }));
            }
            // Let tenant 1's waiters enqueue first so the test is not
            // sensitive to spawn interleaving for the *first* admissions.
            std::thread::sleep(Duration::from_millis(30));
        }
        blocker.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        let order: Vec<u64> = order.lock().clone();
        let first8 = &order[..8];
        let t1 = first8.iter().filter(|&&t| t == 1).count();
        assert!(
            (5..=7).contains(&t1),
            "weight-3 tenant got {t1}/8 of the first admissions: {order:?}"
        );
        assert_eq!(mgr.tenant_stats(1).admitted, 8);
        assert_eq!(mgr.tenant_stats(2).admitted, 8);
    }

    /// A raised admission limit releases waiting tickets immediately.
    #[test]
    fn reconfigure_unblocks_waiters() {
        let mgr = Arc::new(WorkloadManager::new(1));
        let m = mgr.clone();
        let blocker = std::thread::spawn(move || {
            m.submit(Priority::Interactive, || {
                std::thread::sleep(Duration::from_millis(200));
            })
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        let m = mgr.clone();
        let waiter = std::thread::spawn(move || {
            let started = Instant::now();
            m.submit(Priority::Interactive, || ()).unwrap();
            started.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        let mut cfg = mgr.config();
        cfg.max_concurrent = 2;
        cfg.tenant_quota = 2;
        mgr.set_config(cfg);
        let waited = waiter.join().unwrap();
        assert!(
            waited < Duration::from_millis(150),
            "waiter should be released by the config change, waited {waited:?}"
        );
        blocker.join().unwrap();
    }
}
