//! Multi-tenant accounts: orgs, users, tokens, and access control.
//!
//! "Sigma customers configure the service with access to a CDW they
//! control" (§2). The paper leans on the CDW's compliance properties; the
//! service's own job is authentication and access-control checks, modeled
//! here as org-scoped users with roles and per-document grants.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::error::ServiceError;

pub type OrgId = u64;
pub type UserId = u64;

/// Role within an org.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Full control, including connection management.
    Admin,
    /// Can create and edit workbooks.
    Creator,
    /// Read-only access to shared documents.
    Viewer,
}

#[derive(Debug, Clone)]
pub struct User {
    pub id: UserId,
    pub org: OrgId,
    pub name: String,
    pub role: Role,
}

/// Document sharing level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Access {
    View,
    Edit,
}

/// The account directory.
#[derive(Default)]
pub struct Tenancy {
    orgs: RwLock<HashMap<OrgId, String>>,
    users: RwLock<HashMap<UserId, User>>,
    tokens: RwLock<HashMap<String, UserId>>,
    next_id: AtomicU64,
}

impl Tenancy {
    pub fn new() -> Tenancy {
        Tenancy {
            next_id: AtomicU64::new(1),
            ..Default::default()
        }
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub fn create_org(&self, name: &str) -> OrgId {
        let id = self.fresh_id();
        self.orgs.write().insert(id, name.to_string());
        id
    }

    pub fn create_user(&self, org: OrgId, name: &str, role: Role) -> Result<UserId, ServiceError> {
        if !self.orgs.read().contains_key(&org) {
            return Err(ServiceError::NotFound(format!("org {org}")));
        }
        let id = self.fresh_id();
        self.users.write().insert(
            id,
            User {
                id,
                org,
                name: name.to_string(),
                role,
            },
        );
        Ok(id)
    }

    /// Issue a bearer token for a user.
    pub fn issue_token(&self, user: UserId) -> Result<String, ServiceError> {
        if !self.users.read().contains_key(&user) {
            return Err(ServiceError::NotFound(format!("user {user}")));
        }
        let token = format!("tok-{}-{}", user, self.fresh_id());
        self.tokens.write().insert(token.clone(), user);
        Ok(token)
    }

    pub fn revoke_token(&self, token: &str) {
        self.tokens.write().remove(token);
    }

    /// Resolve a token to its user.
    pub fn authenticate(&self, token: &str) -> Result<User, ServiceError> {
        let users = self.users.read();
        self.tokens
            .read()
            .get(token)
            .and_then(|id| users.get(id).cloned())
            .ok_or(ServiceError::Unauthenticated)
    }

    pub fn user(&self, id: UserId) -> Option<User> {
        self.users.read().get(&id).cloned()
    }
}

/// Per-document grants. The owner implicitly has `Edit`.
#[derive(Default)]
pub struct Grants {
    /// (document id, user id) -> access.
    by_user: RwLock<HashMap<(u64, UserId), Access>>,
    /// (document id, org id) -> access granted to the whole org.
    by_org: RwLock<HashMap<(u64, OrgId), Access>>,
}

impl Grants {
    pub fn new() -> Grants {
        Grants::default()
    }

    pub fn grant_user(&self, doc: u64, user: UserId, access: Access) {
        self.by_user.write().insert((doc, user), access);
    }

    pub fn grant_org(&self, doc: u64, org: OrgId, access: Access) {
        self.by_org.write().insert((doc, org), access);
    }

    pub fn revoke_user(&self, doc: u64, user: UserId) {
        self.by_user.write().remove(&(doc, user));
    }

    /// Effective access for a user (max of direct and org-wide grants).
    pub fn access(&self, doc: u64, user: &User) -> Option<Access> {
        let direct = self.by_user.read().get(&(doc, user.id)).copied();
        let org = self.by_org.read().get(&(doc, user.org)).copied();
        match (direct, org) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_lifecycle() {
        let t = Tenancy::new();
        let org = t.create_org("acme");
        let user = t.create_user(org, "ada", Role::Creator).unwrap();
        let token = t.issue_token(user).unwrap();
        assert_eq!(t.authenticate(&token).unwrap().name, "ada");
        t.revoke_token(&token);
        assert!(matches!(
            t.authenticate(&token),
            Err(ServiceError::Unauthenticated)
        ));
        assert!(t.create_user(999, "ghost", Role::Viewer).is_err());
    }

    #[test]
    fn grants_max_of_user_and_org() {
        let t = Tenancy::new();
        let org = t.create_org("acme");
        let user_id = t.create_user(org, "ada", Role::Viewer).unwrap();
        let user = t.user(user_id).unwrap();
        let g = Grants::new();
        assert_eq!(g.access(1, &user), None);
        g.grant_org(1, org, Access::View);
        assert_eq!(g.access(1, &user), Some(Access::View));
        g.grant_user(1, user_id, Access::Edit);
        assert_eq!(g.access(1, &user), Some(Access::Edit));
        g.revoke_user(1, user_id);
        assert_eq!(g.access(1, &user), Some(Access::View));
    }
}
