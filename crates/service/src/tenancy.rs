//! Multi-tenant accounts: orgs, users, tokens, and access control.
//!
//! "Sigma customers configure the service with access to a CDW they
//! control" (§2). The paper leans on the CDW's compliance properties; the
//! service's own job is authentication and access-control checks, modeled
//! here as org-scoped users with roles and per-document grants.
//!
//! All account state lives under **one** lock, so every operation is
//! linearizable: once `revoke_token` returns, no `authenticate` that
//! starts afterwards can succeed with that token, and a token issued for
//! a just-created user authenticates immediately. (The earlier design
//! kept users and tokens under separate locks, which let an authenticate
//! interleave between a revoke and a re-issue and observe a half-applied
//! directory.) The server tier re-authenticates the session token on
//! *every* request, so revocation also takes effect immediately for
//! sessions that are already connected.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::error::ServiceError;

pub type OrgId = u64;
pub type UserId = u64;

/// Role within an org.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Full control, including connection management.
    Admin,
    /// Can create and edit workbooks.
    Creator,
    /// Read-only access to shared documents.
    Viewer,
}

#[derive(Debug, Clone)]
pub struct User {
    pub id: UserId,
    pub org: OrgId,
    pub name: String,
    pub role: Role,
}

/// Document sharing level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Access {
    View,
    Edit,
}

/// The whole account directory behind one lock (see module docs for why
/// a single lock: issue/revoke/authenticate must be linearizable).
#[derive(Default)]
struct AuthState {
    orgs: HashMap<OrgId, String>,
    users: HashMap<UserId, User>,
    tokens: HashMap<String, UserId>,
    next_id: u64,
}

/// The account directory.
#[derive(Default)]
pub struct Tenancy {
    state: RwLock<AuthState>,
}

impl Tenancy {
    pub fn new() -> Tenancy {
        Tenancy {
            state: RwLock::new(AuthState {
                next_id: 1,
                ..Default::default()
            }),
        }
    }

    pub fn create_org(&self, name: &str) -> OrgId {
        let mut st = self.state.write();
        let id = st.next_id;
        st.next_id += 1;
        st.orgs.insert(id, name.to_string());
        id
    }

    pub fn create_user(&self, org: OrgId, name: &str, role: Role) -> Result<UserId, ServiceError> {
        let mut st = self.state.write();
        if !st.orgs.contains_key(&org) {
            return Err(ServiceError::NotFound(format!("org {org}")));
        }
        let id = st.next_id;
        st.next_id += 1;
        st.users.insert(
            id,
            User {
                id,
                org,
                name: name.to_string(),
                role,
            },
        );
        Ok(id)
    }

    /// Issue a bearer token for a user. The user-exists check and the
    /// token insert happen under one write lock, so a token returned by
    /// this method authenticates immediately on any thread.
    pub fn issue_token(&self, user: UserId) -> Result<String, ServiceError> {
        let mut st = self.state.write();
        if !st.users.contains_key(&user) {
            return Err(ServiceError::NotFound(format!("user {user}")));
        }
        let serial = st.next_id;
        st.next_id += 1;
        let token = format!("tok-{user}-{serial}");
        st.tokens.insert(token.clone(), user);
        Ok(token)
    }

    /// Revoke a token. Returns whether it was live. Takes effect
    /// immediately: any `authenticate` call that starts after this
    /// returns fails, including requests on already-open server sessions
    /// (the server re-authenticates per request rather than caching the
    /// resolved user at session open).
    pub fn revoke_token(&self, token: &str) -> bool {
        self.state.write().tokens.remove(token).is_some()
    }

    /// Revoke every token issued to a user (e.g. on deactivation).
    pub fn revoke_user_tokens(&self, user: UserId) -> usize {
        let mut st = self.state.write();
        let before = st.tokens.len();
        st.tokens.retain(|_, &mut u| u != user);
        before - st.tokens.len()
    }

    /// Resolve a token to its user. One read lock covers the token and
    /// user lookups, so the result reflects a single consistent snapshot
    /// of the directory.
    pub fn authenticate(&self, token: &str) -> Result<User, ServiceError> {
        let st = self.state.read();
        st.tokens
            .get(token)
            .and_then(|id| st.users.get(id).cloned())
            .ok_or(ServiceError::Unauthenticated)
    }

    pub fn user(&self, id: UserId) -> Option<User> {
        self.state.read().users.get(&id).cloned()
    }
}

/// Per-document grants. The owner implicitly has `Edit`.
#[derive(Default)]
pub struct Grants {
    /// (document id, user id) -> access.
    by_user: RwLock<HashMap<(u64, UserId), Access>>,
    /// (document id, org id) -> access granted to the whole org.
    by_org: RwLock<HashMap<(u64, OrgId), Access>>,
}

impl Grants {
    pub fn new() -> Grants {
        Grants::default()
    }

    pub fn grant_user(&self, doc: u64, user: UserId, access: Access) {
        self.by_user.write().insert((doc, user), access);
    }

    pub fn grant_org(&self, doc: u64, org: OrgId, access: Access) {
        self.by_org.write().insert((doc, org), access);
    }

    pub fn revoke_user(&self, doc: u64, user: UserId) {
        self.by_user.write().remove(&(doc, user));
    }

    pub fn revoke_org(&self, doc: u64, org: OrgId) {
        self.by_org.write().remove(&(doc, org));
    }

    /// Effective access for a user: **most specific wins**. A direct user
    /// grant overrides the org-wide grant in both directions — an admin
    /// who restricts one user to `View` on a document shared org-wide at
    /// `Edit` really restricts them, and a user granted `Edit` keeps it
    /// even if the org at large only has `View`. Only when the user has
    /// no direct grant does the org grant apply.
    pub fn access(&self, doc: u64, user: &User) -> Option<Access> {
        let direct = self.by_user.read().get(&(doc, user.id)).copied();
        let org = self.by_org.read().get(&(doc, user.org)).copied();
        direct.or(org)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn token_lifecycle() {
        let t = Tenancy::new();
        let org = t.create_org("acme");
        let user = t.create_user(org, "ada", Role::Creator).unwrap();
        let token = t.issue_token(user).unwrap();
        assert_eq!(t.authenticate(&token).unwrap().name, "ada");
        assert!(t.revoke_token(&token));
        assert!(!t.revoke_token(&token), "second revoke is a no-op");
        assert!(matches!(
            t.authenticate(&token),
            Err(ServiceError::Unauthenticated)
        ));
        assert!(t.create_user(999, "ghost", Role::Viewer).is_err());
    }

    #[test]
    fn revoke_user_tokens_drops_all_sessions() {
        let t = Tenancy::new();
        let org = t.create_org("acme");
        let user = t.create_user(org, "ada", Role::Creator).unwrap();
        let t1 = t.issue_token(user).unwrap();
        let t2 = t.issue_token(user).unwrap();
        let other = t.create_user(org, "bob", Role::Viewer).unwrap();
        let keep = t.issue_token(other).unwrap();
        assert_eq!(t.revoke_user_tokens(user), 2);
        assert!(t.authenticate(&t1).is_err());
        assert!(t.authenticate(&t2).is_err());
        assert!(t.authenticate(&keep).is_ok());
    }

    /// Concurrent issue/revoke/authenticate hammer. Invariants checked
    /// from inside the race:
    ///
    /// * a token freshly issued by a thread authenticates immediately on
    ///   that thread (issue→authenticate is linearizable);
    /// * once `revoke_token` returns on a thread, authenticate on that
    ///   thread fails (revocation is immediate);
    /// * foreign churn never panics, deadlocks, or corrupts the
    ///   directory (final state checked after the join).
    #[test]
    fn concurrent_issue_revoke_authenticate_hammer() {
        let t = Arc::new(Tenancy::new());
        let org = t.create_org("acme");
        let users: Vec<UserId> = (0..4)
            .map(|i| t.create_user(org, &format!("u{i}"), Role::Creator).unwrap())
            .collect();
        let stable = t.issue_token(users[0]).unwrap();
        std::thread::scope(|scope| {
            for (i, &user) in users.iter().enumerate() {
                let t = t.clone();
                let stable = stable.clone();
                scope.spawn(move || {
                    for round in 0..200 {
                        let tok = t.issue_token(user).expect("user exists");
                        let authed = t.authenticate(&tok).expect("fresh token authenticates");
                        assert_eq!(authed.id, user);
                        assert!(t.revoke_token(&tok), "we issued it, nobody else revokes it");
                        assert!(
                            t.authenticate(&tok).is_err(),
                            "revocation must be immediate"
                        );
                        // Cross-thread churn: authenticate a token another
                        // thread may be revoking right now; either result
                        // is legal, panicking/deadlocking is not.
                        if round % 3 == i {
                            let _ = t.authenticate(&stable);
                        }
                    }
                });
            }
        });
        // The long-lived token survived every round of foreign churn.
        assert_eq!(t.authenticate(&stable).unwrap().id, users[0]);
    }

    /// Most-specific-wins, pinned over every user×org grant combination
    /// (None / View / Edit on each axis).
    #[test]
    fn grants_most_specific_wins_all_combinations() {
        let t = Tenancy::new();
        let org = t.create_org("acme");
        let user_id = t.create_user(org, "ada", Role::Viewer).unwrap();
        let user = t.user(user_id).unwrap();
        let combos: &[(Option<Access>, Option<Access>, Option<Access>)] = &[
            // (user grant, org grant, expected effective access)
            (None, None, None),
            (None, Some(Access::View), Some(Access::View)),
            (None, Some(Access::Edit), Some(Access::Edit)),
            (Some(Access::View), None, Some(Access::View)),
            // The pinned rule: a direct user grant overrides the org
            // grant even when the org grant is broader...
            (Some(Access::View), Some(Access::Edit), Some(Access::View)),
            // ...and also when it is narrower.
            (Some(Access::Edit), Some(Access::View), Some(Access::Edit)),
            (Some(Access::View), Some(Access::View), Some(Access::View)),
            (Some(Access::Edit), Some(Access::Edit), Some(Access::Edit)),
            (Some(Access::Edit), None, Some(Access::Edit)),
        ];
        for (i, &(user_grant, org_grant, expected)) in combos.iter().enumerate() {
            let doc = i as u64 + 1;
            let g = Grants::new();
            if let Some(a) = user_grant {
                g.grant_user(doc, user_id, a);
            }
            if let Some(a) = org_grant {
                g.grant_org(doc, org, a);
            }
            assert_eq!(
                g.access(doc, &user),
                expected,
                "user={user_grant:?} org={org_grant:?}"
            );
        }
    }

    #[test]
    fn revoking_user_grant_falls_back_to_org() {
        let t = Tenancy::new();
        let org = t.create_org("acme");
        let user_id = t.create_user(org, "ada", Role::Viewer).unwrap();
        let user = t.user(user_id).unwrap();
        let g = Grants::new();
        assert_eq!(g.access(1, &user), None);
        g.grant_org(1, org, Access::Edit);
        g.grant_user(1, user_id, Access::View);
        // Restricted below the org-wide level while the user grant stands…
        assert_eq!(g.access(1, &user), Some(Access::View));
        // …and back to the org default once it is revoked.
        g.revoke_user(1, user_id);
        assert_eq!(g.access(1, &user), Some(Access::Edit));
        g.revoke_org(1, org);
        assert_eq!(g.access(1, &user), None);
    }
}
