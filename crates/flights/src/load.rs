//! Loading the workload into a warehouse.

use sigma_cdw::{CdwError, Warehouse};

use crate::airports::airports_batch;
use crate::gen::{generate_flights, FlightsConfig};

/// Generate and load the flights fact table as `flights`.
/// Returns the number of rows loaded.
pub fn load_flights(wh: &Warehouse, config: &FlightsConfig) -> Result<usize, CdwError> {
    let batch = generate_flights(config);
    let rows = batch.num_rows();
    wh.load_table("flights", batch)?;
    Ok(rows)
}

/// Load the clean airports dimension as `airports`.
pub fn load_airports(wh: &Warehouse) -> Result<usize, CdwError> {
    let batch = airports_batch();
    let rows = batch.num_rows();
    wh.load_table("airports", batch)?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_value::Value;

    #[test]
    fn loads_are_queryable() {
        let wh = Warehouse::default();
        let n = load_flights(&wh, &FlightsConfig::with_rows(1_000)).unwrap();
        assert_eq!(n, 1_000);
        load_airports(&wh).unwrap();
        let r = wh
            .execute_sql(
                "SELECT COUNT(*) AS n FROM flights JOIN airports ON flights.origin = airports.code",
            )
            .unwrap();
        let Value::Int(joined) = r.batch.value(0, 0) else {
            panic!()
        };
        assert_eq!(joined, 1_000); // every origin matches the dimension
    }

    #[test]
    fn cancellation_rate_rises_with_wear() {
        // The Scenario 2 signal: flights later in a service cycle cancel
        // more often. Bucket by cumulative air time since the last long
        // gap and check the rate is increasing overall.
        let wh = Warehouse::default();
        load_flights(&wh, &FlightsConfig::with_rows(20_000)).unwrap();
        let sql = "WITH ordered AS (
             SELECT tail_number, flight_date, air_time, cancelled,
                    DATEDIFF('day', LAG(flight_date) OVER (PARTITION BY tail_number ORDER BY flight_date), flight_date) AS gap
             FROM flights
           ), marked AS (
             SELECT *, CASE WHEN gap IS NULL OR gap > 30 THEN flight_date END AS service_start
             FROM ordered
           ), sessions AS (
             SELECT *, LAST_VALUE(service_start) IGNORE NULLS OVER (PARTITION BY tail_number ORDER BY flight_date ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS session_id
             FROM marked
           ), wear AS (
             SELECT cancelled,
                    SUM(air_time) OVER (PARTITION BY tail_number, session_id ORDER BY flight_date ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) / 60.0 AS hours
             FROM sessions
           )
           SELECT FLOOR(hours / 20.0) AS bucket, AVG(CASE WHEN cancelled THEN 1.0 ELSE 0.0 END) AS rate, COUNT(*) AS n
           FROM wear GROUP BY FLOOR(hours / 20.0) ORDER BY bucket LIMIT 5";
        let r = wh.execute_sql(sql).unwrap();
        assert!(r.batch.num_rows() >= 3, "expected several wear buckets");
        let first = r.batch.value(0, 1).as_f64().unwrap();
        let last = r.batch.value(r.batch.num_rows() - 1, 1).as_f64().unwrap();
        assert!(
            last > first,
            "cancellation rate should rise with wear: first={first} last={last}"
        );
    }
}
