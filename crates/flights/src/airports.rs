//! The airports dimension: the "plausible dataset" Scenario 3 finds on the
//! web and pastes into an editable table — plus a deliberately dirty
//! variant to reproduce the demo's data-cleaning step.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sigma_value::{Batch, Column, DataType, Field, Schema};

/// One airport row.
pub struct Airport {
    pub code: &'static str,
    pub city: &'static str,
    pub state: &'static str,
    pub elevation_ft: i64,
}

/// A realistic set of large US airports.
pub static AIRPORTS: &[Airport] = &[
    Airport {
        code: "ATL",
        city: "Atlanta",
        state: "GA",
        elevation_ft: 1026,
    },
    Airport {
        code: "LAX",
        city: "Los Angeles",
        state: "CA",
        elevation_ft: 128,
    },
    Airport {
        code: "ORD",
        city: "Chicago",
        state: "IL",
        elevation_ft: 672,
    },
    Airport {
        code: "DFW",
        city: "Dallas-Fort Worth",
        state: "TX",
        elevation_ft: 607,
    },
    Airport {
        code: "DEN",
        city: "Denver",
        state: "CO",
        elevation_ft: 5431,
    },
    Airport {
        code: "JFK",
        city: "New York",
        state: "NY",
        elevation_ft: 13,
    },
    Airport {
        code: "SFO",
        city: "San Francisco",
        state: "CA",
        elevation_ft: 13,
    },
    Airport {
        code: "SEA",
        city: "Seattle",
        state: "WA",
        elevation_ft: 433,
    },
    Airport {
        code: "LAS",
        city: "Las Vegas",
        state: "NV",
        elevation_ft: 2181,
    },
    Airport {
        code: "MCO",
        city: "Orlando",
        state: "FL",
        elevation_ft: 96,
    },
    Airport {
        code: "EWR",
        city: "Newark",
        state: "NJ",
        elevation_ft: 18,
    },
    Airport {
        code: "CLT",
        city: "Charlotte",
        state: "NC",
        elevation_ft: 748,
    },
    Airport {
        code: "PHX",
        city: "Phoenix",
        state: "AZ",
        elevation_ft: 1135,
    },
    Airport {
        code: "IAH",
        city: "Houston",
        state: "TX",
        elevation_ft: 97,
    },
    Airport {
        code: "MIA",
        city: "Miami",
        state: "FL",
        elevation_ft: 8,
    },
    Airport {
        code: "BOS",
        city: "Boston",
        state: "MA",
        elevation_ft: 20,
    },
    Airport {
        code: "MSP",
        city: "Minneapolis",
        state: "MN",
        elevation_ft: 841,
    },
    Airport {
        code: "DTW",
        city: "Detroit",
        state: "MI",
        elevation_ft: 645,
    },
    Airport {
        code: "FLL",
        city: "Fort Lauderdale",
        state: "FL",
        elevation_ft: 9,
    },
    Airport {
        code: "PHL",
        city: "Philadelphia",
        state: "PA",
        elevation_ft: 36,
    },
    Airport {
        code: "SLC",
        city: "Salt Lake City",
        state: "UT",
        elevation_ft: 4227,
    },
    Airport {
        code: "BWI",
        city: "Baltimore",
        state: "MD",
        elevation_ft: 146,
    },
    Airport {
        code: "DCA",
        city: "Washington",
        state: "DC",
        elevation_ft: 15,
    },
    Airport {
        code: "SAN",
        city: "San Diego",
        state: "CA",
        elevation_ft: 17,
    },
    Airport {
        code: "TPA",
        city: "Tampa",
        state: "FL",
        elevation_ft: 26,
    },
    Airport {
        code: "PDX",
        city: "Portland",
        state: "OR",
        elevation_ft: 31,
    },
    Airport {
        code: "STL",
        city: "St. Louis",
        state: "MO",
        elevation_ft: 618,
    },
    Airport {
        code: "HNL",
        city: "Honolulu",
        state: "HI",
        elevation_ft: 13,
    },
    Airport {
        code: "AUS",
        city: "Austin",
        state: "TX",
        elevation_ft: 542,
    },
    Airport {
        code: "MSY",
        city: "New Orleans",
        state: "LA",
        elevation_ft: 4,
    },
];

/// The clean dimension as a batch.
pub fn airports_batch() -> Batch {
    let schema = Arc::new(Schema::new(vec![
        Field::new("code", DataType::Text),
        Field::new("city", DataType::Text),
        Field::new("state", DataType::Text),
        Field::new("elevation_ft", DataType::Int),
    ]));
    Batch::new(
        schema,
        vec![
            Column::from_texts(AIRPORTS.iter().map(|a| a.code.to_string()).collect()),
            Column::from_texts(AIRPORTS.iter().map(|a| a.city.to_string()).collect()),
            Column::from_texts(AIRPORTS.iter().map(|a| a.state.to_string()).collect()),
            Column::from_ints(AIRPORTS.iter().map(|a| a.elevation_ft).collect()),
        ],
    )
    .expect("static data is valid")
}

/// The "web-found" CSV with deliberate dirt (Scenario 3): lower-cased
/// codes, blank cells, and non-numeric elevations that users then fix by
/// direct editing.
pub fn dirty_airports_csv(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::from("code,city,state,elevation_ft\n");
    for a in AIRPORTS {
        let code = if rng.random::<f64>() < 0.1 {
            a.code.to_lowercase()
        } else {
            a.code.to_string()
        };
        let city = if rng.random::<f64>() < 0.07 {
            String::new()
        } else {
            a.city.to_string()
        };
        let elevation = if rng.random::<f64>() < 0.08 {
            format!("{} ft", a.elevation_ft) // dirty: unit suffix
        } else {
            a.elevation_ft.to_string()
        };
        out.push_str(&format!("{code},{city},{},{elevation}\n", a.state));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_batch_shape() {
        let b = airports_batch();
        assert_eq!(b.num_rows(), AIRPORTS.len());
        assert_eq!(b.num_columns(), 4);
        assert_eq!(
            b.column_by_name("code").unwrap().distinct_count(),
            AIRPORTS.len()
        );
    }

    #[test]
    fn dirty_csv_parses_with_nulls() {
        let csv = dirty_airports_csv(42);
        let parsed = sigma_value::csv::read_csv(&csv, &Default::default()).unwrap();
        assert_eq!(parsed.num_rows(), AIRPORTS.len());
        // The dirt shows up as NULL elevations (unit suffixes fail the Int
        // parse) and/or blank cities.
        let dirty_cells = parsed.column_by_name("elevation_ft").unwrap().null_count()
            + parsed.column_by_name("city").unwrap().null_count();
        assert!(dirty_cells > 0, "dirty CSV produced no dirt");
        // Deterministic.
        assert_eq!(csv, dirty_airports_csv(42));
        assert_ne!(csv, dirty_airports_csv(43));
    }

    #[test]
    fn dirty_elevation_column_becomes_text_or_nullable() {
        let csv = dirty_airports_csv(42);
        let parsed = sigma_value::csv::read_csv(&csv, &Default::default()).unwrap();
        // Inference sampled the whole file: mixed ints and "### ft" make it
        // Text OR Int-with-nulls depending on the sample; both acceptable.
        let dtype = parsed.schema().field_named("elevation_ft").unwrap().dtype;
        assert!(matches!(dtype, DataType::Int | DataType::Text));
    }
}
