//! The flights fact-table generator.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sigma_value::{calendar, Batch, Column, DataType, Field, Schema};

use crate::airports::AIRPORTS;

/// Carriers in the synthetic fleet.
pub const CARRIERS: &[&str] = &["AA", "UA", "DL", "WN", "AS", "B6", "NK", "F9"];

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct FlightsConfig {
    /// Approximate number of fact rows to generate.
    pub rows: usize,
    pub seed: u64,
    /// First year planes may enter service (paper: 1987).
    pub start_year: i32,
    /// Last year of flights (paper: 2020).
    pub end_year: i32,
}

impl Default for FlightsConfig {
    fn default() -> Self {
        FlightsConfig {
            rows: 10_000,
            seed: 42,
            start_year: 1987,
            end_year: 2020,
        }
    }
}

impl FlightsConfig {
    pub fn with_rows(rows: usize) -> FlightsConfig {
        FlightsConfig {
            rows,
            ..Default::default()
        }
    }
}

/// Column layout of the generated table.
pub fn flights_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Field::new("tail_number", DataType::Text),
        Field::new("carrier", DataType::Text),
        Field::new("flight_date", DataType::Date),
        Field::new("origin", DataType::Text),
        Field::new("dest", DataType::Text),
        Field::new("dep_delay", DataType::Float),
        Field::new("air_time", DataType::Float),
        Field::new("distance", DataType::Float),
        Field::new("cancelled", DataType::Bool),
    ]))
}

struct Plane {
    tail: String,
    carrier: &'static str,
    entry_day: i32,
    retire_day: i32,
    home: usize,
}

/// Generate the fact table. Deterministic for a given config.
pub fn generate_flights(config: &FlightsConfig) -> Batch {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start = calendar::days_from_civil(config.start_year, 1, 1);
    let end = calendar::days_from_civil(config.end_year, 12, 31);
    let span = (end - start).max(1);

    // Fleet size scales with row count; each plane flies ~150 flights.
    let n_planes = (config.rows / 150).clamp(8, 5_000);
    let mut planes = Vec::with_capacity(n_planes);
    for i in 0..n_planes {
        // Entry dates skew early so old cohorts exist; lifetime 8-25 years.
        let entry_frac = rng.random::<f64>().powf(1.3);
        let entry_day = start + (entry_frac * span as f64 * 0.9) as i32;
        let lifetime_days = rng.random_range((8 * 365)..(25 * 365));
        planes.push(Plane {
            tail: format!("N{:05}", 10_000 + i),
            carrier: CARRIERS[i % CARRIERS.len()],
            entry_day,
            retire_day: (entry_day + lifetime_days).min(end),
            home: rng.random_range(0..AIRPORTS.len()),
        });
    }

    let mut tails = Vec::with_capacity(config.rows);
    let mut carriers = Vec::with_capacity(config.rows);
    let mut dates = Vec::with_capacity(config.rows);
    let mut origins = Vec::with_capacity(config.rows);
    let mut dests = Vec::with_capacity(config.rows);
    let mut delays: Vec<Option<f64>> = Vec::with_capacity(config.rows);
    let mut air_times = Vec::with_capacity(config.rows);
    let mut distances = Vec::with_capacity(config.rows);
    let mut cancelled = Vec::with_capacity(config.rows);

    let mut plane_idx = 0usize;
    while tails.len() < config.rows {
        let plane = &planes[plane_idx % planes.len()];
        plane_idx += 1;
        let mut day = plane.entry_day;
        let mut hours_since_service = 0.0f64;
        let mut at_home = true;
        // One tour of flights for this plane; planes are revisited
        // round-robin until the row budget is filled.
        let tour = rng.random_range(40..160);
        for _ in 0..tour {
            if day > plane.retire_day || tails.len() >= config.rows {
                break;
            }
            // Route: home <-> random other airport.
            let other = rng.random_range(0..AIRPORTS.len());
            let (o, d) = if at_home {
                (plane.home, other)
            } else {
                (plane.home, plane.home)
            };
            let (o, d) = if at_home { (o, d) } else { (other, plane.home) };
            at_home = !at_home;
            let distance = 200.0 + (o as f64 - d as f64).abs() * 90.0 + rng.random::<f64>() * 800.0;
            let air_time = distance / 7.5 + rng.random::<f64>() * 30.0;

            // Delay: 70% near-zero, heavy tail; ~2% missing (dirty data).
            let delay = if rng.random::<f64>() < 0.02 {
                None
            } else if rng.random::<f64>() < 0.7 {
                Some((rng.random::<f64>() * 14.0 - 4.0).max(-5.0))
            } else {
                Some(rng.random::<f64>().powi(3) * 180.0 + 15.0)
            };

            // Cancellation rises with air time since last service — the
            // signal Scenario 2's line chart recovers.
            let p_cancel = (0.015 + hours_since_service / 4_000.0).min(0.30);
            let is_cancelled = rng.random::<f64>() < p_cancel;

            tails.push(plane.tail.clone());
            carriers.push(plane.carrier.to_string());
            dates.push(day);
            origins.push(AIRPORTS[o].code.to_string());
            dests.push(AIRPORTS[d].code.to_string());
            delays.push(delay);
            air_times.push(air_time);
            distances.push(distance);
            cancelled.push(is_cancelled);

            if !is_cancelled {
                hours_since_service += air_time / 60.0;
            }
            // Gap to next flight: mostly 1-5 days; occasionally a service
            // visit (> 30 idle days) that resets wear.
            if rng.random::<f64>() < 0.04 {
                day += rng.random_range(31..75);
                hours_since_service = 0.0;
            } else {
                day += rng.random_range(1..6);
            }
        }
    }

    Batch::new(
        flights_schema(),
        vec![
            Column::from_texts(tails),
            Column::from_texts(carriers),
            Column::from_dates(dates),
            Column::from_texts(origins),
            Column::from_texts(dests),
            Column::from_opt_floats(delays),
            Column::from_floats(air_times),
            Column::from_floats(distances),
            Column::from_bools(cancelled),
        ],
    )
    .expect("generator produces a valid batch")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_value::Value;

    #[test]
    fn deterministic_for_seed() {
        let a = generate_flights(&FlightsConfig::with_rows(500));
        let b = generate_flights(&FlightsConfig::with_rows(500));
        assert_eq!(a, b);
        let c = generate_flights(&FlightsConfig {
            seed: 7,
            ..FlightsConfig::with_rows(500)
        });
        assert_ne!(a, c);
    }

    #[test]
    fn row_count_and_schema() {
        let b = generate_flights(&FlightsConfig::with_rows(2_000));
        assert_eq!(b.num_rows(), 2_000);
        assert_eq!(b.num_columns(), 9);
        assert!(b.column_by_name("tail_number").is_some());
    }

    #[test]
    fn dates_within_range_and_ordered_per_plane() {
        let b = generate_flights(&FlightsConfig::with_rows(3_000));
        let start = calendar::days_from_civil(1987, 1, 1);
        let end = calendar::days_from_civil(2020, 12, 31);
        let dates = b.column_by_name("flight_date").unwrap();
        for i in 0..b.num_rows() {
            let Value::Date(d) = dates.value(i) else {
                panic!("date expected")
            };
            assert!(d >= start && d <= end, "{d} out of range");
        }
    }

    #[test]
    fn has_cancellations_and_missing_delays() {
        let b = generate_flights(&FlightsConfig::with_rows(5_000));
        let cancelled = b.column_by_name("cancelled").unwrap();
        let n_cancelled = cancelled.iter().filter(|v| *v == Value::Bool(true)).count();
        assert!(n_cancelled > 50, "too few cancellations: {n_cancelled}");
        assert!(n_cancelled < 2_000, "too many cancellations: {n_cancelled}");
        let delays = b.column_by_name("dep_delay").unwrap();
        assert!(delays.null_count() > 0, "expected some missing delays");
    }

    #[test]
    fn multiple_cohorts_exist() {
        let b = generate_flights(&FlightsConfig::with_rows(5_000));
        // Distinct entry quarters across planes: count distinct first
        // flight quarter per tail.
        use std::collections::HashMap;
        let tails = b.column_by_name("tail_number").unwrap();
        let dates = b.column_by_name("flight_date").unwrap();
        let mut first: HashMap<String, i32> = HashMap::new();
        for i in 0..b.num_rows() {
            let t = tails.value(i).render();
            let Value::Date(d) = dates.value(i) else {
                panic!()
            };
            first.entry(t).and_modify(|x| *x = (*x).min(d)).or_insert(d);
        }
        let quarters: std::collections::HashSet<i32> = first
            .values()
            .map(|&d| calendar::trunc_date(d, calendar::DateUnit::Quarter))
            .collect();
        assert!(
            quarters.len() >= 5,
            "expected several cohorts, got {}",
            quarters.len()
        );
    }
}
