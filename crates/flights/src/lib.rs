//! Synthetic BTS On-Time flights workload.
//!
//! The paper's demonstration uses "the On-Time database of the United
//! States domestic airline carrier flights between 1987–2020" (200M rows).
//! That dataset is public but large and external; this crate generates a
//! deterministic, seedable synthetic equivalent whose *distributions* are
//! shaped so the paper's three scenarios produce meaningful results:
//!
//! * **Cohorts** (Scenario 1): planes enter service in staggered quarters
//!   and retire after a plane-specific lifetime, so per-cohort activity
//!   decays over time.
//! * **Sessionization** (Scenario 2): each plane's flights cluster between
//!   maintenance gaps (> 30 idle days), and cancellation probability rises
//!   with accumulated air time since the last service — the line chart of
//!   cancellations vs. hours-since-service has the expected upward shape.
//! * **Augmentation** (Scenario 3): an airports dimension (with a
//!   deliberately dirty variant for the copy-paste step) joins on origin.

pub mod airports;
pub mod gen;
pub mod load;

pub use airports::{airports_batch, dirty_airports_csv, AIRPORTS};
pub use gen::{generate_flights, FlightsConfig};
pub use load::{load_airports, load_flights};
