//! E7: compiler micro-benchmarks — compile time vs. workbook complexity
//! (columns, levels, lookups). The paper's claim is *dynamic* compilation
//! on every interaction, so compilation must stay far below query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigma_bench::Env;
use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, Level, TableSpec};
use sigma_core::Workbook;
use sigma_workbook::demo;

fn wide_workbook(columns: usize, levels: usize) -> Workbook {
    let mut wb = Workbook::new(Some("wide"));
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_column(ColumnDef::source("Tail Number", "tail_number"))
        .unwrap();
    t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    for i in 0..columns {
        t.add_column(ColumnDef::formula(
            format!("c{i}"),
            format!("[Dep Delay] * {i} + Abs([Dep Delay] - {i})"),
            0,
        ))
        .unwrap();
    }
    if levels >= 1 {
        t.add_level(1, Level::keyed("L1", vec!["Carrier".into()]))
            .unwrap();
        t.add_column(ColumnDef::formula("agg1", "Avg([Dep Delay])", 1))
            .unwrap();
    }
    if levels >= 2 {
        t.add_level(1, Level::keyed("L0", vec!["Tail Number".into()]))
            .unwrap();
        t.add_column(ColumnDef::formula("agg0", "Sum([Dep Delay])", 1))
            .unwrap();
    }
    wb.add_element(0, "Wide", ElementKind::Table(t)).unwrap();
    wb
}

fn bench_compiler(c: &mut Criterion) {
    let env = Env::new(1_000);
    let mut group = c.benchmark_group("compiler");
    for &cols in &[5usize, 20, 80] {
        let wb = wide_workbook(cols, 2);
        group.bench_with_input(BenchmarkId::new("columns", cols), &cols, |b, _| {
            b.iter(|| env.compile(&wb, "Wide"))
        });
    }
    let cohort = demo::cohort_workbook();
    group.bench_function("scenario1_full", |b| {
        b.iter(|| env.compile(&cohort, "Flights"))
    });
    group.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
