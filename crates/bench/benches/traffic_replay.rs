//! Traffic replay against a live server socket: the networked tier's
//! headline numbers.
//!
//! The paper's service tier fronts many concurrent workbook sessions per
//! customer warehouse; what matters operationally is (a) interactive
//! latency while the warehouse keeps up and (b) *graceful* degradation —
//! explicit shedding, not latency collapse — when it does not. This bench
//! measures both against a real `sigma-server` TCP socket:
//!
//! 1. **Fidelity pin** — one replayed query is asserted byte-identical to
//!    the same request answered in process (the wire adds nothing and
//!    loses nothing).
//! 2. **Closed loop** — N concurrent client sessions each replay a
//!    scripted edit session (load → filter tweak → formula column →
//!    regroup, unique thresholds per step so nothing is served for free
//!    from the query directory) as fast as the server admits them. This
//!    yields p50/p99 latency and the saturation throughput.
//! 3. **Open loop** — requests arrive on a fixed schedule at ~2x the
//!    measured saturation rate with a per-request deadline. The gate: the
//!    admission controller must shed (`Overloaded`) rather than queue
//!    without bound, and the p99 of *admitted* requests must stay within
//!    the deadline-bounded envelope instead of collapsing.
//!
//! Results land in `BENCH_<date>_traffic_replay.json` at the repo root
//! (override with `TRAFFIC_REPLAY_BENCH_OUT`). Run with:
//!
//! ```text
//! cargo bench -p sigma-bench --bench traffic_replay
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec};
use sigma_core::Workbook;
use sigma_protocol::{ErrorKind, WirePriority};
use sigma_server::{serve, ClientError, QueryReply, ServerHandle, SigmaClient};
use sigma_service::workload::Priority;
use sigma_service::{AdmissionConfig, QueryRequest};
use sigma_value::Value;
use sigma_workbook::demo::{demo_service, demo_warehouse};

const ROWS: usize = 8_000;
/// Concurrent replay sessions (the acceptance floor is 8).
const CLIENTS: usize = 8;
/// Edit-session repetitions per client in the closed-loop phase.
const REPS: usize = 6;
/// Open-loop worker sessions draining the arrival schedule.
const OPEN_WORKERS: usize = 12;
/// Per-request admission deadline in the open-loop phase.
const DEADLINE: Duration = Duration::from_millis(750);
/// Open-loop phase length.
const OPEN_SECS: f64 = 1.5;
/// Admission policy under test: 2 warehouse slots, short per-tenant queue
/// — pressure beyond ~(slots + queue) concurrent requests must shed.
const ADMISSION: AdmissionConfig = AdmissionConfig {
    max_concurrent: 2,
    tenant_quota: 2,
    queue_bound: 4,
    default_deadline: None,
    exec_threads: 0,
};

/// One step of the scripted edit session. `phase` perturbs the filter
/// threshold so every (client, rep, step) compiles to a distinct
/// fingerprint: replayed traffic exercises admission + execution, not the
/// query directory.
fn edit_session(phase: f64) -> Vec<(&'static str, Workbook)> {
    let base = |min: f64| {
        let mut t = TableSpec::new(DataSource::WarehouseTable {
            table: "flights".into(),
        });
        t.add_column(ColumnDef::source("Carrier", "carrier"))
            .unwrap();
        t.add_column(ColumnDef::source("Origin", "origin")).unwrap();
        t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
            .unwrap();
        t.filters.push(FilterSpec {
            column: "Dep Delay".into(),
            predicate: FilterPredicate::Range {
                min: Some(Value::Float(min)),
                max: None,
            },
        });
        t
    };
    let wrap = |t: TableSpec| {
        let mut wb = Workbook::new(Some("replay"));
        wb.add_element(0, "Delays", ElementKind::Table(t)).unwrap();
        wb
    };

    let load = base(phase);
    let tweaked = base(phase + 0.25);
    let mut with_formula = base(phase + 0.5);
    with_formula
        .add_column(ColumnDef::formula("Delay Hours", "[Dep Delay] / 60", 0))
        .unwrap();
    let mut grouped = base(phase + 0.75);
    grouped
        .add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    grouped
        .add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    grouped.detail_level = 1;

    vec![
        ("load", wrap(load)),
        ("filter_tweak", wrap(tweaked)),
        ("formula_column", wrap(with_formula)),
        ("regroup", wrap(grouped)),
    ]
}

fn connect_session(handle: &ServerHandle, token: &str) -> SigmaClient {
    let mut client = SigmaClient::connect(handle.addr()).expect("connect");
    client.auth(token).expect("auth");
    client.open_session("primary").expect("open session");
    client
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Phase 1: the wire adds nothing — a replayed answer is byte-identical
/// to the in-process answer for the same request.
fn assert_bit_identical(handle: &ServerHandle, token: &str) {
    let mut client = connect_session(handle, token);
    let (_, wb) = &edit_session(1.0)[3];
    let json = wb.to_json().unwrap();
    let QueryReply::Ok(remote) = client
        .query_element(&json, "Delays", WirePriority::Interactive, None)
        .expect("fidelity query")
    else {
        panic!("fidelity query shed on an idle server");
    };
    let local = handle
        .service()
        .run_query(&QueryRequest {
            token,
            connection: "primary",
            workbook_json: &json,
            element: "Delays",
            priority: Priority::Interactive,
        })
        .expect("in-process query");
    assert_eq!(
        sigma_value::codec::encode_batch(&remote.batch),
        sigma_value::codec::encode_batch(&local.batch),
        "networked batch must be byte-identical to the in-process batch"
    );
    let _ = client.close();
}

/// Phase 2a: one warm session running sequentially — no queueing, no
/// shedding. Its request rate is the per-slot service rate, which floors
/// the server's true capacity at `max_concurrent x` that rate (the
/// closed loop alone can underestimate capacity when its sessions spend
/// time in shed/backoff cycles).
fn sequential_service_rate(handle: &ServerHandle, token: &str) -> f64 {
    const WARM: usize = 4;
    const MEASURED: usize = 32;
    let mut client = connect_session(handle, token);
    let mut run = |phase: f64| {
        let steps = edit_session(phase);
        let (_, wb) = &steps[(phase as usize) % steps.len()];
        let json = wb.to_json().unwrap();
        loop {
            match client
                .query_element(&json, "Delays", WirePriority::Interactive, None)
                .expect("sequential probe")
            {
                QueryReply::Ok(_) => break,
                QueryReply::Overloaded { retry_after } => {
                    std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                }
            }
        }
    };
    for i in 0..WARM {
        run(50_000.0 + i as f64);
    }
    let t0 = Instant::now();
    for i in 0..MEASURED {
        run(60_000.0 + i as f64);
    }
    let rate = MEASURED as f64 / t0.elapsed().as_secs_f64();
    let _ = client.close();
    rate
}

/// Phase 2b: closed loop. Each session replays its script back-to-back,
/// retrying shed requests after the server's hint. Returns
/// (latencies of admitted requests, wall time, admitted count).
fn closed_loop(handle: &ServerHandle, token: &str) -> (Vec<f64>, f64, usize) {
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let mut client = connect_session(handle, token);
            let latencies = latencies.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut local = Vec::new();
                for rep in 0..REPS {
                    let phase = (c * REPS + rep) as f64 * 4.0;
                    for (_, wb) in edit_session(phase) {
                        let json = wb.to_json().unwrap();
                        // Retry shed requests after the hint, like a real
                        // client; only admitted requests count toward
                        // latency.
                        loop {
                            let t0 = Instant::now();
                            match client
                                .query_element(&json, "Delays", WirePriority::Interactive, None)
                                .expect("closed-loop transport")
                            {
                                QueryReply::Ok(_) => {
                                    local.push(t0.elapsed().as_secs_f64() * 1e3);
                                    break;
                                }
                                QueryReply::Overloaded { retry_after } => {
                                    std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                                }
                            }
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for t in threads {
        t.join().expect("closed-loop session");
    }
    let wall = t0.elapsed().as_secs_f64();
    let lat = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    let admitted = lat.len();
    (lat, wall, admitted)
}

struct OpenLoopResult {
    target_rps: f64,
    issued: usize,
    admitted: usize,
    shed: usize,
    deadline_exceeded: usize,
    admitted_latencies_ms: Vec<f64>,
}

/// Phase 3: open loop at `target_rps`. Arrivals follow a fixed global
/// schedule drained by a pool of sessions — a slow server cannot slow the
/// offered load down, which is exactly what makes overload real.
fn open_loop(handle: &ServerHandle, token: &str, target_rps: f64) -> OpenLoopResult {
    let total = ((target_rps * OPEN_SECS) as usize).clamp(OPEN_WORKERS, 4_000);
    let next = Arc::new(AtomicUsize::new(0));
    let admitted = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));
    let expired = Arc::new(AtomicUsize::new(0));
    let latencies = Arc::new(Mutex::new(Vec::new()));
    let barrier = Arc::new(Barrier::new(OPEN_WORKERS + 1));
    let start = Arc::new(Mutex::new(Instant::now()));

    let threads: Vec<_> = (0..OPEN_WORKERS)
        .map(|w| {
            let mut client = connect_session(handle, token);
            let next = next.clone();
            let admitted = admitted.clone();
            let shed = shed.clone();
            let expired = expired.clone();
            let latencies = latencies.clone();
            let barrier = barrier.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let start = *start.lock().unwrap();
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= total {
                        break;
                    }
                    // Fixed arrival schedule: request i fires at i/rate,
                    // regardless of how the server is doing.
                    let due = start + Duration::from_secs_f64(i as f64 / target_rps);
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    // Distinct fingerprint space from the closed loop.
                    let phase = 100_000.0 + (w * 10_000 + i) as f64;
                    let steps = edit_session(phase);
                    let (_, wb) = &steps[i % steps.len()];
                    let json = wb.to_json().unwrap();
                    let t0 = Instant::now();
                    match client.query_element(
                        &json,
                        "Delays",
                        WirePriority::Interactive,
                        Some(DEADLINE),
                    ) {
                        Ok(QueryReply::Ok(_)) => {
                            local.push(t0.elapsed().as_secs_f64() * 1e3);
                            admitted.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(QueryReply::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ClientError::Server {
                            kind: ErrorKind::DeadlineExceeded,
                            ..
                        }) => {
                            expired.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => panic!("open-loop transport failure: {e}"),
                    }
                }
                latencies.lock().unwrap().extend(local);
            })
        })
        .collect();
    *start.lock().unwrap() = Instant::now();
    barrier.wait();
    for t in threads {
        t.join().expect("open-loop session");
    }
    OpenLoopResult {
        target_rps,
        issued: total,
        admitted: admitted.load(Ordering::SeqCst),
        shed: shed.load(Ordering::SeqCst),
        deadline_exceeded: expired.load(Ordering::SeqCst),
        admitted_latencies_ms: Arc::try_unwrap(latencies).unwrap().into_inner().unwrap(),
    }
}

fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_secs();
    let (y, m, d) = sigma_value::calendar::civil_from_days((secs / 86_400) as i32);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let (service, token) = demo_service(demo_warehouse(ROWS));
    assert!(service.set_connection_admission("primary", ADMISSION));
    let handle = serve(service, "127.0.0.1:0").expect("bind server");

    assert_bit_identical(&handle, &token);
    println!("fidelity: networked == in-process (byte-identical)");

    let per_slot_rps = sequential_service_rate(&handle, &token);
    println!("sequential probe: {per_slot_rps:.0} rps per warehouse slot");

    let (mut closed_lat, wall, closed_admitted) = closed_loop(&handle, &token);
    closed_lat.sort_by(|a, b| a.total_cmp(b));
    let closed_p50 = percentile(&closed_lat, 0.50);
    let closed_p99 = percentile(&closed_lat, 0.99);
    let saturation_rps = closed_admitted as f64 / wall;
    println!(
        "closed loop: {CLIENTS} sessions, {closed_admitted} requests in {wall:.2}s \
         -> {saturation_rps:.0} rps, p50 {closed_p50:.2}ms p99 {closed_p99:.2}ms"
    );

    // True capacity is at least per_slot_rps x slots; the closed loop can
    // only underestimate it (its sessions burn time in shed/backoff
    // cycles). Offering 2x the larger of the two guarantees genuine
    // overload.
    let capacity_rps = saturation_rps.max(per_slot_rps * ADMISSION.max_concurrent as f64);
    let open = open_loop(&handle, &token, capacity_rps * 2.0);
    let mut open_lat = open.admitted_latencies_ms.clone();
    open_lat.sort_by(|a, b| a.total_cmp(b));
    let open_p50 = percentile(&open_lat, 0.50);
    let open_p99 = percentile(&open_lat, 0.99);
    println!(
        "open loop @2x ({:.0} rps): issued {}, admitted {}, shed {}, expired {}, \
         admitted p50 {open_p50:.2}ms p99 {open_p99:.2}ms",
        open.target_rps, open.issued, open.admitted, open.shed, open.deadline_exceeded
    );

    // The degradation gates. Shedding must engage at 2x saturation...
    assert!(
        open.shed > 0,
        "open-loop 2x overload produced no Overloaded responses \
         (admitted {}, expired {})",
        open.admitted,
        open.deadline_exceeded
    );
    assert!(open.admitted > 0, "overload must not starve every request");
    // ...and admitted requests must stay inside the deadline-bounded
    // envelope: bounded queue wait (deadline) + service + generous CI
    // slack — overload degrades by rejecting, not by latency collapse.
    let p99_bound_ms = DEADLINE.as_secs_f64() * 1e3 + 2_000.0;
    assert!(
        open_p99 <= p99_bound_ms,
        "admitted p99 {open_p99:.1}ms blew the bounded-latency envelope \
         ({p99_bound_ms:.0}ms) under 2x overload"
    );
    // Queue bound held: the workload manager never buffered more than the
    // configured backlog per tenant.
    let stats = handle.service().workload_stats("primary").expect("stats");
    assert!(
        stats.peak_waiting <= ADMISSION.queue_bound,
        "peak backlog {} exceeded the configured bound {}",
        stats.peak_waiting,
        ADMISSION.queue_bound
    );

    let date = today();
    let json = format!(
        "{{\n  \"recorded\": \"{date}\",\n  \"note\": \"Traffic replay against a live \
         sigma-server TCP socket over a {ROWS}-row flights warehouse with admission \
         max_concurrent={}, tenant_quota={}, queue_bound={}. Closed loop: {CLIENTS} \
         concurrent sessions each replaying {REPS} scripted edit sessions (load/filter \
         tweak/formula column/regroup; unique filter thresholds defeat the query \
         directory), shed requests retried after the server hint. Open loop: fixed \
         arrival schedule at 2x the estimated capacity (the larger of closed-loop \
         throughput and the sequential per-slot rate x slots) with {}ms per-request \
         deadlines across {OPEN_WORKERS} sessions. Gates: one replayed answer is \
         byte-identical to the in-process answer; at 2x overload the server sheds with \
         Overloaded (shed > 0) while p99 of admitted requests stays inside the \
         deadline-bounded envelope; peak per-tenant backlog never exceeds queue_bound. \
         Regenerate with: cargo bench -p sigma-bench --bench traffic_replay.\",\n  \
         \"bit_identical\": true,\n  \"admission\": {{ \"max_concurrent\": {}, \
         \"tenant_quota\": {}, \"queue_bound\": {} }},\n  \"sequential_per_slot_rps\": {per_slot_rps:.1},\n  \"closed_loop\": {{ \
         \"sessions\": {CLIENTS}, \"requests\": {closed_admitted}, \"wall_s\": {wall:.3}, \
         \"throughput_rps\": {saturation_rps:.1}, \"p50_ms\": {closed_p50:.3}, \
         \"p99_ms\": {closed_p99:.3} }},\n  \"open_loop\": {{ \"target_rps\": {:.1}, \
         \"deadline_ms\": {}, \"issued\": {}, \"admitted\": {}, \"shed\": {}, \
         \"deadline_exceeded\": {}, \"admitted_p50_ms\": {open_p50:.3}, \
         \"admitted_p99_ms\": {open_p99:.3} }},\n  \"workload_stats\": {{ \
         \"admitted\": {}, \"shed\": {}, \"expired\": {}, \"peak_waiting\": {} }}\n}}\n",
        ADMISSION.max_concurrent,
        ADMISSION.tenant_quota,
        ADMISSION.queue_bound,
        DEADLINE.as_millis(),
        ADMISSION.max_concurrent,
        ADMISSION.tenant_quota,
        ADMISSION.queue_bound,
        open.target_rps,
        DEADLINE.as_millis(),
        open.issued,
        open.admitted,
        open.shed,
        open.deadline_exceeded,
        stats.admitted,
        stats.shed,
        stats.expired,
        stats.peak_waiting,
    );
    let out = std::env::var("TRAFFIC_REPLAY_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_{date}_traffic_replay.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&out, json).expect("write bench record");
    println!("recorded -> {out}");

    handle.shutdown();
}
