//! E8: warehouse engine scaling — scan+filter+aggregate throughput vs.
//! partition parallelism and row count (the "scalable CDW" substrate the
//! paper leans on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sigma_bench::Env;

const SQL: &str = "SELECT carrier, COUNT(*) AS n, AVG(dep_delay) AS d \
                   FROM flights WHERE dep_delay > 10 GROUP BY carrier";

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for &rows in &[50_000usize, 200_000] {
        let env = Env::new(rows);
        group.throughput(Throughput::Elements(rows as u64));
        for threads in [1usize, 2, 4] {
            env.warehouse.set_parallelism(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("scan_agg_p{threads}"), rows),
                &rows,
                |b, _| b.iter(|| env.warehouse.execute_sql(SQL).unwrap()),
            );
        }
        env.warehouse.set_parallelism(1);
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
