//! E1/E2/E3: the paper's three demonstration scenarios, end to end through
//! the service, swept over fact-table sizes. The paper's claim is
//! interactivity at warehouse scale; the reproducible shape is near-linear
//! scaling of each scenario's backing query with row count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigma_bench::Env;
use sigma_workbook::demo;

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenarios");
    group.sample_size(10);
    for &rows in &[10_000usize, 50_000] {
        let env = Env::new(rows);
        let cohort = demo::cohort_workbook();
        let session = demo::sessionization_workbook();
        group.bench_with_input(BenchmarkId::new("cohort", rows), &rows, |b, _| {
            b.iter(|| env.run(&cohort, "Flights"))
        });
        group.bench_with_input(BenchmarkId::new("sessionization", rows), &rows, |b, _| {
            b.iter(|| env.run(&session, "Service Life"))
        });
        // Scenario 3's hot path once projected: the Lookup join.
        let mut aug = demo::augmentation_workbook();
        env.service
            .project_input_table(&env.token, "primary", &mut aug, "Airport Info")
            .unwrap();
        group.bench_with_input(BenchmarkId::new("augmentation", rows), &rows, |b, _| {
            b.iter(|| env.run(&aug, "Flights"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
