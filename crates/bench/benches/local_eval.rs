//! E5: in-browser evaluation vs. warehouse round trip (§4). The local
//! engine answers refinements over prefetched low-cardinality tables with
//! zero network; the round trip pays 2x the simulated RTT.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_bench::Env;
use sigma_browser::{BrowserSession, PrefetchPolicy, Source};
use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, Level, TableSpec};
use sigma_core::Workbook;

fn airports_workbook() -> Workbook {
    let mut wb = Workbook::new(Some("dims"));
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "airports".into(),
    });
    t.add_column(ColumnDef::source("State", "state")).unwrap();
    t.add_level(1, Level::keyed("By State", vec!["State".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Airports", "Count()", 1))
        .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "ByState", ElementKind::Table(t)).unwrap();
    wb
}

fn bench_local_eval(c: &mut Criterion) {
    let env = Env::new(20_000);
    let wb = airports_workbook();
    let mut group = c.benchmark_group("local_eval");
    group.sample_size(10);

    for rtt_ms in [0u64, 25, 50] {
        let remote_tab = BrowserSession::new(env.service.clone(), env.token.clone(), "primary")
            .with_network_latency(Duration::from_millis(rtt_ms));
        group.bench_function(format!("round_trip_rtt_{rtt_ms}ms"), |b| {
            b.iter(|| {
                // Bust the browser cache each time by invalidating.
                remote_tab.cache.invalidate_element("ByState");
                let out = remote_tab.query_element(&wb, "ByState").unwrap();
                assert_ne!(out.source, Source::LocalEngine);
            })
        });
    }

    let local_tab = BrowserSession::new(env.service.clone(), env.token.clone(), "primary");
    local_tab.prefetch(&env.warehouse, &PrefetchPolicy::default());
    group.bench_function("local_engine", |b| {
        b.iter(|| {
            local_tab.cache.invalidate_element("ByState");
            let out = local_tab.query_element(&wb, "ByState").unwrap();
            assert_eq!(out.source, Source::LocalEngine);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_local_eval);
criterion_main!(benches);
