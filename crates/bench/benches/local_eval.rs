//! The **local-eval bench**: replay a scripted edit session through one
//! browser tab and record, per edit step, the latency of the incremental
//! local path (stage-cache reuse + delta kernels) against a service round
//! trip for the same state by a fresh tab, under a simulated network RTT.
//!
//! After the initial load ships the stage DAG, interior stage results and
//! table schemas, every subsequent edit should be served from a local
//! tier: the filter tweak and formula column through the **delta fast
//! path** (pure kernel passes over cached stage results — zero warehouse
//! queries), the regroup through **residual-suffix execution** (only the
//! invalidated suffix recomputes, locally).
//!
//! Results are written to `BENCH_<date>_local_eval.json` at the repo root
//! (override the path with `LOCAL_EVAL_BENCH_OUT`). Run with:
//!
//! ```text
//! cargo bench -p sigma-bench --bench local_eval
//! ```

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use sigma_bench::Env;
use sigma_browser::{BrowserSession, Source};
use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec};
use sigma_core::Workbook;
use sigma_value::Value;

const ROWS: usize = 50_000;
const ITERS: usize = 5;
const RTT_MS: u64 = 25;

/// One workbook state per interactive gesture: load a filtered detail
/// table, tweak the filter threshold, add a formula column, then group.
/// The filter tweak re-runs one kernel filter pass over the cached base
/// projection; the formula column is one kernel projection pass over the
/// cached source — both the paper's A3 delta shapes. Grouping needs the
/// embedded engine for the aggregation, but still only for the residual
/// suffix (the source scan is served from the stage cache).
fn steps() -> Vec<(&'static str, Workbook)> {
    let base = |min: f64| {
        let mut t = TableSpec::new(DataSource::WarehouseTable {
            table: "flights".into(),
        });
        t.add_column(ColumnDef::source("Carrier", "carrier"))
            .unwrap();
        t.add_column(ColumnDef::source("Origin", "origin")).unwrap();
        t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
            .unwrap();
        t.filters.push(FilterSpec {
            column: "Dep Delay".into(),
            predicate: FilterPredicate::Range {
                min: Some(Value::Float(min)),
                max: None,
            },
        });
        t
    };
    let with_hours = |mut t: TableSpec| {
        t.add_column(ColumnDef::formula("Delay Hours", "[Dep Delay] / 60", 0))
            .unwrap();
        t
    };
    let grouped = |mut t: TableSpec| {
        t.add_level(1, Level::keyed("Grouped", vec!["Carrier".into()]))
            .unwrap();
        t.add_column(ColumnDef::formula("Flights", "Count()", 1))
            .unwrap();
        t.detail_level = 1;
        t
    };
    let wrap = |t: TableSpec| {
        let mut wb = Workbook::new(Some("session"));
        wb.add_element(0, "Delays", ElementKind::Table(t)).unwrap();
        wb
    };
    vec![
        ("load", wrap(base(10.0))),
        ("filter_tweak", wrap(base(30.0))),
        ("formula_column", wrap(with_hours(base(30.0)))),
        ("regroup", wrap(grouped(with_hours(base(30.0))))),
    ]
}

#[derive(Clone, Copy, Default)]
struct StepRecord {
    local_ms: f64,
    service_ms: f64,
    warehouse_queries: u64,
}

fn source_name(s: Source) -> &'static str {
    match s {
        Source::BrowserCache => "browser_cache",
        Source::LocalEngine => "local_engine",
        Source::LocalDelta => "local_delta",
        Source::LocalResidual => "local_residual",
        Source::ServiceDirectory => "service_directory",
        Source::Warehouse => "warehouse",
    }
}

/// Replay the session `ITERS` times on fresh environments; per step, keep
/// the median latencies and check the tier contract on every iteration.
fn replay() -> Vec<(&'static str, &'static str, StepRecord)> {
    let script = steps();
    let mut records: Vec<Vec<StepRecord>> = vec![Vec::new(); script.len()];
    let mut sources: Vec<&'static str> = vec![""; script.len()];
    for _ in 0..ITERS {
        let env = Env::new(ROWS);
        let rtt = Duration::from_millis(RTT_MS);
        // A generous stage-shipping budget: at 50k rows the deep source
        // stage (~the whole projected scan) exceeds the 8 MiB default,
        // and the formula-column edit needs it in the browser stage cache.
        env.service.set_stage_ship_cap(64 << 20);
        let mut tab = BrowserSession::new(env.service.clone(), env.token.clone(), "primary")
            .with_network_latency(rtt);
        tab.prefetch_policy.max_stage_bytes = 64 << 20;
        for (i, (name, wb)) in script.iter().enumerate() {
            let before = env.warehouse.queries_executed();
            let started = Instant::now();
            let out = tab.query_element(wb, "Delays").unwrap();
            let local_ms = started.elapsed().as_secs_f64() * 1e3;
            let warehouse_queries = env.warehouse.queries_executed() - before;
            sources[i] = source_name(out.source);

            // The tier contract (also the bench's regression gate).
            match *name {
                "load" => assert_eq!(out.source, Source::Warehouse, "step {name}"),
                "filter_tweak" | "formula_column" => {
                    // Delta fast path: kernels over cached stage results,
                    // zero warehouse queries.
                    assert_eq!(out.source, Source::LocalDelta, "step {name}");
                    assert_eq!(warehouse_queries, 0, "step {name} scanned the warehouse");
                }
                _ => {
                    assert!(
                        matches!(out.source, Source::LocalDelta | Source::LocalResidual),
                        "step {name}: expected a local tier, got {:?}",
                        out.source
                    );
                    assert_eq!(warehouse_queries, 0, "step {name} scanned the warehouse");
                }
            }

            // Baseline: the same state through a cold tab (round trip).
            let fresh = BrowserSession::new(env.service.clone(), env.token.clone(), "primary")
                .with_network_latency(rtt);
            let started = Instant::now();
            let base = fresh.query_element(wb, "Delays").unwrap();
            let service_ms = started.elapsed().as_secs_f64() * 1e3;
            assert_eq!(out.batch, base.batch, "step {name}: local != service");

            records[i].push(StepRecord {
                local_ms,
                service_ms,
                warehouse_queries,
            });
        }
    }
    script
        .iter()
        .zip(sources)
        .zip(records)
        .map(|(((name, _), src), mut rs)| {
            rs.sort_by(|a, b| a.local_ms.total_cmp(&b.local_ms));
            (*name, src, rs[rs.len() / 2])
        })
        .collect()
}

fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_secs();
    let (y, m, d) = sigma_value::calendar::civil_from_days((secs / 86_400) as i32);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let results = replay();

    let mut rows = String::new();
    println!("local_eval bench ({ROWS} rows, rtt {RTT_MS}ms, median of {ITERS} replays)");
    println!(
        "{:<16} {:<18} {:>10} {:>12} {:>9} {:>8}",
        "step", "source", "local ms", "service ms", "speedup", "queries"
    );
    for (name, src, r) in &results {
        let speedup = r.service_ms / r.local_ms.max(1e-6);
        println!(
            "{:<16} {:<18} {:>10.2} {:>12.2} {:>8.1}x {:>8}",
            name, src, r.local_ms, r.service_ms, speedup, r.warehouse_queries
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"step\": \"{name}\", \"source\": \"{src}\", \
             \"local_ms\": {:.3}, \"service_ms\": {:.3}, \
             \"speedup\": {:.1}, \"warehouse_queries\": {} }}",
            r.local_ms, r.service_ms, speedup, r.warehouse_queries
        ));
    }

    // Acceptance gate: the delta fast-path steps must beat the round trip
    // by at least 10x under the simulated RTT.
    for (name, _, r) in results.iter().filter(|(n, _, _)| *n != "load") {
        let speedup = r.service_ms / r.local_ms.max(1e-6);
        assert!(
            speedup >= 10.0,
            "step {name}: local path only {speedup:.1}x faster ({:.2}ms vs {:.2}ms)",
            r.local_ms,
            r.service_ms
        );
    }

    let date = today();
    let json = format!(
        "{{\n  \"recorded\": \"{date}\",\n  \"note\": \"Scripted edit session \
         (load -> filter tweak -> formula column -> regroup) through one browser tab over \
         {ROWS} synthetic flights rows with a simulated {RTT_MS}ms one-way RTT; median of \
         {ITERS} fresh replays. After the load ships stage results + schemas, every edit is \
         served from a local tier: filter tweak and formula column via the delta fast path \
         (kernel passes over cached stage results, zero warehouse queries), regroup via \
         residual-suffix execution. service_ms is the same state through a cold tab (round \
         trip). Regenerate with: cargo bench -p sigma-bench --bench local_eval.\",\n  \
         \"rows\": {ROWS},\n  \"iters\": {ITERS},\n  \"rtt_ms\": {RTT_MS},\n  \
         \"steps\": [\n{rows}\n  ]\n}}\n"
    );
    let out = std::env::var("LOCAL_EVAL_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_{date}_local_eval.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&out, json).expect("write bench record");
    println!("\nrecorded -> {out}");
}
