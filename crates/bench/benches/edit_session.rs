//! The **edit-session bench**: replay a scripted interactive session
//! (load → add column → change filter → pivot/regroup) through the full
//! service path and record, per step, end-to-end latency and warehouse
//! *table* rows scanned — with stage caching on vs. off.
//!
//! With stage caching on, each edit should re-execute only the stages
//! downstream of the change; the untouched prefix (in particular the raw
//! source scan) is re-served from CDW-persisted results via `RESULT_SCAN`,
//! so the rows-scanned column collapses to ~0 on every edit step.
//!
//! Results are written to `BENCH_<date>_edit_session.json` at the repo
//! root (override the path with `EDIT_SESSION_BENCH_OUT`). Run with:
//!
//! ```text
//! cargo bench -p sigma-bench --bench edit_session
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use sigma_cdw::Warehouse;
use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec};
use sigma_core::Workbook;
use sigma_service::workload::Priority;
use sigma_service::{QueryOutcome, QueryRequest, SigmaService};
use sigma_value::Value;
use sigma_workbook::demo::demo_warehouse;

const ROWS: usize = 50_000;
const ITERS: usize = 5;

fn setup() -> (Arc<SigmaService>, String) {
    let wh: Arc<Warehouse> = demo_warehouse(ROWS);
    let service = SigmaService::new();
    let org = service.tenancy.create_org("bench");
    let user = service
        .tenancy
        .create_user(org, "analyst", sigma_service::tenancy::Role::Creator)
        .expect("org exists");
    let token = service.tenancy.issue_token(user).expect("user exists");
    service.add_connection(org, "primary", wh);
    (Arc::new(service), token)
}

/// One workbook state per interactive gesture (mirrors
/// `crates/service/tests/stage_cache.rs` so the bench and the equivalence
/// test replay the same script).
fn steps() -> Vec<(&'static str, Workbook)> {
    let base = |keys: Vec<String>| {
        let mut t = TableSpec::new(DataSource::WarehouseTable {
            table: "flights".into(),
        });
        t.add_column(ColumnDef::source("Carrier", "carrier"))
            .unwrap();
        t.add_column(ColumnDef::source("Origin", "origin")).unwrap();
        t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
            .unwrap();
        t.add_level(1, Level::keyed("Grouped", keys)).unwrap();
        t.add_column(ColumnDef::formula("Flights", "Count()", 1))
            .unwrap();
        t.detail_level = 1;
        t
    };
    let with_avg = |mut t: TableSpec| {
        t.add_column(ColumnDef::formula("Avg Delay", "Avg([Dep Delay])", 1))
            .unwrap();
        t
    };
    let with_filter = |mut t: TableSpec| {
        t.filters.push(FilterSpec {
            column: "Dep Delay".into(),
            predicate: FilterPredicate::Range {
                min: Some(Value::Float(10.0)),
                max: None,
            },
        });
        t
    };
    let wrap = |t: TableSpec| {
        let mut wb = Workbook::new(Some("session"));
        wb.add_element(0, "Delays", ElementKind::Table(t)).unwrap();
        wb
    };
    vec![
        ("load", wrap(base(vec!["Carrier".into()]))),
        ("add_column", wrap(with_avg(base(vec!["Carrier".into()])))),
        (
            "change_filter",
            wrap(with_filter(with_avg(base(vec!["Carrier".into()])))),
        ),
        (
            "pivot",
            wrap(with_filter(with_avg(base(vec!["Origin".into()])))),
        ),
    ]
}

fn run(service: &SigmaService, token: &str, wb: &Workbook) -> QueryOutcome {
    let json = wb.to_json().unwrap();
    service
        .run_query(&QueryRequest {
            token,
            connection: "primary",
            workbook_json: &json,
            element: "Delays",
            priority: Priority::Interactive,
        })
        .unwrap()
}

#[derive(Clone, Copy, Default)]
struct StepRecord {
    ms: f64,
    rows_scanned: usize,
    stage_hits: usize,
    stages_executed: usize,
}

/// Replay the whole session on a fresh service; per-step latency is the
/// median over `ITERS` fresh replays (state resets each iteration so every
/// replay exercises the same cold-start + four-edits trajectory).
fn replay(caching: bool) -> Vec<(&'static str, StepRecord)> {
    let script = steps();
    let mut records: Vec<Vec<StepRecord>> = vec![Vec::new(); script.len()];
    for _ in 0..ITERS {
        let (service, token) = setup();
        service.set_stage_caching(caching);
        for (i, (_, wb)) in script.iter().enumerate() {
            let started = Instant::now();
            let out = run(&service, &token, wb);
            let elapsed = started.elapsed();
            records[i].push(StepRecord {
                ms: elapsed.as_secs_f64() * 1e3,
                rows_scanned: out.rows_scanned,
                stage_hits: out.stage_hits,
                stages_executed: out.stages_executed,
            });
        }
    }
    script
        .iter()
        .zip(records)
        .map(|((name, _), mut rs)| {
            rs.sort_by(|a, b| a.ms.total_cmp(&b.ms));
            (*name, rs[rs.len() / 2])
        })
        .collect()
}

fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_secs();
    let (y, m, d) = sigma_value::calendar::civil_from_days((secs / 86_400) as i32);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    // `cargo bench` passes filter args; this harness always runs fully.
    let on = replay(true);
    let off = replay(false);

    let mut rows = String::new();
    println!("edit_session bench ({ROWS} rows, median of {ITERS} replays)");
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>12} {:>6} {:>7}",
        "step", "on ms", "on rows", "off ms", "off rows", "hits", "stages"
    );
    for ((name, a), (_, b)) in on.iter().zip(&off) {
        println!(
            "{:<14} {:>10.2} {:>12} {:>10.2} {:>12} {:>6} {:>7}",
            name, a.ms, a.rows_scanned, b.ms, b.rows_scanned, a.stage_hits, a.stages_executed
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"step\": \"{name}\", \
             \"caching_on\": {{ \"ms\": {:.3}, \"rows_scanned\": {}, \
             \"stage_hits\": {}, \"stages_executed\": {} }}, \
             \"caching_off\": {{ \"ms\": {:.3}, \"rows_scanned\": {} }} }}",
            a.ms, a.rows_scanned, a.stage_hits, a.stages_executed, b.ms, b.rows_scanned
        ));
    }

    // The bench doubles as a regression gate for the caching contract:
    // every edit step must land at least one stage-level directory hit and
    // scan strictly fewer warehouse rows than the caching-off baseline.
    for ((name, a), (_, b)) in on.iter().skip(1).zip(off.iter().skip(1)) {
        assert!(a.stage_hits >= 1, "step {name}: no stage-level reuse");
        assert!(
            a.rows_scanned < b.rows_scanned,
            "step {name}: rows scanned did not drop ({} vs {})",
            a.rows_scanned,
            b.rows_scanned
        );
    }

    let date = today();
    let json = format!(
        "{{\n  \"recorded\": \"{date}\",\n  \"note\": \"Scripted interactive session \
         (load -> add column -> change filter -> pivot/regroup) through the full service path \
         over {ROWS} synthetic flights rows; median of {ITERS} fresh replays per configuration. \
         caching_on = stage-level query directory (per-CTE fingerprints, RESULT_SCAN prefix \
         reuse); caching_off = one flattened query per request. rows_scanned counts warehouse \
         TABLE rows only; RESULT_SCAN re-serves of persisted results are free. Regenerate with: \
         cargo bench -p sigma-bench --bench edit_session.\",\n  \"rows\": {ROWS},\n  \
         \"iters\": {ITERS},\n  \"steps\": [\n{rows}\n  ]\n}}\n"
    );
    let out = std::env::var("EDIT_SESSION_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_{date}_edit_session.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&out, json).expect("write bench record");
    println!("\nrecorded -> {out}");
}
