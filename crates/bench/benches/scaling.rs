//! Aggregation / join / distinct scaling vs. the parallelism knob, plus
//! the **skewed-input sweep** pitting morsel-driven work stealing against
//! static partition-at-a-time dispatch.
//!
//! Before the two-phase refactor only the Scan→Filter→Project prefix ran
//! partition-parallel; GROUP BY, JOIN, and DISTINCT collapsed to one
//! thread. The criterion section sweeps `parallelism` over a uniform
//! multi-partition table so regressions in partition parallelism of the
//! heavy operators show up as flat (non-scaling) curves.
//!
//! The skewed sweep loads one partition with ~90% of the rows (plus empty
//! partitions and 1-row tails) — the layout static dispatch handles worst,
//! since no partition assignment can split the big partition across
//! threads. Morsel execution breaks it into stealable 4096-row morsels.
//! Besides the streaming filter/project pipeline and the fused aggregate,
//! the sweep covers the morselized long tail: a LEFT join probe (per-morsel
//! probes with regrouped unmatched tails), an ORDER BY (per-morsel sorted
//! runs, k-way merge), and a window (per-morsel eval, partition-parallel
//! compute). All lanes execute on the shared persistent worker pool, whose
//! target defaults to the host's core count — so `parallelism 4` on a
//! single-core host is clamped to serial static execution and the morsel
//! lane is the *same code path* as the static lane (parity by
//! construction), while multi-core hosts get real stealing. Results (the
//! morsel-vs-static speedup plus the morsel lane's scheduler counters) are
//! recorded to `BENCH_<date>_scaling.json` at the repo root (override with
//! `SCALING_BENCH_OUT`). Gates: on hosts with >= 4 CPUs the
//! streaming-pipeline case must show >= 1.5x morsel-vs-static speedup at
//! parallelism 4 and at least one of the long-tail trio {left_join, sort,
//! window} must clear the same bar; on smaller hosts every case must stay
//! at parity (>= 0.95x, the two lanes being identical code there). On
//! every host the left_join case gates static p4 <= 1.2x serial — the
//! regression this bench once caught (4.5x, a per-cell String allocation
//! in join assembly) stays dead. Run with:
//!
//! ```text
//! cargo bench -p sigma-bench --bench scaling
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sigma_cdw::Warehouse;
use sigma_value::{Batch, Column, DataType, Field, Schema, Value};

const ROWS: usize = 200_000;
/// 16 partitions: enough grain for an 8-way sweep.
const PARTITION_ROWS: usize = ROWS / 16;

const AGG_SQL: &str = "SELECT g, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a, \
                              MIN(v) AS mn, MAX(v) AS mx \
                       FROM fact GROUP BY g";
const JOIN_SQL: &str = "SELECT d.lab, COUNT(*) AS n, SUM(fact.v) AS s \
                        FROM fact JOIN d ON fact.k = d.k GROUP BY d.lab";
const DISTINCT_SQL: &str = "SELECT DISTINCT g, k FROM fact";

fn scaling_warehouse() -> Warehouse {
    let wh = Warehouse::default();
    let schema = Arc::new(Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]));
    // Deterministic pseudo-random-ish distribution (no RNG dependency).
    let fact = Batch::new(
        schema,
        vec![
            Column::from_ints((0..ROWS as i64).map(|i| (i * 7919) % 64).collect()),
            Column::from_ints((0..ROWS as i64).map(|i| (i * 104729) % 1000).collect()),
            Column::from_floats((0..ROWS as i64).map(|i| ((i * 31) % 997) as f64).collect()),
        ],
    )
    .unwrap();
    wh.load_table_partitioned("fact", fact, PARTITION_ROWS)
        .unwrap();
    let dim = Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("lab", DataType::Text),
        ])),
        vec![
            Column::from_ints((0..1000).collect()),
            Column::from_texts((0..1000).map(|i| format!("d{}", i % 25)).collect()),
        ],
    )
    .unwrap();
    wh.load_table("d", dim).unwrap();
    wh
}

fn bench_scaling(c: &mut Criterion) {
    let wh = scaling_warehouse();
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));
    for (name, sql) in [
        ("aggregate", AGG_SQL),
        ("join_agg", JOIN_SQL),
        ("distinct", DISTINCT_SQL),
    ] {
        for threads in [1usize, 2, 4, 8] {
            wh.set_parallelism(threads);
            group.bench_with_input(
                BenchmarkId::new(name, format!("p{threads}")),
                &threads,
                // Evict each run's persisted result: hundreds of retained
                // multi-MB batches would turn the bench into a memory-
                // pressure measurement.
                |b, _| {
                    b.iter(|| {
                        let r = wh.execute_sql(sql).unwrap();
                        wh.evict_result(&r.query_id);
                        r
                    })
                },
            );
        }
        wh.set_parallelism(1);
    }
    group.finish();
}

// ---------------------------------------------------------------------
// skewed-input sweep: morsel work stealing vs static dispatch
// ---------------------------------------------------------------------

const SKEW_ROWS: usize = 400_000;
const SKEW_ITERS: usize = 5;

/// The gated case: a fully streaming Scan→Filter→Project pipeline, where
/// every morsel is independent end-to-end (no partition-granular fold),
/// so stealing should reclaim nearly all the imbalance.
const SKEW_FILTER_SQL: &str = "SELECT g, v * 2.0 + 1.0 AS x FROM skew WHERE v * 3.0 + k < 220.0";
/// Recorded (not gated): fused partial aggregation parallelizes its
/// per-morsel expression evaluation, but each partition's states still
/// fold sequentially to keep the FP update order pinned, so its curve is
/// informative rather than a hard bar.
const SKEW_AGG_SQL: &str = "SELECT g, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a \
                            FROM skew GROUP BY g";
/// Long-tail trio (group-gated: at least one must clear the 1.5x bar on
/// multi-core hosts). LEFT join: per-morsel probes of the shared build
/// table, unmatched tails regrouped per (partition, morsel) — 20% of the
/// fact keys dangle past the dimension's 0..800 range.
const SKEW_LEFT_SQL: &str = "SELECT skew.g, skew.v, sd.lab \
                             FROM skew LEFT JOIN sd ON skew.k = sd.k";
/// Sort: per-morsel sorted runs k-way merged by (keys, row id).
const SKEW_SORT_SQL: &str = "SELECT g, k, v FROM skew ORDER BY v DESC, k";
/// Window: per-morsel expression eval + partition grouping, then
/// partition-parallel sort/compute (64 groups).
const SKEW_WINDOW_SQL: &str = "SELECT g, SUM(v) OVER (PARTITION BY g ORDER BY v) AS w FROM skew";

/// ~90% of rows in one partition, two empty partitions, eight 1-row
/// tails, and the rest split uniformly — the static scheduler's worst
/// case (its makespan is bound by the big partition no matter the
/// assignment).
fn skewed_warehouse() -> Warehouse {
    let wh = Warehouse::default();
    let schema = Arc::new(Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]));
    let n = SKEW_ROWS;
    let batch = Batch::new(
        schema.clone(),
        vec![
            Column::from_ints((0..n as i64).map(|i| (i * 7919) % 64).collect()),
            Column::from_ints((0..n as i64).map(|i| (i * 104729) % 1000).collect()),
            Column::from_floats((0..n as i64).map(|i| ((i * 31) % 997) as f64).collect()),
        ],
    )
    .unwrap();
    let tails = 8;
    let big = n * 9 / 10;
    let rest = n - big - tails;
    let mut parts = vec![Batch::empty(schema.clone()), batch.slice(0, big)];
    let small = (rest / 14).max(1);
    let mut start = big;
    while start < big + rest {
        let len = small.min(big + rest - start);
        parts.push(batch.slice(start, len));
        start += len;
    }
    parts.push(Batch::empty(schema));
    for i in 0..tails {
        parts.push(batch.slice(n - tails + i, 1));
    }
    wh.load_table_parts("skew", parts).unwrap();
    // Skew dimension for the LEFT-join case: keys 0..800 only, so fact
    // keys 800..1000 dangle and exercise the null-extended tails.
    let sd = Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("lab", DataType::Text),
        ])),
        vec![
            Column::from_ints((0..800).collect()),
            Column::from_texts((0..800).map(|i| format!("s{}", i % 25)).collect()),
        ],
    )
    .unwrap();
    wh.load_table("sd", sd).unwrap();
    wh
}

fn assert_bit_identical(a: &Batch, b: &Batch, what: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{what}");
    assert_eq!(a.num_columns(), b.num_columns(), "{what}");
    for c in 0..a.num_columns() {
        for r in 0..a.num_rows() {
            match (a.value(r, c), b.value(r, c)) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{what} at ({r},{c})")
                }
                (x, y) => assert_eq!(x, y, "{what} at ({r},{c})"),
            }
        }
    }
}

fn median_ms(wh: &Warehouse, sql: &str) -> (f64, Batch) {
    let mut times: Vec<Duration> = Vec::with_capacity(SKEW_ITERS);
    let mut last = None;
    for _ in 0..SKEW_ITERS {
        let started = Instant::now();
        let result = wh.execute_sql(sql).expect("bench query");
        times.push(started.elapsed());
        // Evict the persisted copy: 400k-row results retained across the
        // whole sweep (up to `max_persisted_results`) would put the later
        // lanes under gigabytes of memory pressure the earlier lanes never
        // saw, skewing every ratio this bench gates on.
        wh.evict_result(&result.query_id);
        last = Some(result.batch);
    }
    times.sort();
    (times[SKEW_ITERS / 2].as_secs_f64() * 1e3, last.unwrap())
}

/// Pull one `key=value` counter off the `scheduler:` line that
/// `explain_analyze` renders (satellite of the persistent-pool work: the
/// bench records how much stealing the morsel lane actually did).
fn sched_counter(analyzed: &str, key: &str) -> usize {
    analyzed
        .lines()
        .find(|l| l.trim_start().starts_with("scheduler:"))
        .and_then(|l| l.split_whitespace().find_map(|t| t.strip_prefix(key)))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no scheduler {key} in explain_analyze:\n{analyzed}"))
}

fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_secs();
    let (y, m, d) = sigma_value::calendar::civil_from_days((secs / 86_400) as i32);
    format!("{y:04}-{m:02}-{d:02}")
}

fn skewed_morsel_sweep() {
    let wh = skewed_warehouse();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut cells = String::new();
    println!("\nskewed sweep ({SKEW_ROWS} rows, 90% in one partition, median of {SKEW_ITERS} runs, {cpus} cpus)");
    println!(
        "{:<16} {:<8} {:>12} {:>12} {:>9}",
        "case", "p", "static_ms", "morsel_ms", "speedup"
    );
    // Gate kinds: "each" must individually clear 1.5x on >=4-cpu hosts;
    // "group" cases are gated collectively (at least one of the long-tail
    // trio must clear the bar); "none" is recorded for context only.
    let mut group_speedups: Vec<(&str, f64)> = Vec::new();
    for (case, sql, gate) in [
        ("filter_project", SKEW_FILTER_SQL, "each"),
        ("aggregate", SKEW_AGG_SQL, "none"),
        ("left_join", SKEW_LEFT_SQL, "group"),
        ("sort", SKEW_SORT_SQL, "group"),
        ("window", SKEW_WINDOW_SQL, "group"),
    ] {
        // Serial static run = the oracle every mode must reproduce
        // bit-for-bit (and the p1 context row in the record).
        wh.set_parallelism(1);
        wh.set_morsel_rows(None);
        let (serial_ms, oracle) = median_ms(&wh, sql);

        wh.set_parallelism(4);
        let (static_ms, static_batch) = median_ms(&wh, sql);
        wh.set_morsel_rows(Some(sigma_cdw::exec::DEFAULT_MORSEL_ROWS));
        let (morsel_ms, morsel_batch) = median_ms(&wh, sql);
        assert_bit_identical(&oracle, &static_batch, case);
        assert_bit_identical(&oracle, &morsel_batch, case);
        // One instrumented run of the morsel lane for the record: how many
        // tasks the pool dispatched and how many were stolen vs taken from
        // the worker's own queue.
        let analyzed = wh.explain_analyze(sql).expect("explain analyze");
        let (tasks, local, steals) = (
            sched_counter(&analyzed, "tasks="),
            sched_counter(&analyzed, "local="),
            sched_counter(&analyzed, "steals="),
        );

        let speedup = static_ms / morsel_ms;
        println!(
            "{case:<16} {:<8} {static_ms:>12.2} {morsel_ms:>12.2} {speedup:>8.2}x  \
             (tasks={tasks} local={local} steals={steals})",
            4
        );
        if gate == "each" && cpus >= 4 {
            assert!(
                speedup >= 1.5,
                "{case}: morsel stealing {morsel_ms:.2}ms vs static {static_ms:.2}ms \
                 (speedup {speedup:.2}x < 1.5x) on a {cpus}-cpu host"
            );
        }
        if cpus < 4 {
            // The pool clamps both lanes to the identical serial path here,
            // so anything past timer noise is a gating bug.
            assert!(
                speedup >= 0.95,
                "{case}: morsel lane {morsel_ms:.2}ms vs static {static_ms:.2}ms on a \
                 {cpus}-cpu host — the pool should have clamped both to the same \
                 serial path (speedup {speedup:.2}x < 0.95x)"
            );
        }
        if case == "left_join" {
            // The fixed regression: parallel static join assembly used to
            // cost 4.5x serial from per-cell String allocation.
            let vs_serial = static_ms / serial_ms;
            assert!(
                vs_serial <= 1.2,
                "left_join: static p4 {static_ms:.2}ms is {vs_serial:.2}x serial \
                 {serial_ms:.2}ms (> 1.2x) — the parallel-slower-than-serial join \
                 regression is back"
            );
        }
        if gate == "group" {
            group_speedups.push((case, speedup));
        }
        if !cells.is_empty() {
            cells.push_str(",\n");
        }
        cells.push_str(&format!(
            "    {{ \"case\": \"skew_{case}\", \"serial_ms\": {serial_ms:.3}, \
             \"static_p4_ms\": {static_ms:.3}, \"morsel_p4_ms\": {morsel_ms:.3}, \
             \"morsel_vs_static_speedup\": {speedup:.3}, \"gate\": \"{gate}\", \
             \"sched_tasks\": {tasks}, \"sched_local\": {local}, \
             \"sched_steals\": {steals} }}"
        ));
        wh.set_morsel_rows(None);
    }
    if cpus >= 4 {
        assert!(
            group_speedups.iter().any(|&(_, s)| s >= 1.5),
            "long-tail gate: none of {group_speedups:?} reached a 1.5x \
             morsel-vs-static speedup at p4 on a {cpus}-cpu host"
        );
    }

    let date = today();
    let json = format!(
        "{{\n  \"recorded\": \"{date}\",\n  \"note\": \"Skewed-input scaling: morsel-driven \
         work stealing vs static partition-at-a-time dispatch over {SKEW_ROWS} rows with ~90% \
         of them in a single partition (plus empty partitions and 1-row tails), median of \
         {SKEW_ITERS} runs. Every mode is asserted bit-identical to the serial static oracle. \
         Both lanes run on the shared persistent worker pool (target = host cores), so \
         below 4 cpus the pool clamps parallelism and the lanes are the identical serial \
         code path (parity gate >= 0.95x); on >= 4 cpus the streaming filter_project case \
         must show >= 1.5x morsel-vs-static speedup at parallelism 4 (gate=each) and at \
         least one of the long-tail trio left_join/sort/window must clear the same bar \
         (gate=group). On every host left_join gates static p4 <= 1.2x serial (the old \
         per-cell-allocation join regression). sched_* fields are the morsel lane's \
         scheduler counters from one instrumented run. Regenerate with: \
         cargo bench -p sigma-bench --bench scaling.\",\n  \"cpus\": {cpus},\n  \
         \"iters\": {SKEW_ITERS},\n  \"cells\": [\n{cells}\n  ]\n}}\n"
    );
    let out = std::env::var("SCALING_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_{date}_scaling.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&out, json).expect("write bench record");
    println!("recorded -> {out}");
}

criterion_group!(benches, bench_scaling);

fn main() {
    benches();
    skewed_morsel_sweep();
}
