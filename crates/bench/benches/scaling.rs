//! Aggregation / join / distinct scaling vs. the parallelism knob.
//!
//! Before the two-phase refactor only the Scan→Filter→Project prefix ran
//! partition-parallel; GROUP BY, JOIN, and DISTINCT collapsed to one
//! thread. This bench sweeps `parallelism` over a multi-partition table so
//! regressions in partition parallelism of the heavy operators show up as
//! flat (non-scaling) curves.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sigma_cdw::Warehouse;
use sigma_value::{Batch, Column, DataType, Field, Schema};

const ROWS: usize = 200_000;
/// 16 partitions: enough grain for an 8-way sweep.
const PARTITION_ROWS: usize = ROWS / 16;

const AGG_SQL: &str = "SELECT g, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a, \
                              MIN(v) AS mn, MAX(v) AS mx \
                       FROM fact GROUP BY g";
const JOIN_SQL: &str = "SELECT d.lab, COUNT(*) AS n, SUM(fact.v) AS s \
                        FROM fact JOIN d ON fact.k = d.k GROUP BY d.lab";
const DISTINCT_SQL: &str = "SELECT DISTINCT g, k FROM fact";

fn scaling_warehouse() -> Warehouse {
    let wh = Warehouse::default();
    let schema = Arc::new(Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]));
    // Deterministic pseudo-random-ish distribution (no RNG dependency).
    let fact = Batch::new(
        schema,
        vec![
            Column::from_ints((0..ROWS as i64).map(|i| (i * 7919) % 64).collect()),
            Column::from_ints((0..ROWS as i64).map(|i| (i * 104729) % 1000).collect()),
            Column::from_floats((0..ROWS as i64).map(|i| ((i * 31) % 997) as f64).collect()),
        ],
    )
    .unwrap();
    wh.load_table_partitioned("fact", fact, PARTITION_ROWS)
        .unwrap();
    let dim = Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("lab", DataType::Text),
        ])),
        vec![
            Column::from_ints((0..1000).collect()),
            Column::from_texts((0..1000).map(|i| format!("d{}", i % 25)).collect()),
        ],
    )
    .unwrap();
    wh.load_table("d", dim).unwrap();
    wh
}

fn bench_scaling(c: &mut Criterion) {
    let wh = scaling_warehouse();
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));
    for (name, sql) in [
        ("aggregate", AGG_SQL),
        ("join_agg", JOIN_SQL),
        ("distinct", DISTINCT_SQL),
    ] {
        for threads in [1usize, 2, 4, 8] {
            wh.set_parallelism(threads);
            group.bench_with_input(
                BenchmarkId::new(name, format!("p{threads}")),
                &threads,
                |b, _| b.iter(|| wh.execute_sql(sql).unwrap()),
            );
        }
        wh.set_parallelism(1);
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
