//! E6: workload management — N concurrent browsers against one warehouse
//! with a fixed admission limit; collaborative identical queries coalesce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigma_bench::Env;
use sigma_service::workload::Priority;
use sigma_service::QueryRequest;
use sigma_workbook::demo;

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(10);
    let env = Env::new(20_000);
    let wb = demo::cohort_workbook();
    let json = wb.to_json().unwrap();
    for users in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("concurrent_users", users),
            &users,
            |b, &n| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for i in 0..n {
                            let env = &env;
                            let json = &json;
                            scope.spawn(move || {
                                // Vary the element per user so half the fleet
                                // coalesces and half computes.
                                let element = if i % 2 == 0 {
                                    "Flights"
                                } else {
                                    "Cohort Chart"
                                };
                                env.service
                                    .run_query(&QueryRequest {
                                        token: &env.token,
                                        connection: "primary",
                                        workbook_json: json,
                                        element,
                                        priority: Priority::Interactive,
                                    })
                                    .unwrap();
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
