//! E4: the §4 caching hierarchy — cold warehouse execution vs. browser
//! cache vs. query directory vs. materialized element.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_bench::Env;
use sigma_browser::BrowserSession;
use sigma_workbook::demo;

fn bench_caching(c: &mut Criterion) {
    let env = Env::new(50_000);
    let wb = demo::cohort_workbook();
    let mut group = c.benchmark_group("caching");
    group.sample_size(10);

    // Cold-ish: a fresh session each time still hits the directory, so
    // measure the raw warehouse path by re-executing the SQL directly.
    let sql = env.compile(&wb, "Flights");
    group.bench_function("warehouse_execute", |b| {
        b.iter(|| env.warehouse.execute_sql(&sql).unwrap())
    });

    // Query directory: new tab, same state.
    group.bench_function("query_directory", |b| {
        b.iter_batched(
            || {
                let tab = BrowserSession::new(env.service.clone(), env.token.clone(), "primary")
                    .with_network_latency(Duration::ZERO);
                // someone else already ran it
                tab.query_element(&wb, "Flights").unwrap();
                BrowserSession::new(env.service.clone(), env.token.clone(), "primary")
            },
            |tab| tab.query_element(&wb, "Flights").unwrap(),
            criterion::BatchSize::PerIteration,
        )
    });

    // Browser cache: same tab, repeat.
    let tab = BrowserSession::new(env.service.clone(), env.token.clone(), "primary");
    tab.query_element(&wb, "Flights").unwrap();
    group.bench_function("browser_cache", |b| {
        b.iter(|| tab.query_element(&wb, "Flights").unwrap())
    });

    // Materialized: substitute and re-run the dependent viz element.
    env.service
        .materialize_element(&env.token, "primary", &wb, "Flights", None)
        .unwrap();
    let mat_sql = env.compile(&wb, "Cohort Chart");
    assert!(mat_sql.contains("mat_flights"));
    group.bench_function("materialized_downstream", |b| {
        b.iter(|| env.warehouse.execute_sql(&mat_sql).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_caching);
criterion_main!(benches);
