//! The **spill bench**: throughput of the memory-budgeted out-of-core
//! operators (spilling aggregation, external merge sort, Grace hash
//! join) across budget levels, from unbounded (pure in-memory) down to
//! budgets forcing wide multi-bucket spills.
//!
//! Doubles as a regression gate: at every budget level each query's
//! result must be **bit-identical** to the unbounded run, small budgets
//! must actually spill (nonzero bytes, ≥2 rounds), and the unbounded run
//! must spill nothing.
//!
//! Results are written to `BENCH_<date>_spill.json` at the repo root
//! (override the path with `SPILL_BENCH_OUT`). Run with:
//!
//! ```text
//! cargo bench -p sigma-bench --bench spill
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use sigma_cdw::Warehouse;
use sigma_value::{Batch, Column, DataType, Field, Schema, Value};

const ROWS: usize = 200_000;
const PARTITION_ROWS: usize = ROWS / 16;
const ITERS: usize = 5;

/// Budget levels swept per query (`None` = unbounded in-memory). The
/// bool marks levels small enough that every case *must* spill (4 MiB is
/// the "roomy" level: some operators still fit after projection pruning,
/// which is itself worth seeing in the curve).
const BUDGETS: &[(&str, Option<usize>, bool)] = &[
    ("unbounded", None, false),
    ("4MiB", Some(4 << 20), false),
    ("256KiB", Some(256 << 10), true),
    ("16KiB", Some(16 << 10), true),
];

const CASES: &[(&str, &str)] = &[
    (
        "aggregate",
        "SELECT g, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a, MIN(v) AS mn, MAX(v) AS mx \
         FROM fact GROUP BY g",
    ),
    ("sort", "SELECT g, k, v FROM fact ORDER BY v DESC, k, g"),
    (
        "join",
        "SELECT d.lab, COUNT(*) AS n, SUM(fact.v) AS s \
         FROM fact JOIN d ON fact.k = d.k GROUP BY d.lab",
    ),
];

fn warehouse() -> Warehouse {
    let wh = Warehouse::default();
    let schema = Arc::new(Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]));
    // Deterministic pseudo-random-ish distribution (no RNG dependency).
    let fact = Batch::new(
        schema,
        vec![
            Column::from_ints((0..ROWS as i64).map(|i| (i * 7919) % 512).collect()),
            Column::from_ints((0..ROWS as i64).map(|i| (i * 104729) % 20_000).collect()),
            Column::from_floats((0..ROWS as i64).map(|i| ((i * 31) % 997) as f64).collect()),
        ],
    )
    .unwrap();
    wh.load_table_partitioned("fact", fact, PARTITION_ROWS)
        .unwrap();
    // A build side big enough that realistic budgets force Grace rounds.
    let dim = Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("lab", DataType::Text),
        ])),
        vec![
            Column::from_ints((0..20_000).collect()),
            Column::from_texts((0..20_000).map(|i| format!("d{}", i % 40)).collect()),
        ],
    )
    .unwrap();
    wh.load_table("d", dim).unwrap();
    wh
}

fn assert_bit_identical(a: &Batch, b: &Batch, what: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{what}");
    assert_eq!(a.num_columns(), b.num_columns(), "{what}");
    for c in 0..a.num_columns() {
        for r in 0..a.num_rows() {
            match (a.value(r, c), b.value(r, c)) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{what} at ({r},{c})")
                }
                (x, y) => assert_eq!(x, y, "{what} at ({r},{c})"),
            }
        }
    }
}

struct Sample {
    ms: f64,
    spilled_bytes: usize,
    spill_rounds: usize,
}

fn median_run(wh: &Warehouse, sql: &str) -> (Sample, Batch) {
    let mut times: Vec<Duration> = Vec::with_capacity(ITERS);
    let mut last = None;
    let mut spilled = (0usize, 0usize);
    for _ in 0..ITERS {
        let started = Instant::now();
        let result = wh.execute_sql(sql).expect("bench query");
        times.push(started.elapsed());
        spilled = (result.spilled_bytes, result.spill_rounds);
        last = Some(result.batch);
    }
    times.sort();
    (
        Sample {
            ms: times[ITERS / 2].as_secs_f64() * 1e3,
            spilled_bytes: spilled.0,
            spill_rounds: spilled.1,
        },
        last.unwrap(),
    )
}

fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_secs();
    let (y, m, d) = sigma_value::calendar::civil_from_days((secs / 86_400) as i32);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let wh = warehouse();
    let mut rows_json = String::new();
    println!("spill bench ({ROWS} rows, median of {ITERS} runs per cell)");
    println!(
        "{:<10} {:<10} {:>10} {:>12} {:>14} {:>8}",
        "case", "budget", "ms", "rows/s", "spilled_bytes", "rounds"
    );
    for (case, sql) in CASES {
        let mut oracle: Option<Batch> = None;
        for (label, budget, must_spill) in BUDGETS {
            wh.set_memory_budget(*budget);
            let (sample, batch) = median_run(&wh, sql);
            let throughput = ROWS as f64 / (sample.ms / 1e3);
            println!(
                "{:<10} {:<10} {:>10.2} {:>12.0} {:>14} {:>8}",
                case, label, sample.ms, throughput, sample.spilled_bytes, sample.spill_rounds
            );
            match &oracle {
                None => {
                    // The unbounded baseline: must not touch disk.
                    assert_eq!(sample.spilled_bytes, 0, "{case}: unbounded run spilled");
                    assert_eq!(sample.spill_rounds, 0, "{case}: unbounded run spilled");
                    oracle = Some(batch);
                }
                Some(oracle) => {
                    // Budgeted runs must match bit-for-bit; tight budgets
                    // must actually spill, in multiple rounds.
                    if *must_spill {
                        assert!(
                            sample.spilled_bytes > 0,
                            "{case} @ {label}: budget did not force a spill"
                        );
                        assert!(
                            sample.spill_rounds >= 2,
                            "{case} @ {label}: expected multi-round spilling"
                        );
                    }
                    assert_bit_identical(oracle, &batch, &format!("{case} @ {label}"));
                }
            }
            if !rows_json.is_empty() {
                rows_json.push_str(",\n");
            }
            rows_json.push_str(&format!(
                "    {{ \"case\": \"{case}\", \"budget\": \"{label}\", \"ms\": {:.3}, \
                 \"rows_per_s\": {:.0}, \"spilled_bytes\": {}, \"spill_rounds\": {} }}",
                sample.ms, throughput, sample.spilled_bytes, sample.spill_rounds
            ));
        }
        wh.set_memory_budget(None);
    }

    let date = today();
    let json = format!(
        "{{\n  \"recorded\": \"{date}\",\n  \"note\": \"Memory-budgeted out-of-core execution: \
         spilling aggregation / external merge sort / Grace hash join over {ROWS} synthetic rows \
         ({} partitions), median of {ITERS} runs per (case, budget). Every budgeted run is \
         asserted bit-identical to the unbounded in-memory run and must report nonzero \
         spilled_bytes with >=2 spill_rounds; the unbounded run must report zero. Regenerate \
         with: cargo bench -p sigma-bench --bench spill.\",\n  \"rows\": {ROWS},\n  \
         \"iters\": {ITERS},\n  \"cells\": [\n{rows_json}\n  ]\n}}\n",
        ROWS / PARTITION_ROWS
    );
    let out = std::env::var("SPILL_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_{date}_spill.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&out, json).expect("write bench record");
    println!("\nrecorded -> {out}");
}
