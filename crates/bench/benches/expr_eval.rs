//! The **expression-evaluation bench**: typed columnar kernels +
//! selection vectors vs the boxed-`Value` row interpreter, over an
//! expression-heavy filter→project pipeline.
//!
//! Both paths compute the identical pipeline:
//!
//! 1. evaluate a compound numeric predicate over the input batch,
//! 2. keep the surviving rows (vectorized: a selection vector; the
//!    interpreter: materialize the filtered batch),
//! 3. evaluate three projection expressions over the survivors.
//!
//! Doubles as a regression gate: the vectorized result must be
//! bit-identical to the interpreter's, and the numeric pipeline must run
//! at **>= 2x** the interpreter's row throughput (the acceptance bar the
//! vectorized engine ships under).
//!
//! Results are written to `BENCH_<date>_expr_eval.json` at the repo root
//! (override the path with `EXPR_EVAL_BENCH_OUT`). Run with:
//!
//! ```text
//! cargo bench -p sigma-bench --bench expr_eval
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use sigma_cdw::eval::{eval_interp, BinOp, CompiledExpr, EvalCtx, PhysExpr, ScalarFunc};
use sigma_value::{Batch, Column, DataType, Field, Schema, Value};

const ROWS: usize = 400_000;
const ITERS: usize = 7;

fn col(i: usize) -> PhysExpr {
    PhysExpr::Col(i)
}

fn lit(v: impl Into<Value>) -> PhysExpr {
    PhysExpr::Literal(v.into())
}

fn bin(op: BinOp, l: PhysExpr, r: PhysExpr) -> PhysExpr {
    PhysExpr::Binary {
        op,
        left: Box::new(l),
        right: Box::new(r),
    }
}

fn batch() -> Batch {
    let schema = Arc::new(Schema::new(vec![
        Field::new("i", DataType::Int),
        Field::new("j", DataType::Int),
        Field::new("f", DataType::Float),
        Field::new("s", DataType::Text),
    ]));
    // Deterministic pseudo-random-ish distribution (no RNG dependency);
    // j carries ~6% nulls so the validity-bitmap paths are exercised.
    let words = ["alpha", "beta", "gamma", "delta", "a%b", "x_y", ""];
    Batch::new(
        schema,
        vec![
            Column::from_ints((0..ROWS as i64).map(|i| (i * 7919) % 10_000).collect()),
            Column::from_opt_ints(
                (0..ROWS as i64)
                    .map(|i| ((i * 104_729) % 17 != 0).then(|| (i * 31) % 1_000))
                    .collect(),
            ),
            Column::from_floats(
                (0..ROWS as i64)
                    .map(|i| ((i * 131) % 9_973) as f64 / 3.0 - 1_500.0)
                    .collect(),
            ),
            Column::from_texts(
                (0..ROWS)
                    .map(|i| words[(i * 23) % words.len()].to_string())
                    .collect(),
            ),
        ],
    )
    .unwrap()
}

struct Pipeline {
    name: &'static str,
    predicate: PhysExpr,
    projections: Vec<PhysExpr>,
}

fn pipelines() -> Vec<Pipeline> {
    // (i * 3 + j) % 7 > 2 AND f * 0.5 + i < 4000
    let numeric_pred = bin(
        BinOp::And,
        bin(
            BinOp::Gt,
            bin(
                BinOp::Mod,
                bin(BinOp::Add, bin(BinOp::Mul, col(0), lit(3i64)), col(1)),
                lit(7i64),
            ),
            lit(2i64),
        ),
        bin(
            BinOp::Lt,
            bin(BinOp::Add, bin(BinOp::Mul, col(2), lit(0.5f64)), col(0)),
            lit(4_000i64),
        ),
    );
    // i + j * 2 | f * 1.5 + i | (i % 10) BETWEEN 2 AND 7
    let numeric_projs = vec![
        bin(BinOp::Add, col(0), bin(BinOp::Mul, col(1), lit(2i64))),
        bin(BinOp::Add, bin(BinOp::Mul, col(2), lit(1.5f64)), col(0)),
        PhysExpr::Between {
            expr: Box::new(bin(BinOp::Mod, col(0), lit(10i64))),
            low: Box::new(lit(2i64)),
            high: Box::new(lit(7i64)),
            negated: false,
        },
    ];
    // s LIKE '%a%' AND i < 8000, projecting UPPER(s), LENGTH(s), CASE.
    let string_pred = bin(
        BinOp::And,
        PhysExpr::Like {
            expr: Box::new(col(3)),
            pattern: Box::new(lit("%a%")),
            negated: false,
        },
        bin(BinOp::Lt, col(0), lit(8_000i64)),
    );
    let string_projs = vec![
        PhysExpr::Func {
            func: ScalarFunc::Upper,
            args: vec![col(3)],
        },
        PhysExpr::Func {
            func: ScalarFunc::Length,
            args: vec![col(3)],
        },
        PhysExpr::Case {
            operand: None,
            whens: vec![(
                bin(BinOp::Gt, col(0), lit(5_000i64)),
                bin(BinOp::Concat, col(3), lit("!")),
            )],
            else_: Some(Box::new(col(3))),
        },
    ];
    vec![
        Pipeline {
            name: "numeric",
            predicate: numeric_pred,
            projections: numeric_projs,
        },
        Pipeline {
            name: "string",
            predicate: string_pred,
            projections: string_projs,
        },
    ]
}

/// Vectorized engine: compile once, evaluate the predicate dense, thread
/// a selection vector into the projections (no intermediate batch).
fn run_vectorized(p: &Pipeline, batch: &Batch, ctx: &EvalCtx) -> Vec<Column> {
    let types: Vec<DataType> = batch.schema().fields().iter().map(|f| f.dtype).collect();
    let pred = CompiledExpr::compile(&p.predicate, &types).unwrap();
    let projs: Vec<CompiledExpr> = p
        .projections
        .iter()
        .map(|e| CompiledExpr::compile(e, &types).unwrap())
        .collect();
    let mask = pred.eval(batch, None, ctx).unwrap();
    let (bools, validity) = (mask.bools().unwrap(), mask.validity());
    let mut sel = Vec::new();
    for i in 0..mask.len() {
        if bools[i] && validity.is_none_or(|m| m[i]) {
            sel.push(i);
        }
    }
    projs
        .iter()
        .map(|e| e.eval(batch, Some(&sel), ctx).unwrap())
        .collect()
}

/// Row interpreter: per-cell `Value` dispatch, filtered batch
/// materialized between the stages.
fn run_interpreter(p: &Pipeline, batch: &Batch, ctx: &EvalCtx) -> Vec<Column> {
    let mask_col = eval_interp(&p.predicate, batch, ctx).unwrap();
    let mask: Vec<bool> = (0..batch.num_rows())
        .map(|i| mask_col.value(i) == Value::Bool(true))
        .collect();
    let filtered = batch.filter(&mask);
    p.projections
        .iter()
        .map(|e| eval_interp(e, &filtered, ctx).unwrap())
        .collect()
}

fn assert_bit_identical(a: &[Column], b: &[Column], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}");
    for (ca, cb) in a.iter().zip(b) {
        assert_eq!(ca.dtype(), cb.dtype(), "{what}");
        assert_eq!(ca.len(), cb.len(), "{what}");
        for i in 0..ca.len() {
            match (ca.value(i), cb.value(i)) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{what} row {i}")
                }
                (x, y) => assert_eq!(x, y, "{what} row {i}"),
            }
        }
    }
}

fn median_ms(mut f: impl FnMut() -> Vec<Column>) -> (f64, Vec<Column>) {
    let mut times: Vec<Duration> = Vec::with_capacity(ITERS);
    let mut last = Vec::new();
    for _ in 0..ITERS {
        let started = Instant::now();
        last = f();
        times.push(started.elapsed());
    }
    times.sort();
    (times[ITERS / 2].as_secs_f64() * 1e3, last)
}

fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_secs();
    let (y, m, d) = sigma_value::calendar::civil_from_days((secs / 86_400) as i32);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let batch = batch();
    let ctx = EvalCtx::default();
    let mut rows_json = String::new();
    println!("expr_eval bench ({ROWS} rows, median of {ITERS} runs per cell)");
    println!(
        "{:<10} {:<14} {:>10} {:>14} {:>9}",
        "pipeline", "engine", "ms", "rows/s", "speedup"
    );
    for p in pipelines() {
        let (interp_ms, interp_out) = median_ms(|| run_interpreter(&p, &batch, &ctx));
        let (vec_ms, vec_out) = median_ms(|| run_vectorized(&p, &batch, &ctx));
        assert_bit_identical(&vec_out, &interp_out, p.name);
        let interp_rps = ROWS as f64 / (interp_ms / 1e3);
        let vec_rps = ROWS as f64 / (vec_ms / 1e3);
        let speedup = vec_rps / interp_rps;
        println!(
            "{:<10} {:<14} {:>10.2} {:>14.0} {:>9}",
            p.name, "interpreter", interp_ms, interp_rps, "1.0x"
        );
        println!(
            "{:<10} {:<14} {:>10.2} {:>14.0} {:>8.1}x",
            p.name, "vectorized", vec_ms, vec_rps, speedup
        );
        if p.name == "numeric" {
            // Acceptance bar: the vectorized numeric filter+project
            // pipeline must at least double interpreter throughput.
            assert!(
                speedup >= 2.0,
                "numeric pipeline speedup {speedup:.2}x < 2x acceptance bar"
            );
        }
        if !rows_json.is_empty() {
            rows_json.push_str(",\n");
        }
        rows_json.push_str(&format!(
            "    {{ \"pipeline\": \"{}\", \"interpreter_ms\": {:.3}, \"vectorized_ms\": {:.3}, \
             \"interpreter_rows_per_s\": {:.0}, \"vectorized_rows_per_s\": {:.0}, \
             \"speedup\": {:.2} }}",
            p.name, interp_ms, vec_ms, interp_rps, vec_rps, speedup
        ));
    }

    let date = today();
    let json = format!(
        "{{\n  \"recorded\": \"{date}\",\n  \"note\": \"Vectorized expression engine (typed \
         columnar kernels + selection vectors) vs the boxed-Value row interpreter over an \
         expression-heavy filter+project pipeline on {ROWS} synthetic rows, median of {ITERS} \
         runs. Outputs are asserted bit-identical; the numeric pipeline must clear a 2x speedup \
         acceptance bar. Regenerate with: cargo bench -p sigma-bench --bench expr_eval.\",\n  \
         \"rows\": {ROWS},\n  \"iters\": {ITERS},\n  \"cells\": [\n{rows_json}\n  ]\n}}\n",
    );
    let out = std::env::var("EXPR_EVAL_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_{date}_expr_eval.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&out, json).expect("write bench record");
    println!("\nrecorded -> {out}");
}
