//! Shared helpers for the benchmark harness: scenario runners used by both
//! the Criterion benches and the `experiments` binary that regenerates the
//! EXPERIMENTS.md tables.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sigma_cdw::Warehouse;
use sigma_core::Workbook;
use sigma_service::workload::Priority;
use sigma_service::{QueryRequest, SigmaService};
use sigma_workbook::demo;

/// Row-count sweep used by the scenario experiments.
pub const SWEEP: &[usize] = &[10_000, 50_000, 200_000];

/// One prepared scenario environment.
pub struct Env {
    pub warehouse: Arc<Warehouse>,
    pub service: Arc<SigmaService>,
    pub token: String,
}

impl Env {
    pub fn new(rows: usize) -> Env {
        let warehouse = demo::demo_warehouse(rows);
        let (service, token) = demo::demo_service(warehouse.clone());
        Env {
            warehouse,
            service,
            token,
        }
    }

    /// Run one element query through the full service path; returns
    /// (rows, elapsed).
    pub fn run(&self, wb: &Workbook, element: &str) -> (usize, Duration) {
        let json = wb.to_json().expect("workbook serializes");
        let started = Instant::now();
        let outcome = self
            .service
            .run_query(&QueryRequest {
                token: &self.token,
                connection: "primary",
                workbook_json: &json,
                element,
                priority: Priority::Interactive,
            })
            .expect("query runs");
        (outcome.batch.num_rows(), started.elapsed())
    }

    /// Compile-only path (no execution).
    pub fn compile(&self, wb: &Workbook, element: &str) -> String {
        let user = self
            .service
            .tenancy
            .authenticate(&self.token)
            .expect("token valid");
        self.service
            .compile(&user, "primary", wb, element)
            .expect("compiles")
            .sql
    }
}

/// Milliseconds with two decimals, for table printing.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Median of several timed runs of `f`.
pub fn median_time(iters: usize, mut f: impl FnMut()) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}
