//! Regenerates every experiment table recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p sigma-bench --bin experiments
//! ```

use std::time::Duration;

use sigma_bench::{median_time, ms, Env};
use sigma_browser::{BrowserSession, PrefetchPolicy, Source};
use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, Level, TableSpec};
use sigma_core::Workbook;
use sigma_service::workload::Priority;
use sigma_service::QueryRequest;
use sigma_workbook::demo;

fn main() {
    println!("# Sigma Workbook reproduction — experiment harness\n");
    e1_e2_e3_scenarios();
    e4_caching();
    e5_local_eval();
    e6_workload();
    e7_compiler();
    e8_engine();
}

fn e1_e2_e3_scenarios() {
    println!("## E1-E3: scenario latency sweep (median of 5, full service path)\n");
    println!("| rows | E1 cohort (ms) | E2 sessionization (ms) | E3 augmentation (ms) |");
    println!("|---|---|---|---|");
    for &rows in &[10_000usize, 50_000, 200_000] {
        let env = Env::new(rows);
        let cohort = demo::cohort_workbook();
        let session = demo::sessionization_workbook();
        let mut aug = demo::augmentation_workbook();
        env.service
            .project_input_table(&env.token, "primary", &mut aug, "Airport Info")
            .unwrap();
        // The service directory would cache identical queries; run through
        // the warehouse directly for honest compute numbers.
        let cohort_sql = env.compile(&cohort, "Flights");
        let session_sql = env.compile(&session, "Service Life");
        let aug_sql = env.compile(&aug, "Flights");
        let t1 = median_time(5, || {
            env.warehouse.execute_sql(&cohort_sql).unwrap();
        });
        let t2 = median_time(5, || {
            env.warehouse.execute_sql(&session_sql).unwrap();
        });
        let t3 = median_time(5, || {
            env.warehouse.execute_sql(&aug_sql).unwrap();
        });
        println!("| {rows} | {} | {} | {} |", ms(t1), ms(t2), ms(t3));
    }
    println!();
}

fn e4_caching() {
    println!("## E4: caching hierarchy (cohort element, 50k rows)\n");
    let env = Env::new(50_000);
    let wb = demo::cohort_workbook();
    let json = wb.to_json().unwrap();
    let run_service = |env: &Env| {
        env.service
            .run_query(&QueryRequest {
                token: &env.token,
                connection: "primary",
                workbook_json: &json,
                element: "Flights",
                priority: Priority::Interactive,
            })
            .unwrap()
    };

    let sql = env.compile(&wb, "Flights");
    let cold = median_time(5, || {
        env.warehouse.execute_sql(&sql).unwrap();
    });

    run_service(&env); // warm the directory
    let queries_before = env.warehouse.queries_executed();
    let directory = median_time(5, || {
        let out = run_service(&env);
        assert_eq!(out.served_from, sigma_service::ServedFrom::QueryDirectory);
    });
    let extra_queries = env.warehouse.queries_executed() - queries_before;

    let tab = BrowserSession::new(env.service.clone(), env.token.clone(), "primary");
    tab.query_element(&wb, "Flights").unwrap();
    let browser = median_time(5, || {
        let out = tab.query_element(&wb, "Flights").unwrap();
        assert_eq!(out.source, Source::BrowserCache);
    });

    env.service
        .materialize_element(&env.token, "primary", &wb, "Flights", None)
        .unwrap();
    let downstream_sql = env.compile(&wb, "Cohort Chart");
    let materialized = median_time(5, || {
        env.warehouse.execute_sql(&downstream_sql).unwrap();
    });

    println!("| source | latency (ms) | warehouse queries issued |");
    println!("|---|---|---|");
    println!(
        "| cold warehouse execution | {} | 1 per request |",
        ms(cold)
    );
    println!(
        "| query directory (2nd level) | {} | {extra_queries} (result re-served by id) |",
        ms(directory)
    );
    println!("| browser cache (1st level) | {} | 0 |", ms(browser));
    println!(
        "| downstream of materialized element | {} | 1 (scans mat table, skips recompute) |",
        ms(materialized)
    );
    println!();
}

fn e5_local_eval() {
    println!("## E5: in-browser evaluation vs. round trip (airports dimension)\n");
    let env = Env::new(20_000);
    let mut wb = Workbook::new(Some("dims"));
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "airports".into(),
    });
    t.add_column(ColumnDef::source("State", "state")).unwrap();
    t.add_level(1, Level::keyed("By State", vec!["State".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Airports", "Count()", 1))
        .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "ByState", ElementKind::Table(t)).unwrap();

    println!("| path | simulated RTT (ms) | latency (ms) |");
    println!("|---|---|---|");
    for rtt in [0u64, 25, 50] {
        let tab = BrowserSession::new(env.service.clone(), env.token.clone(), "primary")
            .with_network_latency(Duration::from_millis(rtt));
        let time = median_time(3, || {
            tab.cache.invalidate_element("ByState");
            tab.query_element(&wb, "ByState").unwrap();
        });
        println!("| service round trip | {rtt} | {} |", ms(time));
    }
    let tab = BrowserSession::new(env.service.clone(), env.token.clone(), "primary");
    let fetched = tab.prefetch(&env.warehouse, &PrefetchPolicy::default());
    let time = median_time(5, || {
        tab.cache.invalidate_element("ByState");
        // Each evaluation seeds the stage cache, which would turn the
        // next iteration into the delta fast path; clear it so this row
        // keeps measuring full local-engine evaluation.
        tab.local.clear_stages();
        let out = tab.query_element(&wb, "ByState").unwrap();
        assert_eq!(out.source, Source::LocalEngine);
    });
    println!(
        "| local engine (prefetched: {fetched:?}) | n/a | {} |",
        ms(time)
    );
    println!();
}

fn e6_workload() {
    println!("## E6: workload management (16 users, cohort workbook, 20k rows)\n");
    println!("| admission limit | total wall (ms) | max queue wait (ms) | coalesced |");
    println!("|---|---|---|---|");
    for limit in [1usize, 4, 16] {
        let warehouse = demo::demo_warehouse(20_000);
        let service = sigma_service::SigmaService::new().with_concurrency(limit);
        let org = service.tenancy.create_org("acme");
        let user = service
            .tenancy
            .create_user(org, "u", sigma_service::tenancy::Role::Creator)
            .unwrap();
        let token = service.tenancy.issue_token(user).unwrap();
        service.add_connection(org, "primary", warehouse);
        let service = std::sync::Arc::new(service);
        let wb = demo::cohort_workbook();
        let json = wb.to_json().unwrap();
        let started = std::time::Instant::now();
        std::thread::scope(|scope| {
            for i in 0..16 {
                let service = service.clone();
                let token = token.clone();
                let json = json.clone();
                scope.spawn(move || {
                    let element = if i % 2 == 0 {
                        "Flights"
                    } else {
                        "Cohort Chart"
                    };
                    service
                        .run_query(&QueryRequest {
                            token: &token,
                            connection: "primary",
                            workbook_json: &json,
                            element,
                            priority: Priority::Interactive,
                        })
                        .unwrap();
                });
            }
        });
        let wall = started.elapsed();
        let wl = service.workload_stats("primary").unwrap();
        let dir = service.directory_stats("primary").unwrap();
        println!(
            "| {limit} | {} | {} | {} |",
            ms(wall),
            ms(wl.max_wait),
            dir.coalesced + dir.hits
        );
    }
    println!();
}

fn e7_compiler() {
    println!("## E7: compiler throughput (compile only, median of 20)\n");
    let env = Env::new(1_000);
    println!("| workbook | compile (ms) | SQL bytes |");
    println!("|---|---|---|");
    let cohort = demo::cohort_workbook();
    let session = demo::sessionization_workbook();
    for (name, wb, el) in [
        (
            "scenario 1 (rollup + 3 levels + cross-level)",
            &cohort,
            "Flights",
        ),
        (
            "scenario 2 (window-over-window, 2 elements)",
            &session,
            "Service Life",
        ),
    ] {
        let sql = env.compile(wb, el);
        let t = median_time(20, || {
            env.compile(wb, el);
        });
        println!("| {name} | {} | {} |", ms(t), sql.len());
    }
    println!();
}

fn e8_engine() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("## E8: engine scaling (scan+filter, median of 5; {cores} cores available)\n");
    println!("| rows | threads | latency (ms) | speedup |");
    println!("|---|---|---|---|");
    // Filter-heavy so the partition-parallel stage dominates (aggregation
    // of the tiny filtered remainder is serial).
    const SQL: &str = "SELECT COUNT(*) AS n FROM flights \
                       WHERE CONTAINS(origin, 'A') AND dep_delay * 2.0 + Abs(dep_delay) > 60.0";
    let mut sweep = vec![1usize];
    if cores >= 2 {
        sweep.push(2);
    }
    if cores >= 4 {
        sweep.push(4);
    }
    for &rows in &[200_000usize, 1_000_000] {
        let env = Env::new(rows);
        let mut base = Duration::ZERO;
        for &threads in &sweep {
            env.warehouse.set_parallelism(threads);
            let t = median_time(5, || {
                env.warehouse.execute_sql(SQL).unwrap();
            });
            if threads == 1 {
                base = t;
            }
            println!(
                "| {rows} | {threads} | {} | {:.2}x |",
                ms(t),
                base.as_secs_f64() / t.as_secs_f64()
            );
        }
    }
    println!();
}
