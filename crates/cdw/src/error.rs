//! Warehouse error type.

use std::fmt;

use sigma_sql::SqlParseError;
use sigma_value::ValueError;

/// Errors from planning or executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CdwError {
    /// SQL text failed to parse.
    Parse(SqlParseError),
    /// Name resolution or semantic analysis failed.
    Plan(String),
    /// Runtime failure (type errors surfacing at execution, bad casts...).
    Execution(String),
    /// Catalog object missing or duplicated.
    Catalog(String),
    /// Underlying columnar-layer error.
    Value(ValueError),
}

impl fmt::Display for CdwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdwError::Parse(e) => write!(f, "{e}"),
            CdwError::Plan(m) => write!(f, "plan error: {m}"),
            CdwError::Execution(m) => write!(f, "execution error: {m}"),
            CdwError::Catalog(m) => write!(f, "catalog error: {m}"),
            CdwError::Value(e) => write!(f, "value error: {e}"),
        }
    }
}

impl std::error::Error for CdwError {}

impl From<SqlParseError> for CdwError {
    fn from(e: SqlParseError) -> Self {
        CdwError::Parse(e)
    }
}

impl From<ValueError> for CdwError {
    fn from(e: ValueError) -> Self {
        CdwError::Value(e)
    }
}

impl CdwError {
    pub fn plan(msg: impl Into<String>) -> CdwError {
        CdwError::Plan(msg.into())
    }

    pub fn exec(msg: impl Into<String>) -> CdwError {
        CdwError::Execution(msg.into())
    }

    pub fn catalog(msg: impl Into<String>) -> CdwError {
        CdwError::Catalog(msg.into())
    }
}
