//! The warehouse catalog: named tables and their metadata.
//!
//! Names are case-insensitive, matching the default collation of the
//! warehouses Sigma targets. The catalog also tracks lightweight statistics
//! (row counts, per-column distinct estimates) that the browser prefetch
//! policy consults (paper §4: "lower cardinality tables" can be fully
//! fetched and evaluated locally).

use std::collections::HashMap;
use std::sync::Arc;

use sigma_value::{Batch, Schema};

use crate::error::CdwError;
use crate::storage::{StoredTable, DEFAULT_PARTITION_ROWS};

/// Per-table statistics maintained on write.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: usize,
    pub byte_size: usize,
    /// Exact distinct counts per column, recomputed lazily on request.
    pub distinct_counts: Option<Vec<usize>>,
}

/// A catalog of stored tables.
#[derive(Debug, Default)]
pub struct Catalog {
    /// Keyed by lower-cased table name.
    tables: HashMap<String, StoredTable>,
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&key(name))
    }

    pub fn get(&self, name: &str) -> Result<&StoredTable, CdwError> {
        self.tables
            .get(&key(name))
            .ok_or_else(|| CdwError::catalog(format!("table not found: {name}")))
    }

    pub fn get_mut(&mut self, name: &str) -> Result<&mut StoredTable, CdwError> {
        self.tables
            .get_mut(&key(name))
            .ok_or_else(|| CdwError::catalog(format!("table not found: {name}")))
    }

    /// Register an empty table.
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Arc<Schema>,
        if_not_exists: bool,
    ) -> Result<(), CdwError> {
        if self.contains(name) {
            if if_not_exists {
                return Ok(());
            }
            return Err(CdwError::catalog(format!("table already exists: {name}")));
        }
        self.tables.insert(key(name), StoredTable::empty(schema));
        Ok(())
    }

    /// Register a table from a batch, partitioning it for parallel scans.
    pub fn create_table_from_batch(
        &mut self,
        name: &str,
        batch: Batch,
        or_replace: bool,
    ) -> Result<(), CdwError> {
        self.create_table_from_batch_partitioned(name, batch, or_replace, DEFAULT_PARTITION_ROWS)
    }

    /// Register a table from explicit (possibly skewed) partitions.
    pub fn create_table_from_parts(
        &mut self,
        name: &str,
        parts: Vec<Batch>,
        or_replace: bool,
    ) -> Result<(), CdwError> {
        if self.contains(name) && !or_replace {
            return Err(CdwError::catalog(format!("table already exists: {name}")));
        }
        self.tables
            .insert(key(name), StoredTable::from_parts(parts)?);
        Ok(())
    }

    /// Register a table from a batch with an explicit partition size.
    pub fn create_table_from_batch_partitioned(
        &mut self,
        name: &str,
        batch: Batch,
        or_replace: bool,
        partition_rows: usize,
    ) -> Result<(), CdwError> {
        if self.contains(name) && !or_replace {
            return Err(CdwError::catalog(format!("table already exists: {name}")));
        }
        self.tables
            .insert(key(name), StoredTable::from_batch(batch, partition_rows));
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<(), CdwError> {
        if self.tables.remove(&key(name)).is_none() && !if_exists {
            return Err(CdwError::catalog(format!("table not found: {name}")));
        }
        Ok(())
    }

    /// Current statistics for a table (recomputes distincts on each call;
    /// callers cache as needed).
    pub fn stats(&self, name: &str) -> Result<TableStats, CdwError> {
        let table = self.get(name)?;
        let batch = table.to_batch();
        let distinct_counts = Some(
            (0..batch.num_columns())
                .map(|i| batch.column(i).distinct_count())
                .collect(),
        );
        Ok(TableStats {
            row_count: table.num_rows(),
            byte_size: table.byte_size(),
            distinct_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_value::{Column, DataType, Field};

    fn sample() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("tag", DataType::Text),
        ]));
        Batch::new(
            schema,
            vec![
                Column::from_ints(vec![1, 2, 3]),
                Column::from_texts(vec!["a".into(), "a".into(), "b".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.create_table_from_batch("Flights", sample(), false)
            .unwrap();
        assert!(c.contains("FLIGHTS"));
        assert_eq!(c.get("flights").unwrap().num_rows(), 3);
        assert!(c
            .create_table_from_batch("fLiGhTs", sample(), false)
            .is_err());
        c.create_table_from_batch("flights", sample(), true)
            .unwrap();
    }

    #[test]
    fn drop_semantics() {
        let mut c = Catalog::new();
        c.create_table_from_batch("t", sample(), false).unwrap();
        c.drop_table("T", false).unwrap();
        assert!(c.drop_table("t", false).is_err());
        c.drop_table("t", true).unwrap();
    }

    #[test]
    fn stats() {
        let mut c = Catalog::new();
        c.create_table_from_batch("t", sample(), false).unwrap();
        let s = c.stats("t").unwrap();
        assert_eq!(s.row_count, 3);
        assert_eq!(s.distinct_counts.unwrap(), vec![3, 2]);
    }
}
