//! Physical scalar expressions and their vectorized evaluator.
//!
//! The module is layered the way modern engines (GlareDB's physical
//! expression planner, DuckDB's vectors) structure expression execution:
//!
//! * [`mod@self`] — the [`PhysExpr`] tree (column ordinals resolved by the
//!   query planner), type inference, and the public entry points
//!   [`eval`] / [`eval_sel`].
//! * [`planner`] — compiles a [`PhysExpr`] over a known input schema into
//!   a [`planner::CompiledExpr`]: output types resolved once, literal
//!   operands kept as scalars (never materialized into columns), LIKE
//!   patterns pre-compiled.
//! * [`kernels`] — typed columnar kernels: monomorphic `i64`/`f64`/`bool`/
//!   `str` loops with validity-bitmap null handling. Per-type dispatch
//!   happens once per batch, not once per cell.
//! * [`interp`] — the boxed-[`Value`] row-at-a-time interpreter. It is the
//!   **semantic oracle**: `tests/eval_oracle.rs` pins the vectorized
//!   engine bit-identical (float bit patterns included) to it over
//!   generated expressions and batches.
//! * [`like`] — SQL LIKE: a compiled pattern matcher for the vectorized
//!   path and the legacy backtracking matcher the oracle keeps using.
//!
//! Selection vectors: [`eval_sel`] evaluates an expression only over the
//! row indices in a selection, gathering input columns at the leaves, so
//! `Filter → Project → Filter` chains never materialize intermediate
//! batches (see `exec.rs`).
//!
//! Error isolation: following the spreadsheet affordance the paper calls
//! out ("isolation of errors"), cell-level domain errors — division by
//! zero, bad casts of dirty data, invalid dates — evaluate to NULL rather
//! than failing the whole query. Structural errors (unknown columns, type
//! confusion the planner should have caught) still fail loudly. Casts come
//! in both flavors: `strict: false` (TRY_CAST semantics — what compiled
//! worksheet SQL uses) nulls unparseable cells, `strict: true` errors.

pub mod interp;
pub mod kernels;
pub mod like;
pub mod planner;

use sigma_value::{calendar, Batch, Column, DataType, Value};

use crate::error::CdwError;

pub use interp::{eval_binary_value, eval_func_value, eval_interp};
pub use like::{like_match, LikePattern};
pub use planner::CompiledExpr;

/// Scalar functions executed by the engine (generic-dialect spellings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    Abs,
    Round,
    Floor,
    Ceil,
    Sqrt,
    Exp,
    Ln,
    Log,
    Power,
    Mod,
    Sign,
    Greatest,
    Least,
    Concat,
    Upper,
    Lower,
    Trim,
    LTrim,
    RTrim,
    Length,
    Left,
    Right,
    Substring,
    Contains,
    StartsWith,
    EndsWith,
    Replace,
    SplitPart,
    Lpad,
    Rpad,
    Repeat,
    Coalesce,
    Nullif,
    DateTrunc,
    DatePart,
    DateAdd,
    DateDiff,
    MakeDate,
    CurrentDate,
    CurrentTimestamp,
}

impl ScalarFunc {
    /// Resolve a generic-dialect SQL function name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        use ScalarFunc::*;
        Some(match name.to_ascii_uppercase().as_str() {
            "ABS" => Abs,
            "ROUND" => Round,
            "FLOOR" => Floor,
            "CEIL" | "CEILING" => Ceil,
            "SQRT" => Sqrt,
            "EXP" => Exp,
            "LN" => Ln,
            "LOG" => Log,
            "POWER" | "POW" => Power,
            "MOD" => Mod,
            "SIGN" => Sign,
            "GREATEST" => Greatest,
            "LEAST" => Least,
            "CONCAT" => Concat,
            "UPPER" => Upper,
            "LOWER" => Lower,
            "TRIM" => Trim,
            "LTRIM" => LTrim,
            "RTRIM" => RTrim,
            "LENGTH" | "LEN" => Length,
            "LEFT" => Left,
            "RIGHT" => Right,
            "SUBSTRING" | "SUBSTR" => Substring,
            "CONTAINS" => Contains,
            "STARTS_WITH" | "STARTSWITH" => StartsWith,
            "ENDS_WITH" | "ENDSWITH" => EndsWith,
            "REPLACE" => Replace,
            "SPLIT_PART" => SplitPart,
            "LPAD" => Lpad,
            "RPAD" => Rpad,
            "REPEAT" => Repeat,
            "COALESCE" | "IFNULL" | "NVL" => Coalesce,
            "NULLIF" => Nullif,
            "DATE_TRUNC" => DateTrunc,
            "DATE_PART" => DatePart,
            "DATEADD" | "DATE_ADD" => DateAdd,
            "DATEDIFF" | "DATE_DIFF" => DateDiff,
            "MAKE_DATE" | "DATE_FROM_PARTS" => MakeDate,
            "CURRENT_DATE" => CurrentDate,
            "CURRENT_TIMESTAMP" | "NOW" => CurrentTimestamp,
            _ => return None,
        })
    }
}

/// Binary operators at the physical level (same set as the SQL AST).
pub use sigma_sql::SqlBinaryOp as BinOp;
pub use sigma_sql::SqlUnaryOp as UnOp;

/// A fully resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysExpr {
    Literal(Value),
    /// Input column ordinal.
    Col(usize),
    Unary {
        op: UnOp,
        expr: Box<PhysExpr>,
    },
    Binary {
        op: BinOp,
        left: Box<PhysExpr>,
        right: Box<PhysExpr>,
    },
    Func {
        func: ScalarFunc,
        args: Vec<PhysExpr>,
    },
    Case {
        operand: Option<Box<PhysExpr>>,
        whens: Vec<(PhysExpr, PhysExpr)>,
        else_: Option<Box<PhysExpr>>,
    },
    Cast {
        expr: Box<PhysExpr>,
        dtype: DataType,
        /// `true` = SQL `CAST`: an unconvertible cell is an execution
        /// error. `false` = `TRY_CAST`: unconvertible cells become NULL.
        /// Compiled worksheet SQL always plans the non-strict flavor —
        /// the paper's "isolation of errors" keeps one dirty cell from
        /// failing the whole sheet.
        strict: bool,
    },
    InList {
        expr: Box<PhysExpr>,
        list: Vec<PhysExpr>,
        negated: bool,
    },
    Between {
        expr: Box<PhysExpr>,
        low: Box<PhysExpr>,
        high: Box<PhysExpr>,
        negated: bool,
    },
    IsNull {
        expr: Box<PhysExpr>,
        negated: bool,
    },
    Like {
        expr: Box<PhysExpr>,
        pattern: Box<PhysExpr>,
        negated: bool,
    },
}

impl PhysExpr {
    pub fn lit(v: impl Into<Value>) -> PhysExpr {
        PhysExpr::Literal(v.into())
    }

    /// A non-strict (TRY_CAST) cast — the flavor compiled worksheet SQL
    /// uses.
    pub fn try_cast(expr: PhysExpr, dtype: DataType) -> PhysExpr {
        PhysExpr::Cast {
            expr: Box::new(expr),
            dtype,
            strict: false,
        }
    }

    /// Collect referenced column ordinals.
    pub fn columns_used(&self, out: &mut Vec<usize>) {
        match self {
            PhysExpr::Literal(_) => {}
            PhysExpr::Col(i) => out.push(*i),
            PhysExpr::Unary { expr, .. } => expr.columns_used(out),
            PhysExpr::Binary { left, right, .. } => {
                left.columns_used(out);
                right.columns_used(out);
            }
            PhysExpr::Func { args, .. } => {
                for a in args {
                    a.columns_used(out);
                }
            }
            PhysExpr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(o) = operand {
                    o.columns_used(out);
                }
                for (w, t) in whens {
                    w.columns_used(out);
                    t.columns_used(out);
                }
                if let Some(e) = else_ {
                    e.columns_used(out);
                }
            }
            PhysExpr::Cast { expr, .. } => expr.columns_used(out),
            PhysExpr::InList { expr, list, .. } => {
                expr.columns_used(out);
                for l in list {
                    l.columns_used(out);
                }
            }
            PhysExpr::Between {
                expr, low, high, ..
            } => {
                expr.columns_used(out);
                low.columns_used(out);
                high.columns_used(out);
            }
            PhysExpr::IsNull { expr, .. } => expr.columns_used(out),
            PhysExpr::Like { expr, pattern, .. } => {
                expr.columns_used(out);
                pattern.columns_used(out);
            }
        }
    }

    /// Rewrite column ordinals through a mapping (projection pruning).
    pub fn remap_columns(&mut self, map: &dyn Fn(usize) -> usize) {
        match self {
            PhysExpr::Literal(_) => {}
            PhysExpr::Col(i) => *i = map(*i),
            PhysExpr::Unary { expr, .. } => expr.remap_columns(map),
            PhysExpr::Binary { left, right, .. } => {
                left.remap_columns(map);
                right.remap_columns(map);
            }
            PhysExpr::Func { args, .. } => {
                for a in args {
                    a.remap_columns(map);
                }
            }
            PhysExpr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(o) = operand {
                    o.remap_columns(map);
                }
                for (w, t) in whens {
                    w.remap_columns(map);
                    t.remap_columns(map);
                }
                if let Some(e) = else_ {
                    e.remap_columns(map);
                }
            }
            PhysExpr::Cast { expr, .. } => expr.remap_columns(map),
            PhysExpr::InList { expr, list, .. } => {
                expr.remap_columns(map);
                for l in list {
                    l.remap_columns(map);
                }
            }
            PhysExpr::Between {
                expr, low, high, ..
            } => {
                expr.remap_columns(map);
                low.remap_columns(map);
                high.remap_columns(map);
            }
            PhysExpr::IsNull { expr, .. } => expr.remap_columns(map),
            PhysExpr::Like { expr, pattern, .. } => {
                expr.remap_columns(map);
                pattern.remap_columns(map);
            }
        }
    }
}

/// Evaluation context: the session clock, so `CURRENT_DATE` is
/// deterministic and testable.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx {
    /// Session "now" in microseconds since the epoch.
    pub now_micros: i64,
}

impl Default for EvalCtx {
    fn default() -> Self {
        // 2020-06-01 00:00:00 UTC: inside the paper's 1987-2020 dataset.
        EvalCtx {
            now_micros: calendar::days_from_civil(2020, 6, 1) as i64 * calendar::MICROS_PER_DAY,
        }
    }
}

// ---------------------------------------------------------------------
// type inference
// ---------------------------------------------------------------------

/// Infer the output type of an expression over the given input types.
/// `None` means "unknown / all-null" and defaults to Text at column-build
/// time.
pub fn infer_type(expr: &PhysExpr, input: &[DataType]) -> Result<Option<DataType>, CdwError> {
    use PhysExpr::*;
    match expr {
        Literal(v) => Ok(v.dtype()),
        Col(i) => input
            .get(*i)
            .copied()
            .map(Some)
            .ok_or_else(|| CdwError::plan(format!("column ordinal {i} out of range"))),
        Unary { op, expr } => {
            let t = infer_type(expr, input)?;
            Ok(match op {
                UnOp::Neg => t.or(Some(DataType::Float)),
                UnOp::Not => Some(DataType::Bool),
            })
        }
        Binary { op, left, right } => {
            let lt = infer_type(left, input)?;
            let rt = infer_type(right, input)?;
            Ok(binary_type(*op, lt, rt))
        }
        Func { func, args } => {
            let tys: Vec<Option<DataType>> = args
                .iter()
                .map(|a| infer_type(a, input))
                .collect::<Result<_, _>>()?;
            Ok(func_type(*func, &tys))
        }
        Case { whens, else_, .. } => {
            let mut acc: Option<DataType> = None;
            for (_, t) in whens {
                acc = unify_opt(acc, infer_type(t, input)?);
            }
            if let Some(e) = else_ {
                acc = unify_opt(acc, infer_type(e, input)?);
            }
            Ok(acc)
        }
        Cast { dtype, .. } => Ok(Some(*dtype)),
        InList { .. } | Between { .. } | IsNull { .. } | Like { .. } => Ok(Some(DataType::Bool)),
    }
}

pub(crate) fn unify_opt(a: Option<DataType>, b: Option<DataType>) -> Option<DataType> {
    match (a, b) {
        (None, t) | (t, None) => t,
        (Some(x), Some(y)) => x.unify(y).or(Some(DataType::Text)),
    }
}

pub(crate) fn binary_type(
    op: BinOp,
    lt: Option<DataType>,
    rt: Option<DataType>,
) -> Option<DataType> {
    use BinOp::*;
    match op {
        Add | Sub => match (lt, rt) {
            (Some(d), Some(DataType::Int)) if d.is_temporal() => Some(d),
            (Some(DataType::Int), Some(d)) if d.is_temporal() => Some(d),
            (Some(a), Some(b)) if a.is_temporal() && b.is_temporal() => Some(DataType::Int),
            (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
            _ => Some(DataType::Float),
        },
        Mul | Mod => match (lt, rt) {
            (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
            _ => Some(DataType::Float),
        },
        Div => Some(DataType::Float),
        Concat => Some(DataType::Text),
        Eq | NotEq | Lt | LtEq | Gt | GtEq | And | Or => Some(DataType::Bool),
    }
}

pub(crate) fn func_type(func: ScalarFunc, tys: &[Option<DataType>]) -> Option<DataType> {
    use ScalarFunc::*;
    match func {
        Abs | Round => tys[0].or(Some(DataType::Float)),
        Floor | Ceil | Sign | Length | DatePart | DateDiff => Some(DataType::Int),
        Sqrt | Exp | Ln | Log | Power => Some(DataType::Float),
        Mod => match (tys[0], tys.get(1).copied().flatten()) {
            (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
            _ => Some(DataType::Float),
        },
        Greatest | Least | Coalesce => {
            let mut acc = None;
            for &t in tys {
                acc = unify_opt(acc, t);
            }
            acc
        }
        Nullif => tys[0],
        Concat | Upper | Lower | Trim | LTrim | RTrim | Left | Right | Substring | Replace
        | SplitPart | Lpad | Rpad | Repeat => Some(DataType::Text),
        Contains | StartsWith | EndsWith => Some(DataType::Bool),
        DateTrunc => tys[1].or(Some(DataType::Date)),
        DateAdd => tys[2].or(Some(DataType::Date)),
        MakeDate | CurrentDate => Some(DataType::Date),
        CurrentTimestamp => Some(DataType::Timestamp),
    }
}

// ---------------------------------------------------------------------
// evaluation entry points
// ---------------------------------------------------------------------

/// Evaluate an expression over a whole batch, producing one column.
/// Compiles to typed kernels and evaluates column-at-a-time; semantics
/// are pinned bit-identical to the row interpreter ([`eval_interp`]).
pub fn eval(expr: &PhysExpr, batch: &Batch, ctx: &EvalCtx) -> Result<Column, CdwError> {
    eval_sel(expr, batch, None, ctx)
}

/// Evaluate an expression over the selected row indices of a batch (all
/// rows when `sel` is `None`). The output column has one slot per
/// selected row, in selection order; input columns are gathered at the
/// leaves so only surviving rows are ever touched.
pub fn eval_sel(
    expr: &PhysExpr,
    batch: &Batch,
    sel: Option<&[usize]>,
    ctx: &EvalCtx,
) -> Result<Column, CdwError> {
    let input: Vec<DataType> = batch.schema().fields().iter().map(|f| f.dtype).collect();
    CompiledExpr::compile(expr, &input)?.eval(batch, sel, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_value::{Field, Schema};
    use std::sync::Arc;

    fn batch() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("t", DataType::Text),
            Field::new("f", DataType::Float),
        ]));
        Batch::new(
            schema,
            vec![
                Column::from_ints(vec![1, 2, 3]),
                Column::from_opt_ints(vec![Some(10), None, Some(30)]),
                Column::from_texts(vec!["alpha".into(), "Beta".into(), "x,y".into()]),
                Column::from_floats(vec![1.5, 2.5, -3.0]),
            ],
        )
        .unwrap()
    }

    /// Evaluate on the vectorized path AND assert the row interpreter
    /// agrees bit-for-bit — every unit test double-checks the oracle.
    fn ev(e: &PhysExpr) -> Column {
        let b = batch();
        let vectorized = eval(e, &b, &EvalCtx::default()).unwrap();
        let interp = eval_interp(e, &b, &EvalCtx::default()).unwrap();
        assert_eq!(
            sigma_value::codec::encode_batch(
                &Batch::new(
                    Arc::new(Schema::new(vec![Field::new("c", vectorized.dtype())])),
                    vec![vectorized.clone()]
                )
                .unwrap()
            ),
            sigma_value::codec::encode_batch(
                &Batch::new(
                    Arc::new(Schema::new(vec![Field::new("c", interp.dtype())])),
                    vec![interp.clone()]
                )
                .unwrap()
            ),
            "vectorized and row-interpreted results diverge for {e:?}"
        );
        vectorized
    }

    #[test]
    fn arithmetic_fast_path_and_nulls() {
        let e = PhysExpr::Binary {
            op: BinOp::Add,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(PhysExpr::Col(1)),
        };
        let c = ev(&e);
        assert_eq!(c.value(0), Value::Int(11));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int(33));
    }

    #[test]
    fn division_by_zero_isolates() {
        let e = PhysExpr::Binary {
            op: BinOp::Div,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(PhysExpr::lit(0i64)),
        };
        let c = ev(&e);
        assert!(c.is_null(0));
    }

    #[test]
    fn three_valued_logic() {
        // null AND false = false; null AND true = null; null OR true = true.
        let null = PhysExpr::Literal(Value::Null);
        let f = PhysExpr::lit(false);
        let t = PhysExpr::lit(true);
        let and_nf = PhysExpr::Binary {
            op: BinOp::And,
            left: Box::new(null.clone()),
            right: Box::new(f),
        };
        assert_eq!(ev(&and_nf).value(0), Value::Bool(false));
        let and_nt = PhysExpr::Binary {
            op: BinOp::And,
            left: Box::new(null.clone()),
            right: Box::new(t.clone()),
        };
        assert!(ev(&and_nt).is_null(0));
        let or_nt = PhysExpr::Binary {
            op: BinOp::Or,
            left: Box::new(null),
            right: Box::new(t),
        };
        assert_eq!(ev(&or_nt).value(0), Value::Bool(true));
    }

    #[test]
    fn string_functions() {
        let upper = PhysExpr::Func {
            func: ScalarFunc::Upper,
            args: vec![PhysExpr::Col(2)],
        };
        assert_eq!(ev(&upper).value(0), Value::Text("ALPHA".into()));
        let left = PhysExpr::Func {
            func: ScalarFunc::Left,
            args: vec![PhysExpr::Col(2), PhysExpr::lit(2i64)],
        };
        assert_eq!(ev(&left).value(1), Value::Text("Be".into()));
        let split = PhysExpr::Func {
            func: ScalarFunc::SplitPart,
            args: vec![PhysExpr::Col(2), PhysExpr::lit(","), PhysExpr::lit(2i64)],
        };
        assert_eq!(ev(&split).value(2), Value::Text("y".into()));
        assert!(ev(&split).is_null(0)); // "alpha" has no second field
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("alpha", "al%"));
        assert!(like_match("alpha", "%pha"));
        assert!(like_match("alpha", "a_pha"));
        assert!(!like_match("alpha", "beta%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn like_kernel_compiles_literal_pattern() {
        let e = PhysExpr::Like {
            expr: Box::new(PhysExpr::Col(2)),
            pattern: Box::new(PhysExpr::lit("%a")),
            negated: false,
        };
        let c = ev(&e);
        assert_eq!(c.value(0), Value::Bool(true)); // alpha
        assert_eq!(c.value(1), Value::Bool(true)); // Beta
        assert_eq!(c.value(2), Value::Bool(false)); // x,y
                                                    // Null pattern literal nulls every row.
        let null_pat = PhysExpr::Like {
            expr: Box::new(PhysExpr::Col(2)),
            pattern: Box::new(PhysExpr::Literal(Value::Null)),
            negated: false,
        };
        assert_eq!(ev(&null_pat).null_count(), 3);
        // Dynamic pattern column: each row matched against its own pattern.
        let dynamic = PhysExpr::Like {
            expr: Box::new(PhysExpr::Col(2)),
            pattern: Box::new(PhysExpr::Col(2)),
            negated: false,
        };
        let d = ev(&dynamic);
        assert_eq!(d.value(0), Value::Bool(true)); // s LIKE s with no wildcards
    }

    #[test]
    fn date_functions() {
        let d = calendar::days_from_civil(2019, 8, 17);
        let trunc = PhysExpr::Func {
            func: ScalarFunc::DateTrunc,
            args: vec![PhysExpr::lit("quarter"), PhysExpr::Literal(Value::Date(d))],
        };
        let c = ev(&trunc);
        assert_eq!(
            c.value(0),
            Value::Date(calendar::days_from_civil(2019, 7, 1))
        );
        let bad = PhysExpr::Func {
            func: ScalarFunc::MakeDate,
            args: vec![
                PhysExpr::lit(2021i64),
                PhysExpr::lit(2i64),
                PhysExpr::lit(29i64),
            ],
        };
        assert!(ev(&bad).is_null(0));
    }

    #[test]
    fn try_cast_isolates_strict_cast_errors() {
        let try_cast = PhysExpr::try_cast(PhysExpr::Col(2), DataType::Int);
        // None of "alpha"/"Beta"/"x,y" parse as ints -> NULLs, not errors.
        let out = ev(&try_cast);
        assert_eq!(out.null_count(), 3);

        // The strict kernel errors on the same input...
        let strict = PhysExpr::Cast {
            expr: Box::new(PhysExpr::Col(2)),
            dtype: DataType::Int,
            strict: true,
        };
        let b = batch();
        assert!(eval(&strict, &b, &EvalCtx::default()).is_err());
        assert!(eval_interp(&strict, &b, &EvalCtx::default()).is_err());

        // ...but behaves identically to TRY_CAST when every cell converts.
        let ok = PhysExpr::Cast {
            expr: Box::new(PhysExpr::Col(0)),
            dtype: DataType::Float,
            strict: true,
        };
        let c = ev(&ok);
        assert_eq!(c.value(2), Value::Float(3.0));
    }

    #[test]
    fn case_simple_and_searched() {
        let searched = PhysExpr::Case {
            operand: None,
            whens: vec![(
                PhysExpr::Binary {
                    op: BinOp::Gt,
                    left: Box::new(PhysExpr::Col(0)),
                    right: Box::new(PhysExpr::lit(1i64)),
                },
                PhysExpr::lit("big"),
            )],
            else_: Some(Box::new(PhysExpr::lit("small"))),
        };
        let c = ev(&searched);
        assert_eq!(c.value(0), Value::Text("small".into()));
        assert_eq!(c.value(2), Value::Text("big".into()));
        let simple = PhysExpr::Case {
            operand: Some(Box::new(PhysExpr::Col(0))),
            whens: vec![(PhysExpr::lit(2i64), PhysExpr::lit("two"))],
            else_: None,
        };
        let c2 = ev(&simple);
        assert!(c2.is_null(0));
        assert_eq!(c2.value(1), Value::Text("two".into()));
    }

    #[test]
    fn in_list_three_valued() {
        // 1 IN (1, NULL) = true; 2 IN (1, NULL) = NULL; 2 IN (1, 3) = false.
        let mk = |v: i64, list: Vec<PhysExpr>| PhysExpr::InList {
            expr: Box::new(PhysExpr::lit(v)),
            list,
            negated: false,
        };
        let t = mk(1, vec![PhysExpr::lit(1i64), PhysExpr::Literal(Value::Null)]);
        assert_eq!(ev(&t).value(0), Value::Bool(true));
        let n = mk(2, vec![PhysExpr::lit(1i64), PhysExpr::Literal(Value::Null)]);
        assert!(ev(&n).is_null(0));
        let f = mk(2, vec![PhysExpr::lit(1i64), PhysExpr::lit(3i64)]);
        assert_eq!(ev(&f).value(0), Value::Bool(false));
        // Column operand against a hashed literal set (the fast path).
        let col_in = PhysExpr::InList {
            expr: Box::new(PhysExpr::Col(0)),
            list: vec![PhysExpr::lit(1i64), PhysExpr::lit(3i64)],
            negated: true,
        };
        let c = ev(&col_in);
        assert_eq!(c.value(0), Value::Bool(false));
        assert_eq!(c.value(1), Value::Bool(true));
        assert_eq!(c.value(2), Value::Bool(false));
    }

    #[test]
    fn type_inference_matches_eval() {
        let input = [
            DataType::Int,
            DataType::Int,
            DataType::Text,
            DataType::Float,
        ];
        let div = PhysExpr::Binary {
            op: BinOp::Div,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(PhysExpr::Col(1)),
        };
        assert_eq!(infer_type(&div, &input).unwrap(), Some(DataType::Float));
        assert_eq!(ev(&div).dtype(), DataType::Float);
        let concat = PhysExpr::Binary {
            op: BinOp::Concat,
            left: Box::new(PhysExpr::Col(2)),
            right: Box::new(PhysExpr::Col(0)),
        };
        assert_eq!(ev(&concat).value(0), Value::Text("alpha1".into()));
    }

    #[test]
    fn current_date_uses_session_clock() {
        let e = PhysExpr::Func {
            func: ScalarFunc::CurrentDate,
            args: vec![],
        };
        let c = eval(&e, &batch(), &EvalCtx::default()).unwrap();
        assert_eq!(
            c.value(0),
            Value::Date(calendar::days_from_civil(2020, 6, 1))
        );
    }

    #[test]
    fn selection_vector_evaluates_only_surviving_rows() {
        let b = batch();
        let e = PhysExpr::Binary {
            op: BinOp::Mul,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(PhysExpr::lit(100i64)),
        };
        let sel = [2usize, 0];
        let c = eval_sel(&e, &b, Some(&sel), &EvalCtx::default()).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(0), Value::Int(300)); // row 2 first, selection order
        assert_eq!(c.value(1), Value::Int(100));
        // Empty selection yields an empty, correctly typed column.
        let none = eval_sel(&e, &b, Some(&[]), &EvalCtx::default()).unwrap();
        assert_eq!(none.len(), 0);
        assert_eq!(none.dtype(), DataType::Int);
    }

    /// Kernel output must be byte-identical to builder output under the
    /// spill codec — null slots hold builder defaults, never the mapped
    /// payload (`-0.0` from negating a null slot's `0.0`, `true` from
    /// inverting its `false`).
    #[test]
    fn unary_kernels_keep_builder_defaults_in_null_slots() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("f", DataType::Float),
            Field::new("b", DataType::Bool),
        ]));
        let b = Batch::new(
            schema,
            vec![
                Column::from_opt_floats(vec![Some(1.5), None, Some(-0.0)]),
                Column::from_opt_bools(vec![Some(true), None, Some(false)]),
            ],
        )
        .unwrap();
        let bytes = |c: &Column| {
            let s = Arc::new(Schema::new(vec![Field::new("c", c.dtype())]));
            sigma_value::codec::encode_batch(&Batch::new(s, vec![c.clone()]).unwrap())
        };
        for e in [
            PhysExpr::Unary {
                op: UnOp::Neg,
                expr: Box::new(PhysExpr::Col(0)),
            },
            PhysExpr::Unary {
                op: UnOp::Not,
                expr: Box::new(PhysExpr::Col(1)),
            },
        ] {
            let v = eval(&e, &b, &EvalCtx::default()).unwrap();
            let o = eval_interp(&e, &b, &EvalCtx::default()).unwrap();
            assert_eq!(bytes(&v), bytes(&o), "null-slot payloads diverged: {e:?}");
        }
    }

    #[test]
    fn between_kernel_matrix() {
        // Int column between int literals.
        let e = PhysExpr::Between {
            expr: Box::new(PhysExpr::Col(0)),
            low: Box::new(PhysExpr::lit(2i64)),
            high: Box::new(PhysExpr::lit(3i64)),
            negated: false,
        };
        let c = ev(&e);
        assert_eq!(c.value(0), Value::Bool(false));
        assert_eq!(c.value(1), Value::Bool(true));
        // Mixed numeric goes through the f64 kernel.
        let mixed = PhysExpr::Between {
            expr: Box::new(PhysExpr::Col(3)),
            low: Box::new(PhysExpr::lit(-10i64)),
            high: Box::new(PhysExpr::lit(2i64)),
            negated: true,
        };
        let m = ev(&mixed);
        assert_eq!(m.value(1), Value::Bool(true)); // 2.5 outside, negated
                                                   // Null bound nulls every row.
        let null_bound = PhysExpr::Between {
            expr: Box::new(PhysExpr::Col(0)),
            low: Box::new(PhysExpr::Literal(Value::Null)),
            high: Box::new(PhysExpr::lit(3i64)),
            negated: false,
        };
        assert_eq!(ev(&null_bound).null_count(), 3);
    }
}
