//! The physical-expression planner: [`PhysExpr`] → [`CompiledExpr`].
//!
//! Compilation resolves each node's output type once against the input
//! schema (the executor compiles once per operator, not once per batch or
//! cell), pre-compiles literal LIKE patterns, and pre-hashes literal
//! IN-lists. Evaluation then walks the compiled tree producing [`CVal`]s:
//! literal operands stay **scalars** all the way into the kernels — they
//! are only materialized into columns when a node genuinely needs one
//! slot per row.
//!
//! Selection vectors: `eval` takes an optional slice of row indices.
//! Input columns are gathered at the `Col` leaves, so every kernel above
//! runs dense over exactly the surviving rows.

use sigma_value::{column::cast_value, Batch, Column, ColumnBuilder, DataType, Value};

use super::interp::{eval_func_value, materialize_value};
use super::kernels::{self, FastList};
use super::like::LikePattern;
use super::{infer_type, BinOp, EvalCtx, PhysExpr, ScalarFunc, UnOp};
use crate::error::CdwError;

/// An evaluated operand: a dense column (one slot per selected row) or a
/// literal scalar that kernels broadcast without materializing.
#[derive(Debug, Clone)]
pub(crate) enum CVal {
    Col(Column),
    Scalar(Value),
}

impl CVal {
    pub(crate) fn dtype(&self) -> Option<DataType> {
        match self {
            CVal::Col(c) => Some(c.dtype()),
            CVal::Scalar(v) => v.dtype(),
        }
    }

    pub(crate) fn is_null_scalar(&self) -> bool {
        matches!(self, CVal::Scalar(Value::Null))
    }

    /// Boxed value at row `i` (fallback paths only).
    pub(crate) fn value_at(&self, i: usize) -> Value {
        match self {
            CVal::Col(c) => c.value(i),
            CVal::Scalar(v) => v.clone(),
        }
    }
}

/// How a LIKE pattern operand was resolved at compile time.
#[derive(Debug, Clone)]
enum LikeSrc {
    /// Literal text pattern, compiled once.
    Compiled(LikePattern),
    /// Literal non-text pattern (including NULL): every row is NULL.
    NonText,
    /// Pattern varies per row.
    Dynamic(Box<CompiledExpr>),
}

#[derive(Debug, Clone)]
enum CKind {
    Literal(Value),
    Col(usize),
    Unary {
        op: UnOp,
        child: Box<CompiledExpr>,
    },
    Binary {
        op: BinOp,
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
    },
    Func {
        func: ScalarFunc,
        args: Vec<CompiledExpr>,
    },
    Case {
        operand: Option<Box<CompiledExpr>>,
        whens: Vec<(CompiledExpr, CompiledExpr)>,
        else_: Option<Box<CompiledExpr>>,
    },
    Cast {
        child: Box<CompiledExpr>,
        target: DataType,
        strict: bool,
    },
    InList {
        child: Box<CompiledExpr>,
        list: Vec<CompiledExpr>,
        negated: bool,
        fast: Option<FastList>,
    },
    Between {
        child: Box<CompiledExpr>,
        low: Box<CompiledExpr>,
        high: Box<CompiledExpr>,
        negated: bool,
    },
    IsNull {
        child: Box<CompiledExpr>,
        negated: bool,
    },
    Like {
        child: Box<CompiledExpr>,
        pattern: LikeSrc,
        negated: bool,
    },
}

/// A [`PhysExpr`] compiled against a fixed input schema: types resolved,
/// literal patterns/sets pre-built. Reusable across any number of batches
/// (and partitions) sharing that schema.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    kind: CKind,
    /// Inferred output type (`None` = all-null, materializes as Text).
    dtype: Option<DataType>,
}

impl CompiledExpr {
    /// Compile an expression against the input column types.
    pub fn compile(expr: &PhysExpr, input: &[DataType]) -> Result<CompiledExpr, CdwError> {
        let dtype = infer_type(expr, input)?;
        let c = |e: &PhysExpr| CompiledExpr::compile(e, input).map(Box::new);
        let kind = match expr {
            PhysExpr::Literal(v) => CKind::Literal(v.clone()),
            PhysExpr::Col(i) => CKind::Col(*i),
            PhysExpr::Unary { op, expr } => CKind::Unary {
                op: *op,
                child: c(expr)?,
            },
            PhysExpr::Binary { op, left, right } => CKind::Binary {
                op: *op,
                left: c(left)?,
                right: c(right)?,
            },
            PhysExpr::Func { func, args } => CKind::Func {
                func: *func,
                args: args
                    .iter()
                    .map(|a| CompiledExpr::compile(a, input))
                    .collect::<Result<_, _>>()?,
            },
            PhysExpr::Case {
                operand,
                whens,
                else_,
            } => CKind::Case {
                operand: operand.as_deref().map(c).transpose()?,
                whens: whens
                    .iter()
                    .map(|(w, t)| {
                        Ok::<_, CdwError>((
                            CompiledExpr::compile(w, input)?,
                            CompiledExpr::compile(t, input)?,
                        ))
                    })
                    .collect::<Result<_, _>>()?,
                else_: else_.as_deref().map(c).transpose()?,
            },
            PhysExpr::Cast {
                expr,
                dtype,
                strict,
            } => CKind::Cast {
                child: c(expr)?,
                target: *dtype,
                strict: *strict,
            },
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => {
                let child = c(expr)?;
                let list: Vec<CompiledExpr> = list
                    .iter()
                    .map(|l| CompiledExpr::compile(l, input))
                    .collect::<Result<_, _>>()?;
                let fast = build_fast_list(child.dtype, &list);
                CKind::InList {
                    child,
                    list,
                    negated: *negated,
                    fast,
                }
            }
            PhysExpr::Between {
                expr,
                low,
                high,
                negated,
            } => CKind::Between {
                child: c(expr)?,
                low: c(low)?,
                high: c(high)?,
                negated: *negated,
            },
            PhysExpr::IsNull { expr, negated } => CKind::IsNull {
                child: c(expr)?,
                negated: *negated,
            },
            PhysExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let src = match pattern.as_ref() {
                    PhysExpr::Literal(Value::Text(p)) => LikeSrc::Compiled(LikePattern::compile(p)),
                    PhysExpr::Literal(_) => LikeSrc::NonText,
                    other => LikeSrc::Dynamic(c(other)?),
                };
                CKind::Like {
                    child: c(expr)?,
                    pattern: src,
                    negated: *negated,
                }
            }
        };
        Ok(CompiledExpr { kind, dtype })
    }

    /// The column type this expression materializes as.
    pub fn out_type(&self) -> DataType {
        self.dtype.unwrap_or(DataType::Text)
    }

    /// Evaluate over the selected rows of a batch (all rows when `sel` is
    /// `None`), producing one dense column in selection order.
    pub fn eval(
        &self,
        batch: &Batch,
        sel: Option<&[usize]>,
        ctx: &EvalCtx,
    ) -> Result<Column, CdwError> {
        let n = sel.map_or(batch.num_rows(), <[usize]>::len);
        match self.eval_cval(batch, sel, n, ctx)? {
            CVal::Col(c) => Ok(c),
            CVal::Scalar(v) => kernels::broadcast(&v, self.out_type(), n),
        }
    }

    /// A scalar result coerced the way storing it into this node's output
    /// column would coerce it (`Int -> Float`, `Date -> Timestamp`), so
    /// parent kernels dispatch on the same type they would see from a
    /// materialized column.
    fn coerce_scalar(&self, v: Value) -> Result<Value, CdwError> {
        materialize_value(v, self.dtype)
    }

    fn eval_cval(
        &self,
        batch: &Batch,
        sel: Option<&[usize]>,
        n: usize,
        ctx: &EvalCtx,
    ) -> Result<CVal, CdwError> {
        Ok(match &self.kind {
            CKind::Literal(v) => CVal::Scalar(v.clone()),
            CKind::Col(i) => {
                let col = batch.column(*i);
                CVal::Col(match sel {
                    Some(s) => col.take(s),
                    None => col.clone(),
                })
            }
            CKind::Unary { op, child } => {
                let c = child.eval_cval(batch, sel, n, ctx)?;
                CVal::Col(kernels::unary(*op, &c, self.out_type(), n)?)
            }
            CKind::Binary { op, left, right } => {
                let l = left.eval_cval(batch, sel, n, ctx)?;
                let r = right.eval_cval(batch, sel, n, ctx)?;
                CVal::Col(kernels::binary(*op, &l, &r, self.out_type(), n)?)
            }
            CKind::Func { func, args } => {
                if n > 0 && args.iter().all(|a| matches!(a.kind, CKind::Literal(_))) {
                    // All-literal (including zero-arg) call: one evaluation,
                    // broadcast at materialization time.
                    let argv: Vec<Value> = args
                        .iter()
                        .map(|a| match &a.kind {
                            CKind::Literal(v) => v.clone(),
                            _ => unreachable!(),
                        })
                        .collect();
                    return Ok(CVal::Scalar(
                        self.coerce_scalar(eval_func_value(*func, &argv, ctx)?)?,
                    ));
                }
                let cols: Vec<Column> = args
                    .iter()
                    .map(|a| a.eval(batch, sel, ctx))
                    .collect::<Result<_, _>>()?;
                let mut b = ColumnBuilder::new(self.out_type(), n);
                let mut argv: Vec<Value> = Vec::with_capacity(cols.len());
                for i in 0..n {
                    argv.clear();
                    argv.extend(cols.iter().map(|c| c.value(i)));
                    b.push(eval_func_value(*func, &argv, ctx)?)
                        .map_err(CdwError::from)?;
                }
                CVal::Col(b.finish())
            }
            CKind::Case {
                operand,
                whens,
                else_,
            } => {
                // Columnar CASE evaluates every branch over all selected
                // rows and selects per row afterwards (as the engine
                // always has). Branch *values* are identical to the lazy
                // row interpreter; branch *errors* are not confined to
                // the rows that take the branch — only the strict-Cast
                // kernel can error on valid data, and compiled worksheet
                // SQL never plans it inside a CASE.
                let op_col = operand
                    .as_ref()
                    .map(|o| o.eval(batch, sel, ctx))
                    .transpose()?;
                let when_cols: Vec<(Column, Column)> = whens
                    .iter()
                    .map(|(w, t)| {
                        Ok::<_, CdwError>((w.eval(batch, sel, ctx)?, t.eval(batch, sel, ctx)?))
                    })
                    .collect::<Result<_, _>>()?;
                let else_col = else_
                    .as_ref()
                    .map(|e| e.eval(batch, sel, ctx))
                    .transpose()?;
                let mut b = ColumnBuilder::new(self.out_type(), n);
                for i in 0..n {
                    let mut result = Value::Null;
                    let mut matched = false;
                    for (w, t) in &when_cols {
                        let hit = match &op_col {
                            Some(op) => {
                                let ov = op.value(i);
                                let wv = w.value(i);
                                !ov.is_null() && !wv.is_null() && ov.sql_eq(&wv)
                            }
                            // Searched CASE: bool when-columns test off the
                            // slice, anything else via the boxed compare.
                            None => match (w.bools(), w.validity()) {
                                (Some(s), None) => s[i],
                                (Some(s), Some(m)) => m[i] && s[i],
                                _ => w.value(i) == Value::Bool(true),
                            },
                        };
                        if hit {
                            result = t.value(i);
                            matched = true;
                            break;
                        }
                    }
                    if !matched {
                        if let Some(e) = &else_col {
                            result = e.value(i);
                        }
                    }
                    b.push(result).map_err(CdwError::from)?;
                }
                CVal::Col(b.finish())
            }
            CKind::Cast {
                child,
                target,
                strict,
            } => {
                let c = child.eval_cval(batch, sel, n, ctx)?;
                match c {
                    CVal::Scalar(v) if n > 0 => match cast_value(v, *target) {
                        Ok(v) => CVal::Scalar(v),
                        Err(e) if *strict => return Err(CdwError::from(e)),
                        // TRY_CAST isolation: unconvertible cells are NULL.
                        Err(_) => CVal::Scalar(Value::Null),
                    },
                    CVal::Scalar(v) => CVal::Col(kernels::cast(
                        &kernels::broadcast(&v, child.out_type(), n)?,
                        *target,
                        *strict,
                    )?),
                    CVal::Col(col) => CVal::Col(kernels::cast(&col, *target, *strict)?),
                }
            }
            CKind::InList {
                child,
                list,
                negated,
                fast,
            } => {
                let c = child.eval_cval(batch, sel, n, ctx)?;
                if n == 0 {
                    return Ok(CVal::Col(kernels::empty(DataType::Bool)));
                }
                if let Some(fast) = fast {
                    if let Some(col) = kernels::in_list_fast(&c, fast, *negated, n) {
                        return Ok(CVal::Col(col));
                    }
                }
                let list_vals: Vec<CVal> = list
                    .iter()
                    .map(|l| l.eval_cval(batch, sel, n, ctx))
                    .collect::<Result<_, _>>()?;
                let mut b = ColumnBuilder::new(DataType::Bool, n);
                for i in 0..n {
                    let v = c.value_at(i);
                    if v.is_null() {
                        b.push_null();
                        continue;
                    }
                    let mut found = false;
                    let mut saw_null = false;
                    for lv in &list_vals {
                        let lv = lv.value_at(i);
                        if lv.is_null() {
                            saw_null = true;
                        } else if v.sql_eq(&lv) {
                            found = true;
                            break;
                        }
                    }
                    let out = if found {
                        Some(!negated)
                    } else if saw_null {
                        None
                    } else {
                        Some(*negated)
                    };
                    match out {
                        Some(x) => b.push(Value::Bool(x)).map_err(CdwError::from)?,
                        None => b.push_null(),
                    }
                }
                CVal::Col(b.finish())
            }
            CKind::Between {
                child,
                low,
                high,
                negated,
            } => {
                let c = child.eval_cval(batch, sel, n, ctx)?;
                let l = low.eval_cval(batch, sel, n, ctx)?;
                let h = high.eval_cval(batch, sel, n, ctx)?;
                CVal::Col(kernels::between(&c, &l, &h, *negated, n)?)
            }
            CKind::IsNull { child, negated } => {
                let c = child.eval_cval(batch, sel, n, ctx)?;
                CVal::Col(kernels::is_null(&c, *negated, n))
            }
            CKind::Like {
                child,
                pattern,
                negated,
            } => {
                let c = child.eval_cval(batch, sel, n, ctx)?;
                if n == 0 {
                    return Ok(CVal::Col(kernels::empty(DataType::Bool)));
                }
                CVal::Col(match pattern {
                    LikeSrc::Compiled(p) => kernels::like_compiled(&c, p, *negated, n),
                    LikeSrc::NonText => Column::nulls(DataType::Bool, n),
                    LikeSrc::Dynamic(pe) => {
                        let p = pe.eval_cval(batch, sel, n, ctx)?;
                        kernels::like_dynamic(&c, &p, *negated, n)
                    }
                })
            }
        })
    }
}

/// Pre-hash a literal IN-list when the operand type admits plain-equality
/// lookup (Int against all-Int literals, Text against all-Text). Mixed
/// numeric combinations fall back to `sql_eq` semantics at runtime.
fn build_fast_list(child_type: Option<DataType>, list: &[CompiledExpr]) -> Option<FastList> {
    match child_type? {
        DataType::Int => {
            let mut set = std::collections::HashSet::new();
            let mut saw_null = false;
            for item in list {
                match &item.kind {
                    CKind::Literal(Value::Int(x)) => {
                        set.insert(*x);
                    }
                    CKind::Literal(Value::Null) => saw_null = true,
                    _ => return None,
                }
            }
            Some(FastList::Ints { set, saw_null })
        }
        DataType::Text => {
            let mut set = std::collections::HashSet::new();
            let mut saw_null = false;
            for item in list {
                match &item.kind {
                    CKind::Literal(Value::Text(s)) => {
                        set.insert(s.clone());
                    }
                    CKind::Literal(Value::Null) => saw_null = true,
                    _ => return None,
                }
            }
            Some(FastList::Texts { set, saw_null })
        }
        _ => None,
    }
}
