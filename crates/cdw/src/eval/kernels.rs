//! Typed columnar kernels.
//!
//! Every kernel receives already-evaluated operands as [`CVal`]s (a dense
//! column or a literal scalar — literals are never materialized into
//! columns), resolves its type dispatch **once**, then runs a monomorphic
//! loop over `i64` / `f64` / `bool` / `str` slices with validity-bitmap
//! null handling. Null slots in kernel output hold the same defaults
//! `ColumnBuilder::push_null` writes (`0` / `0.0` / `false` / `""`), so
//! kernel output is byte-identical to builder output under the spill
//! codec.
//!
//! Semantics are pinned to the scalar [`Value`] kernels in
//! [`super::interp`] — every arm either reproduces the scalar kernel's
//! arithmetic exactly (same float operations in the same order, wrapping
//! integer ops, `total_cmp` comparison semantics) or falls back to a
//! row-at-a-time loop over those scalar kernels for combinations the
//! typed paths do not cover (which also reproduces their errors).

use std::cmp::Ordering;

use sigma_value::{calendar, column::cast_value, Column, ColumnBuilder, DataType, Value};

use super::interp::{eval_binary_value, eval_unary_value};
use super::like::LikePattern;
use super::planner::CVal;
use super::{BinOp, UnOp};
use crate::error::CdwError;

/// A zero-row column of the given type (kernels never run on empty input;
/// dispatchers return this early so per-row error paths cannot fire, just
/// like the interpreter's 0-iteration loops).
pub(crate) fn empty(out: DataType) -> Column {
    Column::nulls(out, 0)
}

/// Materialize a scalar into a column of `out` (the same coercion a
/// [`ColumnBuilder`] applies: `Int -> Float`, `Date -> Timestamp`).
pub(crate) fn broadcast(v: &Value, out: DataType, n: usize) -> Result<Column, CdwError> {
    let mut b = ColumnBuilder::new(out, n);
    if v.is_null() {
        for _ in 0..n {
            b.push_null();
        }
    } else {
        for _ in 0..n {
            b.push(v.clone()).map_err(CdwError::from)?;
        }
    }
    Ok(b.finish())
}

// ---------------------------------------------------------------------
// typed operand views
// ---------------------------------------------------------------------

/// `i64` view of an Int operand.
enum Ints<'a> {
    Slice(&'a [i64], Option<&'a [bool]>),
    Scalar(i64),
}

impl<'a> Ints<'a> {
    fn of(v: &'a CVal) -> Option<Ints<'a>> {
        match v {
            CVal::Col(c) => c.ints().map(|s| Ints::Slice(s, c.validity())),
            CVal::Scalar(Value::Int(x)) => Some(Ints::Scalar(*x)),
            _ => None,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            Ints::Slice(s, _) => s[i],
            Ints::Scalar(x) => *x,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        matches!(self, Ints::Slice(_, Some(m)) if !m[i])
    }

    fn has_nulls(&self) -> bool {
        matches!(self, Ints::Slice(_, Some(_)))
    }
}

/// `f64` view of any numeric operand (Int widens via `as f64`, exactly
/// like `Value::as_f64`).
enum Nums<'a> {
    Ints(&'a [i64], Option<&'a [bool]>),
    Floats(&'a [f64], Option<&'a [bool]>),
    Scalar(f64),
}

impl<'a> Nums<'a> {
    fn of(v: &'a CVal) -> Option<Nums<'a>> {
        match v {
            CVal::Col(c) => match (c.ints(), c.floats()) {
                (Some(s), _) => Some(Nums::Ints(s, c.validity())),
                (_, Some(s)) => Some(Nums::Floats(s, c.validity())),
                _ => None,
            },
            CVal::Scalar(v) => v.as_f64().map(Nums::Scalar),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            Nums::Ints(s, _) => s[i] as f64,
            Nums::Floats(s, _) => s[i],
            Nums::Scalar(x) => *x,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        match self {
            Nums::Ints(_, Some(m)) | Nums::Floats(_, Some(m)) => !m[i],
            _ => false,
        }
    }

    fn has_nulls(&self) -> bool {
        matches!(self, Nums::Ints(_, Some(_)) | Nums::Floats(_, Some(_)))
    }
}

/// `&str` view of a Text operand.
enum Strs<'a> {
    Slice(&'a [String], Option<&'a [bool]>),
    Scalar(&'a str),
}

impl<'a> Strs<'a> {
    fn of(v: &'a CVal) -> Option<Strs<'a>> {
        match v {
            CVal::Col(c) => c.texts().map(|s| Strs::Slice(s, c.validity())),
            CVal::Scalar(Value::Text(s)) => Some(Strs::Scalar(s)),
            _ => None,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> &str {
        match self {
            Strs::Slice(s, _) => &s[i],
            Strs::Scalar(x) => x,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        matches!(self, Strs::Slice(_, Some(m)) if !m[i])
    }

    fn has_nulls(&self) -> bool {
        matches!(self, Strs::Slice(_, Some(_)))
    }
}

/// `i32` day view of a Date operand.
enum Dates<'a> {
    Slice(&'a [i32], Option<&'a [bool]>),
    Scalar(i32),
}

impl<'a> Dates<'a> {
    fn of(v: &'a CVal) -> Option<Dates<'a>> {
        match v {
            CVal::Col(c) => c.dates().map(|s| Dates::Slice(s, c.validity())),
            CVal::Scalar(Value::Date(d)) => Some(Dates::Scalar(*d)),
            _ => None,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> i32 {
        match self {
            Dates::Slice(s, _) => s[i],
            Dates::Scalar(d) => *d,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        matches!(self, Dates::Slice(_, Some(m)) if !m[i])
    }

    fn has_nulls(&self) -> bool {
        matches!(self, Dates::Slice(_, Some(_)))
    }
}

/// Timeline (microsecond) view of any temporal operand — Dates widen by
/// `MICROS_PER_DAY`, matching `Value::as_micros`.
enum Micros<'a> {
    Dates(&'a [i32], Option<&'a [bool]>),
    Stamps(&'a [i64], Option<&'a [bool]>),
    Scalar(i64),
}

impl<'a> Micros<'a> {
    fn of(v: &'a CVal) -> Option<Micros<'a>> {
        match v {
            CVal::Col(c) => match (c.dates(), c.timestamps()) {
                (Some(s), _) => Some(Micros::Dates(s, c.validity())),
                (_, Some(s)) => Some(Micros::Stamps(s, c.validity())),
                _ => None,
            },
            CVal::Scalar(v) => v.as_micros().map(Micros::Scalar),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            Micros::Dates(s, _) => s[i] as i64 * calendar::MICROS_PER_DAY,
            Micros::Stamps(s, _) => s[i],
            Micros::Scalar(x) => *x,
        }
    }

    #[inline]
    fn is_null(&self, i: usize) -> bool {
        match self {
            Micros::Dates(_, Some(m)) | Micros::Stamps(_, Some(m)) => !m[i],
            _ => false,
        }
    }

    fn has_nulls(&self) -> bool {
        matches!(self, Micros::Dates(_, Some(_)) | Micros::Stamps(_, Some(_)))
    }
}

/// `bool` view with null visibility (for Kleene AND/OR, where a NULL
/// scalar side is still a valid operand).
enum Bools<'a> {
    Slice(&'a [bool], Option<&'a [bool]>),
    Scalar(Option<bool>),
}

impl<'a> Bools<'a> {
    fn of(v: &'a CVal) -> Option<Bools<'a>> {
        match v {
            CVal::Col(c) => c.bools().map(|s| Bools::Slice(s, c.validity())),
            CVal::Scalar(Value::Bool(b)) => Some(Bools::Scalar(Some(*b))),
            CVal::Scalar(Value::Null) => Some(Bools::Scalar(None)),
            _ => None,
        }
    }

    /// `None` = NULL at this row.
    #[inline]
    fn at(&self, i: usize) -> Option<bool> {
        match self {
            Bools::Slice(s, m) => match m {
                Some(m) if !m[i] => None,
                _ => Some(s[i]),
            },
            Bools::Scalar(b) => *b,
        }
    }
}

// ---------------------------------------------------------------------
// generic loop shapes
// ---------------------------------------------------------------------

macro_rules! strict_zip {
    // Strict-null binary loop: output null where either input is null,
    // defaults in null slots. `$no_nulls` selects the branch-free fast
    // path; `$ctor` builds the output column.
    ($n:expr, $l:expr, $r:expr, $no_nulls:expr, $default:expr, $ctor:path, |$a:ident, $b:ident| $body:expr) => {{
        let n = $n;
        if $no_nulls {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let $a = $l.get(i);
                let $b = $r.get(i);
                out.push($body);
            }
            $ctor(out, None)
        } else {
            let mut out = Vec::with_capacity(n);
            let mut validity = Vec::with_capacity(n);
            for i in 0..n {
                if $l.is_null(i) || $r.is_null(i) {
                    out.push($default);
                    validity.push(false);
                } else {
                    let $a = $l.get(i);
                    let $b = $r.get(i);
                    out.push($body);
                    validity.push(true);
                }
            }
            $ctor(out, Some(validity))
        }
    }};
}

macro_rules! opt_zip {
    // Like `strict_zip!` but the body yields `Option<_>` (value-level
    // NULLs: division by zero and friends).
    ($n:expr, $l:expr, $r:expr, $default:expr, $ctor:path, |$a:ident, $b:ident| $body:expr) => {{
        let n = $n;
        let mut out = Vec::with_capacity(n);
        let mut validity = Vec::with_capacity(n);
        for i in 0..n {
            if $l.is_null(i) || $r.is_null(i) {
                out.push($default);
                validity.push(false);
            } else {
                let $a = $l.get(i);
                let $b = $r.get(i);
                match $body {
                    Some(v) => {
                        out.push(v);
                        validity.push(true);
                    }
                    None => {
                        out.push($default);
                        validity.push(false);
                    }
                }
            }
        }
        $ctor(out, Some(validity))
    }};
}

// ---------------------------------------------------------------------
// binary dispatch
// ---------------------------------------------------------------------

#[inline]
fn cmp_test(op: BinOp) -> fn(Ordering) -> bool {
    match op {
        BinOp::Eq => |o| o == Ordering::Equal,
        BinOp::NotEq => |o| o != Ordering::Equal,
        BinOp::Lt => |o| o == Ordering::Less,
        BinOp::LtEq => |o| o != Ordering::Greater,
        BinOp::Gt => |o| o == Ordering::Greater,
        BinOp::GtEq => |o| o != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

/// Row-at-a-time fallback over the scalar kernels: reproduces exactly the
/// interpreter's values *and* errors for operand combinations the typed
/// arms do not cover.
fn fallback_binary(
    op: BinOp,
    l: &CVal,
    r: &CVal,
    out: DataType,
    n: usize,
) -> Result<Column, CdwError> {
    let mut b = ColumnBuilder::new(out, n);
    for i in 0..n {
        b.push(eval_binary_value(op, l.value_at(i), r.value_at(i))?)
            .map_err(CdwError::from)?;
    }
    Ok(b.finish())
}

/// Evaluate a binary operator over two operands, dispatching to a typed
/// kernel once per batch.
pub(crate) fn binary(
    op: BinOp,
    l: &CVal,
    r: &CVal,
    out: DataType,
    n: usize,
) -> Result<Column, CdwError> {
    use BinOp::*;
    if n == 0 {
        return Ok(empty(out));
    }
    // AND/OR: Kleene logic, non-strict nulls.
    if matches!(op, And | Or) {
        if let (Some(a), Some(b)) = (Bools::of(l), Bools::of(r)) {
            return Ok(kleene(op == And, &a, &b, n));
        }
        return fallback_binary(op, l, r, out, n);
    }
    // Strict operators: a NULL literal operand nulls every row.
    if l.is_null_scalar() || r.is_null_scalar() {
        return Ok(Column::nulls(out, n));
    }
    // Two non-null literals: compute once, broadcast.
    if let (CVal::Scalar(a), CVal::Scalar(b)) = (l, r) {
        let v = eval_binary_value(op, a.clone(), b.clone())?;
        return broadcast(&v, out, n);
    }
    let (Some(ld), Some(rd)) = (l.dtype(), r.dtype()) else {
        return fallback_binary(op, l, r, out, n);
    };
    use DataType as T;
    Ok(match op {
        Add | Sub => {
            let sub = op == Sub;
            match (ld, rd) {
                // Temporal arithmetic in days.
                (T::Date, T::Int) => {
                    let (a, b) = (Dates::of(l).unwrap(), Ints::of(r).unwrap());
                    let no_nulls = !a.has_nulls() && !b.has_nulls();
                    strict_zip!(n, a, b, no_nulls, 0i32, Column::new_date, |d, k| if sub {
                        d - k as i32
                    } else {
                        d + k as i32
                    })
                }
                (T::Int, T::Date) if !sub => {
                    let (a, b) = (Ints::of(l).unwrap(), Dates::of(r).unwrap());
                    let no_nulls = !a.has_nulls() && !b.has_nulls();
                    strict_zip!(n, b, a, no_nulls, 0i32, Column::new_date, |d, k| d + k
                        as i32)
                }
                (T::Timestamp, T::Int) => {
                    let (a, b) = (Micros::of(l).unwrap(), Ints::of(r).unwrap());
                    let no_nulls = !a.has_nulls() && !b.has_nulls();
                    strict_zip!(
                        n,
                        a,
                        b,
                        no_nulls,
                        0i64,
                        Column::new_timestamp,
                        |t, k| if sub {
                            t - k * calendar::MICROS_PER_DAY
                        } else {
                            t + k * calendar::MICROS_PER_DAY
                        }
                    )
                }
                (a, b) if a.is_temporal() && b.is_temporal() && sub => {
                    let (a, b) = (Micros::of(l).unwrap(), Micros::of(r).unwrap());
                    let no_nulls = !a.has_nulls() && !b.has_nulls();
                    strict_zip!(n, a, b, no_nulls, 0i64, Column::new_int, |x, y| (x - y)
                        / calendar::MICROS_PER_DAY)
                }
                (T::Int, T::Int) => {
                    let (a, b) = (Ints::of(l).unwrap(), Ints::of(r).unwrap());
                    let has = a.has_nulls() || b.has_nulls();
                    if sub {
                        strict_zip!(n, a, b, !has, 0i64, Column::new_int, |x, y| x
                            .wrapping_sub(y))
                    } else {
                        strict_zip!(n, a, b, !has, 0i64, Column::new_int, |x, y| x
                            .wrapping_add(y))
                    }
                }
                (a, b) if a.is_numeric() && b.is_numeric() => {
                    let (a, b) = (Nums::of(l).unwrap(), Nums::of(r).unwrap());
                    let has = a.has_nulls() || b.has_nulls();
                    if sub {
                        strict_zip!(n, a, b, !has, 0f64, Column::new_float, |x, y| x - y)
                    } else {
                        strict_zip!(n, a, b, !has, 0f64, Column::new_float, |x, y| x + y)
                    }
                }
                _ => return fallback_binary(op, l, r, out, n),
            }
        }
        Mul => match (ld, rd) {
            (T::Int, T::Int) => {
                let (a, b) = (Ints::of(l).unwrap(), Ints::of(r).unwrap());
                let has = a.has_nulls() || b.has_nulls();
                strict_zip!(n, a, b, !has, 0i64, Column::new_int, |x, y| x
                    .wrapping_mul(y))
            }
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let (a, b) = (Nums::of(l).unwrap(), Nums::of(r).unwrap());
                let has = a.has_nulls() || b.has_nulls();
                strict_zip!(n, a, b, !has, 0f64, Column::new_float, |x, y| x * y)
            }
            _ => return fallback_binary(op, l, r, out, n),
        },
        Div => match (ld, rd) {
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let (a, b) = (Nums::of(l).unwrap(), Nums::of(r).unwrap());
                // Division by zero isolates to NULL (cell-level errors).
                opt_zip!(n, a, b, 0f64, Column::new_float, |x, y| if y == 0.0 {
                    None
                } else {
                    Some(x / y)
                })
            }
            _ => return fallback_binary(op, l, r, out, n),
        },
        Mod => match (ld, rd) {
            (T::Int, T::Int) => {
                let (a, b) = (Ints::of(l).unwrap(), Ints::of(r).unwrap());
                opt_zip!(n, a, b, 0i64, Column::new_int, |x, y| if y == 0 {
                    None
                } else {
                    Some(x.rem_euclid(y))
                })
            }
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let (a, b) = (Nums::of(l).unwrap(), Nums::of(r).unwrap());
                opt_zip!(n, a, b, 0f64, Column::new_float, |x, y| if y == 0.0 {
                    None
                } else {
                    Some(x.rem_euclid(y))
                })
            }
            _ => return fallback_binary(op, l, r, out, n),
        },
        Concat => match (ld, rd) {
            (T::Text, T::Text) => {
                let (a, b) = (Strs::of(l).unwrap(), Strs::of(r).unwrap());
                let has = a.has_nulls() || b.has_nulls();
                strict_zip!(n, a, b, !has, String::new(), Column::new_text, |x, y| {
                    let mut s = String::with_capacity(x.len() + y.len());
                    s.push_str(x);
                    s.push_str(y);
                    s
                })
            }
            _ => return fallback_binary(op, l, r, out, n),
        },
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if ld.unify(rd).is_none() {
                // Incomparable types: null rows stay NULL, the first valid
                // row errors — exactly the interpreter's behavior.
                return fallback_binary(op, l, r, out, n);
            }
            let test = cmp_test(op);
            match (ld, rd) {
                (T::Int, T::Int) => {
                    let (a, b) = (Ints::of(l).unwrap(), Ints::of(r).unwrap());
                    let has = a.has_nulls() || b.has_nulls();
                    strict_zip!(n, a, b, !has, false, Column::new_bool, |x, y| test(
                        x.cmp(&y)
                    ))
                }
                (a, b) if a.is_numeric() && b.is_numeric() => {
                    let (a, b) = (Nums::of(l).unwrap(), Nums::of(r).unwrap());
                    let has = a.has_nulls() || b.has_nulls();
                    strict_zip!(n, a, b, !has, false, Column::new_bool, |x, y| test(
                        x.total_cmp(&y)
                    ))
                }
                (T::Text, T::Text) => {
                    let (a, b) = (Strs::of(l).unwrap(), Strs::of(r).unwrap());
                    let has = a.has_nulls() || b.has_nulls();
                    strict_zip!(n, a, b, !has, false, Column::new_bool, |x, y| test(
                        x.cmp(y)
                    ))
                }
                (T::Bool, T::Bool) => {
                    let (a, b) = (Bools::of(l).unwrap(), Bools::of(r).unwrap());
                    bool_cmp(n, &a, &b, test)
                }
                (a, b) if a.is_temporal() && b.is_temporal() => {
                    let (a, b) = (Micros::of(l).unwrap(), Micros::of(r).unwrap());
                    let no_nulls = !a.has_nulls() && !b.has_nulls();
                    strict_zip!(n, a, b, no_nulls, false, Column::new_bool, |x, y| test(
                        x.cmp(&y)
                    ))
                }
                _ => return fallback_binary(op, l, r, out, n),
            }
        }
        And | Or => unreachable!("handled above"),
    })
}

/// Kleene three-valued AND/OR over bool operands.
fn kleene(is_and: bool, l: &Bools, r: &Bools, n: usize) -> Column {
    let mut out = Vec::with_capacity(n);
    let mut validity = Vec::with_capacity(n);
    let mut any_null = false;
    for i in 0..n {
        let v = if is_and {
            match (l.at(i), r.at(i)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        } else {
            match (l.at(i), r.at(i)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }
        };
        out.push(v.unwrap_or_default());
        validity.push(v.is_some());
        any_null |= v.is_none();
    }
    Column::new_bool(out, any_null.then_some(validity))
}

/// Bool comparison (Bools sides track nulls through `at`).
fn bool_cmp(n: usize, l: &Bools, r: &Bools, test: fn(Ordering) -> bool) -> Column {
    let mut out = Vec::with_capacity(n);
    let mut validity = Vec::with_capacity(n);
    let mut any_null = false;
    for i in 0..n {
        match (l.at(i), r.at(i)) {
            (Some(x), Some(y)) => {
                out.push(test(x.cmp(&y)));
                validity.push(true);
            }
            _ => {
                out.push(false);
                validity.push(false);
                any_null = true;
            }
        }
    }
    Column::new_bool(out, any_null.then_some(validity))
}

// ---------------------------------------------------------------------
// unary / IS NULL
// ---------------------------------------------------------------------

pub(crate) fn unary(op: UnOp, c: &CVal, out: DataType, n: usize) -> Result<Column, CdwError> {
    if n == 0 {
        return Ok(empty(out));
    }
    if let CVal::Scalar(v) = c {
        let r = eval_unary_value(op, v.clone())?;
        return broadcast(&r, out, n);
    }
    let CVal::Col(col) = c else { unreachable!() };
    Ok(match (op, col.dtype()) {
        (UnOp::Neg, DataType::Int) => {
            let s = col.ints().unwrap();
            match col.validity() {
                None => Column::new_int(s.iter().map(|x| -x).collect(), None),
                Some(m) => Column::new_int(
                    s.iter()
                        .zip(m)
                        .map(|(x, &v)| if v { -x } else { 0 })
                        .collect(),
                    Some(m.to_vec()),
                ),
            }
        }
        (UnOp::Neg, DataType::Float) => {
            let s = col.floats().unwrap();
            match col.validity() {
                None => Column::new_float(s.iter().map(|x| -x).collect(), None),
                // Null slots keep the builder default (0.0, not -0.0): the
                // codec encodes null-slot payloads verbatim.
                Some(m) => Column::new_float(
                    s.iter()
                        .zip(m)
                        .map(|(x, &v)| if v { -x } else { 0.0 })
                        .collect(),
                    Some(m.to_vec()),
                ),
            }
        }
        (UnOp::Not, DataType::Bool) => {
            let s = col.bools().unwrap();
            match col.validity() {
                None => Column::new_bool(s.iter().map(|x| !x).collect(), None),
                Some(m) => Column::new_bool(
                    s.iter()
                        .zip(m)
                        .map(|(x, &v)| if v { !x } else { false })
                        .collect(),
                    Some(m.to_vec()),
                ),
            }
        }
        _ => {
            let mut b = ColumnBuilder::new(out, n);
            for i in 0..n {
                b.push(eval_unary_value(op, col.value(i))?)
                    .map_err(CdwError::from)?;
            }
            b.finish()
        }
    })
}

/// `IS [NOT] NULL` straight off the validity bitmap.
pub(crate) fn is_null(c: &CVal, negated: bool, n: usize) -> Column {
    match c {
        CVal::Scalar(v) => Column::from_bools(vec![v.is_null() != negated; n]),
        CVal::Col(col) => match col.validity() {
            None => Column::from_bools(vec![negated; n]),
            Some(m) => Column::from_bools(m.iter().map(|&valid| valid == negated).collect()),
        },
    }
}

// ---------------------------------------------------------------------
// BETWEEN
// ---------------------------------------------------------------------

macro_rules! tri_between {
    ($n:expr, $v:expr, $l:expr, $h:expr, $negated:expr, |$a:ident, $b:ident, $c:ident| $inside:expr) => {{
        let n = $n;
        let mut out = Vec::with_capacity(n);
        let mut validity = Vec::with_capacity(n);
        let mut any_null = false;
        for i in 0..n {
            if $v.is_null(i) || $l.is_null(i) || $h.is_null(i) {
                out.push(false);
                validity.push(false);
                any_null = true;
            } else {
                let $a = $v.get(i);
                let $b = $l.get(i);
                let $c = $h.get(i);
                out.push($inside != $negated);
                validity.push(true);
            }
        }
        Column::new_bool(out, any_null.then_some(validity))
    }};
}

pub(crate) fn between(
    v: &CVal,
    low: &CVal,
    high: &CVal,
    negated: bool,
    n: usize,
) -> Result<Column, CdwError> {
    if n == 0 {
        return Ok(empty(DataType::Bool));
    }
    if v.is_null_scalar() || low.is_null_scalar() || high.is_null_scalar() {
        return Ok(Column::nulls(DataType::Bool, n));
    }
    let (Some(vd), Some(ld), Some(hd)) = (v.dtype(), low.dtype(), high.dtype()) else {
        return between_fallback(v, low, high, negated, n);
    };
    use DataType as T;
    Ok(match (vd, ld, hd) {
        (T::Int, T::Int, T::Int) => {
            let (a, b, c) = (
                Ints::of(v).unwrap(),
                Ints::of(low).unwrap(),
                Ints::of(high).unwrap(),
            );
            tri_between!(n, a, b, c, negated, |x, l, h| x >= l && x <= h)
        }
        (a, b, c) if a.is_numeric() && b.is_numeric() && c.is_numeric() => {
            let (a, b, c) = (
                Nums::of(v).unwrap(),
                Nums::of(low).unwrap(),
                Nums::of(high).unwrap(),
            );
            tri_between!(n, a, b, c, negated, |x, l, h| x.total_cmp(&l)
                != Ordering::Less
                && x.total_cmp(&h) != Ordering::Greater)
        }
        (T::Text, T::Text, T::Text) => {
            let (a, b, c) = (
                Strs::of(v).unwrap(),
                Strs::of(low).unwrap(),
                Strs::of(high).unwrap(),
            );
            tri_between!(n, a, b, c, negated, |x, l, h| x >= l && x <= h)
        }
        (a, b, c) if a.is_temporal() && b.is_temporal() && c.is_temporal() => {
            let (a, b, c) = (
                Micros::of(v).unwrap(),
                Micros::of(low).unwrap(),
                Micros::of(high).unwrap(),
            );
            tri_between!(n, a, b, c, negated, |x, l, h| x >= l && x <= h)
        }
        _ => return between_fallback(v, low, high, negated, n),
    })
}

/// Value-level BETWEEN (`total_cmp` over boxed values) for mixed operand
/// types — never errors, matching the interpreter.
fn between_fallback(
    v: &CVal,
    low: &CVal,
    high: &CVal,
    negated: bool,
    n: usize,
) -> Result<Column, CdwError> {
    let mut b = ColumnBuilder::new(DataType::Bool, n);
    for i in 0..n {
        let (x, l, h) = (v.value_at(i), low.value_at(i), high.value_at(i));
        if x.is_null() || l.is_null() || h.is_null() {
            b.push_null();
        } else {
            let inside = x.total_cmp(&l) != Ordering::Less && x.total_cmp(&h) != Ordering::Greater;
            b.push(Value::Bool(inside != negated))
                .map_err(CdwError::from)?;
        }
    }
    Ok(b.finish())
}

// ---------------------------------------------------------------------
// LIKE
// ---------------------------------------------------------------------

/// LIKE against a pattern compiled once for the whole column.
pub(crate) fn like_compiled(c: &CVal, pattern: &LikePattern, negated: bool, n: usize) -> Column {
    match Strs::of(c) {
        // Non-text input (or NULL literal): every row is NULL, like the
        // scalar kernel's `as_text` miss.
        None => Column::nulls(DataType::Bool, n),
        Some(s) => {
            if !s.has_nulls() {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(pattern.matches(s.get(i)) != negated);
                }
                Column::new_bool(out, None)
            } else {
                let mut out = Vec::with_capacity(n);
                let mut validity = Vec::with_capacity(n);
                for i in 0..n {
                    if s.is_null(i) {
                        out.push(false);
                        validity.push(false);
                    } else {
                        out.push(pattern.matches(s.get(i)) != negated);
                        validity.push(true);
                    }
                }
                Column::new_bool(out, Some(validity))
            }
        }
    }
}

/// LIKE with a per-row pattern column; consecutive identical patterns
/// reuse the last compiled program.
pub(crate) fn like_dynamic(c: &CVal, pattern: &CVal, negated: bool, n: usize) -> Column {
    let (vs, ps) = (Strs::of(c), Strs::of(pattern));
    let (Some(vs), Some(ps)) = (vs, ps) else {
        return Column::nulls(DataType::Bool, n);
    };
    let mut cached: Option<(String, LikePattern)> = None;
    let mut out = Vec::with_capacity(n);
    let mut validity = Vec::with_capacity(n);
    let mut any_null = false;
    for i in 0..n {
        if vs.is_null(i) || ps.is_null(i) {
            out.push(false);
            validity.push(false);
            any_null = true;
            continue;
        }
        let pat = ps.get(i);
        let recompile = cached.as_ref().is_none_or(|(p, _)| p != pat);
        if recompile {
            cached = Some((pat.to_string(), LikePattern::compile(pat)));
        }
        let compiled = &cached.as_ref().unwrap().1;
        out.push(compiled.matches(vs.get(i)) != negated);
        validity.push(true);
    }
    Column::new_bool(out, any_null.then_some(validity))
}

// ---------------------------------------------------------------------
// CAST
// ---------------------------------------------------------------------

/// Columnar cast with per-pair dispatch. `strict: false` (TRY_CAST — what
/// compiled worksheet SQL uses) nulls unconvertible cells; `strict: true`
/// errors on the first one.
pub(crate) fn cast(col: &Column, target: DataType, strict: bool) -> Result<Column, CdwError> {
    if col.dtype() == target {
        return Ok(col.clone());
    }
    let n = col.len();
    let validity = col.validity().map(<[bool]>::to_vec);
    use DataType as T;
    Ok(match (col.dtype(), target) {
        (T::Int, T::Float) => Column::new_float(
            col.ints().unwrap().iter().map(|&x| x as f64).collect(),
            validity,
        ),
        (T::Float, T::Int) => Column::new_int(
            col.floats().unwrap().iter().map(|&x| x as i64).collect(),
            validity,
        ),
        (T::Bool, T::Int) => Column::new_int(
            col.bools().unwrap().iter().map(|&b| b as i64).collect(),
            validity,
        ),
        (T::Bool, T::Float) => Column::new_float(
            col.bools()
                .unwrap()
                .iter()
                .map(|&b| b as i64 as f64)
                .collect(),
            validity,
        ),
        (T::Int, T::Bool) => Column::new_bool(
            col.ints().unwrap().iter().map(|&x| x != 0).collect(),
            validity,
        ),
        (T::Date, T::Timestamp) => Column::new_timestamp(
            col.dates()
                .unwrap()
                .iter()
                .map(|&d| d as i64 * calendar::MICROS_PER_DAY)
                .collect(),
            validity,
        ),
        (T::Timestamp, T::Date) => Column::new_date(
            col.timestamps()
                .unwrap()
                .iter()
                .map(|&t| t.div_euclid(calendar::MICROS_PER_DAY) as i32)
                .collect(),
            validity,
        ),
        // Renders, string parsing, and unsupported pairs: per-row scalar
        // casts (dispatch already happened — this arm is one loop).
        _ => {
            let mut b = ColumnBuilder::new(target, n);
            for i in 0..n {
                match cast_value(col.value(i), target) {
                    Ok(v) => b.push(v).map_err(CdwError::from)?,
                    Err(e) if strict => return Err(CdwError::from(e)),
                    Err(_) => b.push_null(),
                }
            }
            b.finish()
        }
    })
}

// ---------------------------------------------------------------------
// IN-list fast paths
// ---------------------------------------------------------------------

/// Pre-resolved literal IN-lists (built once at compile time).
#[derive(Debug, Clone)]
pub(crate) enum FastList {
    Ints {
        set: std::collections::HashSet<i64>,
        saw_null: bool,
    },
    Texts {
        set: std::collections::HashSet<String>,
        saw_null: bool,
    },
}

/// `expr IN (literals...)` with the literal set hashed once. Returns
/// `None` when the operand shape doesn't fit (caller falls back).
pub(crate) fn in_list_fast(c: &CVal, fast: &FastList, negated: bool, n: usize) -> Option<Column> {
    let mut out = Vec::with_capacity(n);
    let mut validity = Vec::with_capacity(n);
    let mut any_null = false;
    // Per row: NULL operand -> NULL; found -> !negated; not found with a
    // NULL in the list -> NULL (it *might* have matched); else negated.
    macro_rules! scan {
        ($side:expr, $lookup:expr, $saw_null:expr) => {
            for i in 0..n {
                if $side.is_null(i) {
                    out.push(false);
                    validity.push(false);
                    any_null = true;
                } else if $lookup(i) {
                    out.push(!negated);
                    validity.push(true);
                } else if $saw_null {
                    out.push(false);
                    validity.push(false);
                    any_null = true;
                } else {
                    out.push(negated);
                    validity.push(true);
                }
            }
        };
    }
    match fast {
        FastList::Ints { set, saw_null } => {
            let s = Ints::of(c)?;
            scan!(s, |i| set.contains(&s.get(i)), *saw_null);
        }
        FastList::Texts { set, saw_null } => {
            let s = Strs::of(c)?;
            scan!(s, |i| set.contains(s.get(i)), *saw_null);
        }
    }
    Some(Column::new_bool(out, any_null.then_some(validity)))
}
