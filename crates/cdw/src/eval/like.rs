//! SQL LIKE matching (`%` and `_` wildcards, no escape syntax).
//!
//! Two implementations with pinned-equal semantics:
//!
//! * [`LikePattern`] — a **compiled** pattern: the string is parsed once
//!   into `%`-separated segments and matched with the classic greedy
//!   anchored-prefix / anchored-suffix / first-occurrence scan. The
//!   vectorized kernels compile the pattern once per column evaluation
//!   instead of re-interpreting the pattern string on every row.
//! * [`like_match`] — the original per-call backtracking matcher. The row
//!   interpreter (the semantic oracle) keeps using it, so the oracle
//!   proptest cross-checks the two matchers on every generated case.

/// One position of a `%`-free pattern segment: a literal char or `_`.
type SegChar = Option<char>;

/// A LIKE pattern compiled for repeated matching.
#[derive(Debug, Clone)]
pub struct LikePattern {
    /// Non-empty `%`-free runs, in order. `None` entries match any char.
    segments: Vec<Vec<SegChar>>,
    /// Pattern starts with `%` (first segment floats).
    leading_any: bool,
    /// Pattern ends with `%` (last segment floats).
    trailing_any: bool,
    /// Pattern contained at least one `%`.
    has_any: bool,
}

impl LikePattern {
    /// Parse a pattern string once.
    pub fn compile(pattern: &str) -> LikePattern {
        let mut segments: Vec<Vec<SegChar>> = Vec::new();
        let mut current: Vec<SegChar> = Vec::new();
        let mut has_any = false;
        for c in pattern.chars() {
            match c {
                '%' => {
                    has_any = true;
                    if !current.is_empty() {
                        segments.push(std::mem::take(&mut current));
                    }
                }
                '_' => current.push(None),
                c => current.push(Some(c)),
            }
        }
        if !current.is_empty() {
            segments.push(current);
        }
        LikePattern {
            segments,
            leading_any: pattern.starts_with('%'),
            trailing_any: pattern.ends_with('%'),
            has_any,
        }
    }

    fn seg_matches_at(s: &[char], at: usize, seg: &[SegChar]) -> bool {
        seg.iter()
            .enumerate()
            .all(|(i, p)| p.is_none_or(|c| s[at + i] == c))
    }

    /// Earliest occurrence of `seg` in `s[from..to]` (greedy scan).
    fn find_from(s: &[char], from: usize, to: usize, seg: &[SegChar]) -> Option<usize> {
        if seg.len() > to.saturating_sub(from) {
            return None;
        }
        (from..=to - seg.len()).find(|&at| Self::seg_matches_at(s, at, seg))
    }

    /// Does `s` match the pattern? Greedy segment matching is equivalent
    /// to the backtracking matcher for `%`/`_` patterns.
    pub fn matches(&self, s: &str) -> bool {
        let s: Vec<char> = s.chars().collect();
        let mut segs: &[Vec<SegChar>] = &self.segments;
        if segs.is_empty() {
            // All-`%` (matches everything) or the empty pattern (matches
            // only the empty string).
            return self.has_any || s.is_empty();
        }
        let mut lo = 0usize;
        let mut hi = s.len();
        if !self.leading_any {
            let first = &segs[0];
            if hi < first.len() || !Self::seg_matches_at(&s, 0, first) {
                return false;
            }
            lo = first.len();
            segs = &segs[1..];
            if segs.is_empty() {
                // Single anchored segment: `abc` must consume everything,
                // `abc%` leaves the tail to the trailing wildcard.
                return self.trailing_any || lo == hi;
            }
        }
        if !self.trailing_any {
            let last = &segs[segs.len() - 1];
            if hi.saturating_sub(lo) < last.len()
                || !Self::seg_matches_at(&s, hi - last.len(), last)
            {
                return false;
            }
            hi -= last.len();
            segs = &segs[..segs.len() - 1];
        }
        for seg in segs {
            match Self::find_from(&s, lo, hi, seg) {
                Some(at) => lo = at + seg.len(),
                None => return false,
            }
        }
        true
    }
}

/// SQL LIKE via per-call backtracking (the oracle's matcher). Prefer
/// [`LikePattern`] when the same pattern applies to many rows.
///
/// The `%` test runs **before** the literal-char test: a `%` in the
/// pattern is always a wildcard, even when the data character at the
/// cursor is itself `%` (the seed evaluator got this wrong and treated
/// `'a%b' LIKE '%a%'` as false by consuming the pattern's `%` as a
/// literal match for the data's).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Iterative wildcard matching with backtracking on the last `%`.
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_si) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && p[pi] == '%' {
            star = pi;
            star_si = si;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_si += 1;
            si = star_si;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both matchers, asserted to agree.
    fn m(s: &str, p: &str) -> bool {
        let compiled = LikePattern::compile(p).matches(s);
        let backtracked = like_match(s, p);
        assert_eq!(
            compiled, backtracked,
            "matchers disagree on {s:?} LIKE {p:?}"
        );
        compiled
    }

    #[test]
    fn basics() {
        assert!(m("alpha", "al%"));
        assert!(m("alpha", "%pha"));
        assert!(m("alpha", "a_pha"));
        assert!(!m("alpha", "beta%"));
        assert!(m("a%b", "a%b"));
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abd"));
        assert!(!m("abc", "ab"));
    }

    #[test]
    fn empty_pattern_and_empty_input() {
        assert!(m("", ""));
        assert!(!m("x", ""));
        assert!(m("", "%"));
        assert!(m("", "%%"));
        assert!(!m("", "_"));
        assert!(!m("", "_%"));
        assert!(!m("", "%_"));
        assert!(m("x", "%_"));
    }

    #[test]
    fn percent_and_underscore_runs() {
        assert!(m("abc", "%%%"));
        assert!(m("abc", "a%%c"));
        assert!(m("abc", "___"));
        assert!(!m("abc", "____"));
        assert!(m("abc", "_%_"));
        assert!(m("ab", "_%_"));
        assert!(!m("a", "_%_"));
        assert!(m("abcdef", "a%_%f"));
        assert!(m("aXbXc", "a%b%c"));
        assert!(!m("aXbX", "a%b%c"));
    }

    #[test]
    fn literal_percent_like_chars_in_data() {
        // `%` in the data is an ordinary char; only the pattern treats it
        // as a wildcard.
        assert!(m("100%", "100%")); // trailing % is a wildcard, still matches
        assert!(m("100%", "100_")); // the data's % matched as a plain char
        assert!(m("a%b", "a_b"));
        assert!(m("a%b%c", "a_b_c")); // every literal % matched by _
        assert!(!m("100", "100_"));
        assert!(!m("ab", "a%b%c"));
        // Regression: a pattern `%` is ALWAYS a wildcard, even when the
        // data character under the cursor is itself `%` (the seed's
        // backtracking matcher consumed it as a literal match).
        assert!(m("a%b", "%a%"));
        assert!(m("a%b", "%b"));
        assert!(m("%", "%"));
        assert!(m("%x", "%x"));
    }

    #[test]
    fn greedy_backtracking_cases() {
        // Cases where naive greedy-without-anchors goes wrong.
        assert!(m("aab", "a%ab"));
        assert!(m("abab", "%ab"));
        assert!(m("aaa", "a%a"));
        assert!(!m("a", "a%a"));
        assert!(m("aa", "a%a"));
        assert!(m("mississippi", "%iss%ppi"));
        assert!(!m("mississippi", "%iss%ppz"));
        assert!(m("xyabcyz", "x%abc%z"));
    }

    #[test]
    fn unicode_chars_count_as_one() {
        assert!(m("héllo", "h_llo"));
        assert!(m("日本語", "__語"));
        assert!(!m("日本語", "____"));
    }
}
