//! The boxed-[`Value`] row-at-a-time interpreter and its scalar kernels.
//!
//! [`eval_interp`] walks the expression tree once **per row**, dispatching
//! on the [`Value`] enum at every node — exactly the evaluation model the
//! vectorized engine replaces. It stays here as the **semantic oracle**:
//! `tests/eval_oracle.rs` pins the typed columnar kernels bit-identical
//! to it (float bit patterns included), and `benches/expr_eval.rs`
//! measures the speedup against it.
//!
//! One subtlety keeps the two engines bit-comparable on extreme inputs:
//! the columnar engine materializes every sub-expression into a typed
//! column, which widens `Int -> Float` and `Date -> Timestamp` at the
//! node boundary where types unify (CASE branches, COALESCE/GREATEST/
//! LEAST). The interpreter simulates that materialization with
//! [`materialize_value`] at exactly those nodes, so e.g. a CASE branch
//! producing a large `i64` under a Float-unified output loses precision
//! identically on both paths.

use std::cmp::Ordering;

use sigma_value::{calendar, calendar::DateUnit, column::cast_value, Batch, Column, ColumnBuilder};
use sigma_value::{DataType, Value};

use super::{infer_type, like, BinOp, EvalCtx, PhysExpr, ScalarFunc, UnOp};
use crate::error::CdwError;

/// Evaluate an expression over a batch one row at a time, producing one
/// column. Semantics (output type, null handling, error isolation) match
/// the vectorized [`super::eval`] exactly.
pub fn eval_interp(expr: &PhysExpr, batch: &Batch, ctx: &EvalCtx) -> Result<Column, CdwError> {
    let rows = batch.num_rows();
    let input: Vec<DataType> = batch.schema().fields().iter().map(|f| f.dtype).collect();
    let out_type = infer_type(expr, &input)?.unwrap_or(DataType::Text);
    let mut b = ColumnBuilder::new(out_type, rows);
    for row in 0..rows {
        b.push(value_at(expr, batch, &input, row, ctx)?)
            .map_err(CdwError::from)?;
    }
    Ok(b.finish())
}

/// What a [`Value`] becomes when stored into a column of `dtype` — the
/// same widening [`ColumnBuilder::push`] applies (`Int -> Float`,
/// `Date -> Timestamp`), erroring on any other mismatch. Shared with the
/// compiler's scalar folding so both engines coerce identically.
pub(crate) fn materialize_value(v: Value, dtype: Option<DataType>) -> Result<Value, CdwError> {
    let Some(dtype) = dtype else {
        return Ok(v);
    };
    Ok(match (v, dtype) {
        (Value::Null, _) => Value::Null,
        (Value::Int(x), DataType::Float) => Value::Float(x as f64),
        (Value::Date(d), DataType::Timestamp) => {
            Value::Timestamp(d as i64 * calendar::MICROS_PER_DAY)
        }
        (v, dtype) => {
            if v.dtype() == Some(dtype) {
                v
            } else {
                return Err(CdwError::exec(format!(
                    "cannot store {} into a {dtype} column",
                    v.dtype().map_or("NULL".into(), |d| d.to_string())
                )));
            }
        }
    })
}

/// One row of one expression, fully recursive (per-cell dispatch).
fn value_at(
    expr: &PhysExpr,
    batch: &Batch,
    input: &[DataType],
    row: usize,
    ctx: &EvalCtx,
) -> Result<Value, CdwError> {
    Ok(match expr {
        PhysExpr::Literal(v) => v.clone(),
        PhysExpr::Col(i) => batch.column(*i).value(row),
        PhysExpr::Unary { op, expr } => {
            eval_unary_value(*op, value_at(expr, batch, input, row, ctx)?)?
        }
        PhysExpr::Binary { op, left, right } => {
            let l = value_at(left, batch, input, row, ctx)?;
            let r = value_at(right, batch, input, row, ctx)?;
            eval_binary_value(*op, l, r)?
        }
        PhysExpr::Func { func, args } => {
            let argv: Vec<Value> = args
                .iter()
                .map(|a| value_at(a, batch, input, row, ctx))
                .collect::<Result<_, _>>()?;
            let out = eval_func_value(*func, &argv, ctx)?;
            // Variadic unifying functions materialize through the unified
            // column type on the columnar path.
            if matches!(
                func,
                ScalarFunc::Coalesce | ScalarFunc::Greatest | ScalarFunc::Least
            ) {
                materialize_value(out, infer_type(expr, input)?)?
            } else {
                out
            }
        }
        PhysExpr::Case {
            operand,
            whens,
            else_,
        } => {
            let op_val = operand
                .as_ref()
                .map(|o| value_at(o, batch, input, row, ctx))
                .transpose()?;
            let mut result = Value::Null;
            let mut matched = false;
            for (w, t) in whens {
                let wv = value_at(w, batch, input, row, ctx)?;
                let hit = match &op_val {
                    Some(ov) => !ov.is_null() && !wv.is_null() && ov.sql_eq(&wv),
                    None => wv == Value::Bool(true),
                };
                if hit {
                    result = value_at(t, batch, input, row, ctx)?;
                    matched = true;
                    break;
                }
            }
            if !matched {
                if let Some(e) = else_ {
                    result = value_at(e, batch, input, row, ctx)?;
                }
            }
            // Branches materialize through the unified CASE output type.
            materialize_value(result, infer_type(expr, input)?)?
        }
        PhysExpr::Cast {
            expr,
            dtype,
            strict,
        } => {
            let v = value_at(expr, batch, input, row, ctx)?;
            match cast_value(v, *dtype) {
                Ok(v) => v,
                Err(e) if *strict => return Err(CdwError::from(e)),
                // TRY_CAST isolation: unparseable cells become NULL.
                Err(_) => Value::Null,
            }
        }
        PhysExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = value_at(expr, batch, input, row, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            let mut saw_null = false;
            for item in list {
                let lv = value_at(item, batch, input, row, ctx)?;
                if lv.is_null() {
                    saw_null = true;
                } else if v.sql_eq(&lv) {
                    found = true;
                    break;
                }
            }
            if found {
                Value::Bool(!negated)
            } else if saw_null {
                Value::Null
            } else {
                Value::Bool(*negated)
            }
        }
        PhysExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = value_at(expr, batch, input, row, ctx)?;
            let l = value_at(low, batch, input, row, ctx)?;
            let h = value_at(high, batch, input, row, ctx)?;
            if v.is_null() || l.is_null() || h.is_null() {
                Value::Null
            } else {
                let inside =
                    v.total_cmp(&l) != Ordering::Less && v.total_cmp(&h) != Ordering::Greater;
                Value::Bool(inside != *negated)
            }
        }
        PhysExpr::IsNull { expr, negated } => {
            let v = value_at(expr, batch, input, row, ctx)?;
            Value::Bool(v.is_null() != *negated)
        }
        PhysExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = value_at(expr, batch, input, row, ctx)?;
            let pv = value_at(pattern, batch, input, row, ctx)?;
            match (v.as_text(), pv.as_text()) {
                // The oracle matcher: per-row backtracking, no compilation.
                (Some(s), Some(pat)) => Value::Bool(like::like_match(s, pat) != *negated),
                _ => Value::Null,
            }
        }
    })
}

pub(crate) fn eval_unary_value(op: UnOp, v: Value) -> Result<Value, CdwError> {
    Ok(match op {
        UnOp::Neg => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            other => return Err(CdwError::exec(format!("cannot negate {}", other.render()))),
        },
        UnOp::Not => match v {
            Value::Null => Value::Null,
            Value::Bool(b) => Value::Bool(!b),
            other => {
                return Err(CdwError::exec(format!(
                    "NOT of non-boolean {}",
                    other.render()
                )))
            }
        },
    })
}

/// Scalar binary kernel with SQL null semantics (three-valued logic for
/// AND/OR; null-propagating otherwise).
pub fn eval_binary_value(op: BinOp, l: Value, r: Value) -> Result<Value, CdwError> {
    use BinOp::*;
    // AND/OR have non-strict null handling.
    match op {
        And => {
            return Ok(match (l.as_bool(), r.as_bool(), l.is_null(), r.is_null()) {
                (Some(false), _, _, _) | (_, Some(false), _, _) => Value::Bool(false),
                (Some(true), Some(true), _, _) => Value::Bool(true),
                _ => Value::Null,
            })
        }
        Or => {
            return Ok(match (l.as_bool(), r.as_bool()) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        _ => {}
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Add | Sub => {
            // Temporal arithmetic in days.
            match (&l, &r, op) {
                (Value::Date(d), Value::Int(n), Add) => return Ok(Value::Date(d + *n as i32)),
                (Value::Date(d), Value::Int(n), Sub) => return Ok(Value::Date(d - *n as i32)),
                (Value::Int(n), Value::Date(d), Add) => return Ok(Value::Date(d + *n as i32)),
                (Value::Timestamp(t), Value::Int(n), Add) => {
                    return Ok(Value::Timestamp(t + *n * calendar::MICROS_PER_DAY))
                }
                (Value::Timestamp(t), Value::Int(n), Sub) => {
                    return Ok(Value::Timestamp(t - *n * calendar::MICROS_PER_DAY))
                }
                (a, b, Sub)
                    if a.dtype().is_some_and(|d| d.is_temporal())
                        && b.dtype().is_some_and(|d| d.is_temporal()) =>
                {
                    let days = (a.as_micros().unwrap() - b.as_micros().unwrap())
                        / calendar::MICROS_PER_DAY;
                    return Ok(Value::Int(days));
                }
                _ => {}
            }
            numeric_arith(op, &l, &r)
        }
        Mul => numeric_arith(op, &l, &r),
        Div => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => {
                if b == 0.0 {
                    Ok(Value::Null) // cell-level error isolation
                } else {
                    Ok(Value::Float(a / b))
                }
            }
            _ => Err(type_err("/", &l, &r)),
        },
        Mod => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a.rem_euclid(*b)))
                }
            }
            _ => match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => {
                    if b == 0.0 {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Float(a.rem_euclid(b)))
                    }
                }
                _ => Err(type_err("%", &l, &r)),
            },
        },
        Concat => Ok(Value::Text(format!("{}{}", l.render(), r.render()))),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if !comparable(&l, &r) {
                return Err(type_err(op.symbol(), &l, &r));
            }
            let ord = l.total_cmp(&r);
            let out = match op {
                Eq => ord == Ordering::Equal,
                NotEq => ord != Ordering::Equal,
                Lt => ord == Ordering::Less,
                LtEq => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(out))
        }
        And | Or => unreachable!(),
    }
}

fn comparable(l: &Value, r: &Value) -> bool {
    match (l.dtype(), r.dtype()) {
        (Some(a), Some(b)) => a.unify(b).is_some(),
        _ => true,
    }
}

fn type_err(op: &str, l: &Value, r: &Value) -> CdwError {
    CdwError::exec(format!(
        "cannot apply {op} to {} and {}",
        l.dtype().map_or("NULL".into(), |d| d.to_string()),
        r.dtype().map_or("NULL".into(), |d| d.to_string())
    ))
}

fn numeric_arith(op: BinOp, l: &Value, r: &Value) -> Result<Value, CdwError> {
    use BinOp::*;
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(match op {
            Add => a.wrapping_add(*b),
            Sub => a.wrapping_sub(*b),
            Mul => a.wrapping_mul(*b),
            _ => unreachable!(),
        })),
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => Ok(Value::Float(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                _ => unreachable!(),
            })),
            _ => Err(type_err(op.symbol(), l, r)),
        },
    }
}

/// Scalar function kernel over one row of argument values.
pub fn eval_func_value(func: ScalarFunc, args: &[Value], ctx: &EvalCtx) -> Result<Value, CdwError> {
    use ScalarFunc::*;
    // Null-propagating functions bail early; the exceptions handle nulls
    // themselves.
    let null_tolerant = matches!(
        func,
        Coalesce | Nullif | Concat | CurrentDate | CurrentTimestamp
    );
    if !null_tolerant && args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let num = |i: usize| args[i].as_f64().ok_or_else(|| arg_err(func, i, &args[i]));
    let int = |i: usize| args[i].as_i64().ok_or_else(|| arg_err(func, i, &args[i]));
    let text = |i: usize| {
        args[i]
            .as_text()
            .map(str::to_owned)
            .ok_or_else(|| arg_err(func, i, &args[i]))
    };
    let unit = |i: usize| -> Result<DateUnit, CdwError> {
        let s = args[i]
            .as_text()
            .ok_or_else(|| arg_err(func, i, &args[i]))?;
        DateUnit::parse(s).ok_or_else(|| CdwError::exec(format!("unknown date unit {s:?}")))
    };
    Ok(match func {
        Abs => match &args[0] {
            Value::Int(i) => Value::Int(i.wrapping_abs()),
            _ => Value::Float(num(0)?.abs()),
        },
        Round => {
            let digits = if args.len() > 1 { int(1)? } else { 0 };
            let factor = 10f64.powi(digits as i32);
            match &args[0] {
                Value::Int(i) if digits >= 0 => Value::Int(*i),
                _ => Value::Float((num(0)? * factor).round() / factor),
            }
        }
        Floor => Value::Int(num(0)?.floor() as i64),
        Ceil => Value::Int(num(0)?.ceil() as i64),
        Sqrt => {
            let x = num(0)?;
            if x < 0.0 {
                Value::Null
            } else {
                Value::Float(x.sqrt())
            }
        }
        Exp => Value::Float(num(0)?.exp()),
        Ln => {
            let x = num(0)?;
            if x <= 0.0 {
                Value::Null
            } else {
                Value::Float(x.ln())
            }
        }
        Log => {
            let x = num(0)?;
            let base = if args.len() > 1 { num(1)? } else { 10.0 };
            if x <= 0.0 || base <= 0.0 || base == 1.0 {
                Value::Null
            } else {
                Value::Float(x.log(base))
            }
        }
        Power => Value::Float(num(0)?.powf(num(1)?)),
        Mod => eval_binary_value(BinOp::Mod, args[0].clone(), args[1].clone())?,
        Sign => Value::Int(match num(0)? {
            x if x > 0.0 => 1,
            x if x < 0.0 => -1,
            _ => 0,
        }),
        Greatest => args
            .iter()
            .cloned()
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null),
        Least => args
            .iter()
            .cloned()
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null),
        Concat => {
            let mut s = String::new();
            for a in args {
                s.push_str(&a.render());
            }
            Value::Text(s)
        }
        Upper => Value::Text(text(0)?.to_uppercase()),
        Lower => Value::Text(text(0)?.to_lowercase()),
        Trim => Value::Text(text(0)?.trim().to_string()),
        LTrim => Value::Text(text(0)?.trim_start().to_string()),
        RTrim => Value::Text(text(0)?.trim_end().to_string()),
        Length => Value::Int(text(0)?.chars().count() as i64),
        Left => {
            let s = text(0)?;
            let n = int(1)?.max(0) as usize;
            Value::Text(s.chars().take(n).collect())
        }
        Right => {
            let s = text(0)?;
            let n = int(1)?.max(0) as usize;
            let len = s.chars().count();
            Value::Text(s.chars().skip(len.saturating_sub(n)).collect())
        }
        Substring => {
            let s = text(0)?;
            let start = int(1)?;
            let len = int(2)?.max(0) as usize;
            let skip = (start.max(1) - 1) as usize;
            Value::Text(s.chars().skip(skip).take(len).collect())
        }
        Contains => Value::Bool(text(0)?.contains(&text(1)?)),
        StartsWith => Value::Bool(text(0)?.starts_with(&text(1)?)),
        EndsWith => Value::Bool(text(0)?.ends_with(&text(1)?)),
        Replace => Value::Text(text(0)?.replace(&text(1)?, &text(2)?)),
        SplitPart => {
            let s = text(0)?;
            let delim = text(1)?;
            let n = int(2)?;
            if delim.is_empty() || n < 1 {
                Value::Null
            } else {
                s.split(&delim)
                    .nth((n - 1) as usize)
                    .map(|p| Value::Text(p.to_string()))
                    .unwrap_or(Value::Null)
            }
        }
        Lpad | Rpad => {
            let s = text(0)?;
            let target = int(1)?.max(0) as usize;
            let pad = if args.len() > 2 {
                text(2)?
            } else {
                " ".to_string()
            };
            let len = s.chars().count();
            if len >= target || pad.is_empty() {
                Value::Text(s.chars().take(target).collect())
            } else {
                let fill: String = pad.chars().cycle().take(target - len).collect();
                if func == Lpad {
                    Value::Text(format!("{fill}{s}"))
                } else {
                    Value::Text(format!("{s}{fill}"))
                }
            }
        }
        Repeat => {
            let s = text(0)?;
            let n = int(1)?.clamp(0, 10_000) as usize;
            Value::Text(s.repeat(n))
        }
        Coalesce => args
            .iter()
            .find(|a| !a.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        Nullif => {
            if !args[0].is_null() && !args[1].is_null() && args[0].sql_eq(&args[1]) {
                Value::Null
            } else {
                args[0].clone()
            }
        }
        DateTrunc => {
            let u = unit(0)?;
            match &args[1] {
                Value::Date(d) => Value::Date(calendar::trunc_date(*d, u)),
                Value::Timestamp(t) => Value::Timestamp(calendar::trunc_timestamp(*t, u)),
                other => return Err(arg_err(func, 1, other)),
            }
        }
        DatePart => {
            let u = unit(0)?;
            match &args[1] {
                Value::Date(d) => Value::Int(calendar::date_part(*d, u)),
                Value::Timestamp(t) => Value::Int(calendar::timestamp_part(*t, u)),
                other => return Err(arg_err(func, 1, other)),
            }
        }
        DateAdd => {
            let u = unit(0)?;
            let n = int(1)?;
            match &args[2] {
                Value::Date(d) => Value::Date(calendar::date_add(*d, u, n)),
                Value::Timestamp(t) => Value::Timestamp(calendar::timestamp_add(*t, u, n)),
                other => return Err(arg_err(func, 2, other)),
            }
        }
        DateDiff => {
            let u = unit(0)?;
            match (&args[1], &args[2]) {
                (Value::Date(a), Value::Date(b)) => Value::Int(calendar::date_diff(*a, *b, u)),
                (a, b) => {
                    let (am, bm) = (a.as_micros(), b.as_micros());
                    match (am, bm) {
                        (Some(am), Some(bm)) => Value::Int(calendar::timestamp_diff(am, bm, u)),
                        _ => return Err(arg_err(func, 1, a)),
                    }
                }
            }
        }
        MakeDate => {
            let (y, m, d) = (int(0)? as i32, int(1)?, int(2)?);
            if !(1..=12).contains(&m) {
                Value::Null
            } else {
                let m = m as u32;
                if d < 1 || d as u32 > calendar::last_day_of_month(y, m) {
                    Value::Null
                } else {
                    Value::Date(calendar::days_from_civil(y, m, d as u32))
                }
            }
        }
        CurrentDate => Value::Date((ctx.now_micros / calendar::MICROS_PER_DAY) as i32),
        CurrentTimestamp => Value::Timestamp(ctx.now_micros),
    })
}

fn arg_err(func: ScalarFunc, i: usize, v: &Value) -> CdwError {
    CdwError::exec(format!(
        "{func:?}: argument {i} has unexpected type {}",
        v.dtype().map_or("NULL".into(), |d| d.to_string())
    ))
}
